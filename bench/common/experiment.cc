#include "common/experiment.h"

#include <chrono>
#include <cstdlib>
#include <iostream>
#include <utility>

#include "obs/tracing_inspector.h"
#include "parallel/sim_runner.h"
#include "util/ascii_chart.h"
#include "util/csv.h"
#include "util/svg_chart.h"

namespace grefar::bench {

void add_common_options(CliParser& cli, const std::string& default_horizon) {
  cli.add_option("horizon", default_horizon, "simulated hours");
  cli.add_option("seed", "42", "scenario seed (all randomness derives from it)");
  cli.add_option("csv-dir", "", "directory to drop raw series CSVs into");
  cli.add_option("svg-dir", "", "directory to drop SVG renderings into");
  cli.add_option("chart-width", "72", "ASCII chart width in columns");
  cli.add_option("jobs", "0",
                 "parallel simulation runs (0 = all hardware threads, 1 = serial)");
  cli.add_option("audit", "auto",
                 "per-slot invariant auditing: auto|off|throw|record "
                 "(auto = throw in Debug builds, off in Release)");
  cli.add_option("trace", "",
                 "write structured per-slot JSONL records to this path "
                 "(traces leg 0 of a sweep)");
  cli.add_flag("counters", "collect solver/engine counters; print JSON at exit");
  cli.add_flag("profile", "collect per-phase wall times; print table at exit");
}

ObsSession::ObsSession(const CliParser& cli) {
  const std::string trace_path = cli.get_string("trace");
  if (!trace_path.empty()) {
    obs::TraceSink::Options options;
    options.path = trace_path;
    sink_ = std::make_shared<obs::TraceSink>(std::move(options));
  }
  if (cli.get_flag("counters")) {
    counters_ = std::make_unique<obs::CounterRegistry>();
    counters_scope_.emplace(counters_.get());
  }
  if (cli.get_flag("profile")) {
    profile_ = std::make_unique<obs::ProfileRegistry>();
    profile_scope_.emplace(profile_.get());
  }
}

ObsSession::~ObsSession() { finish(); }

void ObsSession::attach_tracer(SimulationEngine& engine) const {
  if (sink_ == nullptr) return;
  auto tracer = std::make_shared<obs::TracingInspector>(sink_);
  if (engine.inspector() != nullptr) {
    // Keep the already-attached inspector (the invariant auditor) running;
    // it sees each record before the tracer does.
    engine.set_inspector(std::make_shared<obs::TeeInspector>(
        std::vector<std::shared_ptr<SlotInspector>>{engine.shared_inspector(),
                                                    std::move(tracer)}));
  } else {
    engine.set_inspector(std::move(tracer));
  }
}

void ObsSession::finish() {
  if (finished_) return;
  finished_ = true;
  // Deactivate before printing so the reports never observe themselves.
  counters_scope_.reset();
  profile_scope_.reset();
  if (counters_ != nullptr) {
    std::cout << "\n-- counters (--counters) --\n"
              << counters_->dump().dump(2) << "\n";
  }
  if (profile_ != nullptr) {
    std::cout << "\n-- profile (--profile) --\n" << profile_->summary_table();
  }
  if (sink_ != nullptr) {
    sink_->flush();
    std::cout << "\ntrace: wrote " << sink_->records_written()
              << " slot records to " << sink_->path() << "\n";
  }
}

std::size_t jobs_from_cli(const CliParser& cli) {
  int jobs = cli.get_int("jobs");
  return jobs <= 0 ? 0 : static_cast<std::size_t>(jobs);
}

AuditMode audit_from_cli(const CliParser& cli) {
  const std::string mode = cli.get_string("audit");
  if (mode == "auto") return AuditMode::kAuto;
  if (mode == "off") return AuditMode::kOff;
  if (mode == "throw") return AuditMode::kThrow;
  if (mode == "record") return AuditMode::kRecord;
  std::cerr << "error: --audit must be auto|off|throw|record, got '" << mode
            << "'\n\n"
            << cli.usage();
  std::exit(1);
}

SweepResult run_sweep(
    std::size_t count, std::int64_t horizon, std::size_t jobs,
    const std::function<std::unique_ptr<SimulationEngine>(std::size_t)>& make_engine,
    const ObsSession* obs) {
  SweepResult result;
  result.engines.resize(count);
  result.leg_ms.resize(count, 0.0);
  std::vector<std::function<void()>> tasks;
  tasks.reserve(count);
  for (std::size_t leg = 0; leg < count; ++leg) {
    tasks.push_back([&result, &make_engine, obs, horizon, leg] {
      auto start = std::chrono::steady_clock::now();
      result.engines[leg] = make_engine(leg);
      if (leg == 0 && obs != nullptr) obs->attach_tracer(*result.engines[leg]);
      result.engines[leg]->run(horizon);
      result.leg_ms[leg] = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - start)
                               .count();
    });
  }
  SimRunner runner(jobs);
  runner.run(tasks);
  return result;
}

std::vector<sweep::SweepLegResult> run_sweep_spec(const sweep::SweepSpec& spec,
                                                  std::size_t jobs, AuditMode audit,
                                                  const ObsSession* obs) {
  sweep::SweepOptions options;
  options.jobs = jobs;
  options.audit = audit;
  sweep::SweepEngine engine(options);
  return engine.run_collect(
      spec, [obs](std::size_t leg, SimulationEngine& leg_engine) {
        if (leg == 0 && obs != nullptr) obs->attach_tracer(leg_engine);
      });
}

void parse_or_exit(CliParser& cli, int argc, char** argv) {
  auto status = cli.parse(argc, argv);
  if (status.ok()) return;
  if (status.error().message == "help") std::exit(0);
  std::cerr << "error: " << status.error().message << "\n\n" << cli.usage();
  std::exit(1);
}

std::string render_chart(const std::string& title, const std::string& y_label,
                         std::vector<TimeSeries> series, std::int64_t horizon) {
  AsciiChart chart(72, 16);
  chart.set_title(title);
  chart.set_y_label(y_label);
  chart.set_x_label("time (hours)");
  chart.set_x_range(0, static_cast<double>(horizon));
  for (auto& s : series) {
    chart.add_series({s.name(), s.values()});
  }
  return chart.render();
}

void maybe_write_csv(const std::string& csv_dir, const std::string& name,
                     const std::vector<TimeSeries>& series) {
  if (csv_dir.empty()) return;
  std::vector<const TimeSeries*> ptrs;
  ptrs.reserve(series.size());
  for (const auto& s : series) ptrs.push_back(&s);
  std::string path = csv_dir + "/" + name + ".csv";
  auto status = write_file(path, time_series_to_csv(ptrs));
  if (!status.ok()) {
    std::cerr << "warning: " << status.error().message << "\n";
  } else {
    std::cout << "  wrote " << path << "\n";
  }
}

void maybe_write_svg(const std::string& svg_dir, const std::string& name,
                     const std::string& title, const std::string& y_label,
                     const std::vector<TimeSeries>& series, std::int64_t horizon) {
  if (svg_dir.empty()) return;
  SvgChart chart;
  chart.set_title(title);
  chart.set_y_label(y_label);
  chart.set_x_label("time (hours)");
  chart.set_x_range(0, static_cast<double>(horizon));
  for (const auto& s : series) chart.add_series(s.name(), s.values());
  std::string path = svg_dir + "/" + name + ".svg";
  auto status = write_file(path, chart.render());
  if (!status.ok()) {
    std::cerr << "warning: " << status.error().message << "\n";
  } else {
    std::cout << "  wrote " << path << "\n";
  }
}

TimeSeries named(TimeSeries series, std::string name) {
  series.set_name(std::move(name));
  return series;
}

void print_header(const std::string& experiment, const std::string& paper_ref,
                  std::uint64_t seed, std::int64_t horizon) {
  std::cout << "== " << experiment << " ==\n"
            << "reproduces: " << paper_ref << "\n"
            << "seed " << seed << ", horizon " << horizon << " h\n\n";
}

}  // namespace grefar::bench
