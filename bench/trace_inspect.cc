// trace_inspect — offline reader for --trace JSONL slot records.
//
// Any bench binary run with --trace=<path> drops one JSON object per
// simulated slot (see obs/tracing_inspector.cc for the schema). This tool
// re-reads such a file and answers the questions the raw JSONL makes
// awkward: how was work shared between accounts, where did jobs actually
// get routed (DC x job-type heatmap), and how did the queues evolve.
#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/experiment.h"
#include "stats/summary_table.h"
#include "util/ascii_chart.h"
#include "util/json.h"
#include "util/strings.h"

namespace {

using grefar::JsonValue;

// Adds `value`'s numeric array field `key` element-wise into `into`,
// growing it as needed. Missing or non-array fields are ignored.
void accumulate_array(const JsonValue& value, const std::string& key,
                      std::vector<double>& into) {
  const JsonValue* field = value.find(key);
  if (field == nullptr || !field->is_array()) return;
  const auto& arr = field->as_array();
  if (into.size() < arr.size()) into.resize(arr.size(), 0.0);
  for (std::size_t i = 0; i < arr.size(); ++i) {
    if (arr[i].is_number()) into[i] += arr[i].as_number();
  }
}

// Adds the matrix field `key` (array of numeric rows) into `into`.
void accumulate_matrix(const JsonValue& value, const std::string& key,
                       std::vector<std::vector<double>>& into) {
  const JsonValue* field = value.find(key);
  if (field == nullptr || !field->is_array()) return;
  const auto& rows = field->as_array();
  if (into.size() < rows.size()) into.resize(rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (!rows[i].is_array()) continue;
    const auto& row = rows[i].as_array();
    if (into[i].size() < row.size()) into[i].resize(row.size(), 0.0);
    for (std::size_t j = 0; j < row.size(); ++j) {
      if (row[j].is_number()) into[i][j] += row[j].as_number();
    }
  }
}

double sum_of(const JsonValue& value, const std::string& key) {
  double total = 0.0;
  const JsonValue* field = value.find(key);
  if (field == nullptr || !field->is_array()) return total;
  for (const auto& v : field->as_array()) {
    if (v.is_number()) total += v.as_number();
  }
  return total;
}

// One intensity glyph per cell, darkest = row maximum.
char heat_glyph(double value, double max_value) {
  static const char kRamp[] = " .:-=+*#%@";
  if (max_value <= 0.0 || value <= 0.0) return kRamp[0];
  auto idx = static_cast<std::size_t>(value / max_value * 9.0 + 0.5);
  return kRamp[idx > 9 ? 9 : idx];
}

}  // namespace

int main(int argc, char** argv) {
  using namespace grefar;
  using namespace grefar::bench;

  CliParser cli("trace_inspect",
                "inspect a --trace JSONL file: account work shares, routing "
                "heatmap, queue evolution");
  cli.add_option("trace", "", "JSONL trace file written by a bench --trace run");
  cli.add_option("chart-width", "72", "ASCII chart width in columns");
  parse_or_exit(cli, argc, argv);
  const std::string path = cli.get_string("trace");
  if (path.empty()) {
    std::cerr << "error: --trace=<path> is required\n\n" << cli.usage();
    return 1;
  }
  std::ifstream in(path);
  if (!in) {
    std::cerr << "error: cannot open " << path << "\n";
    return 1;
  }

  std::vector<double> account_work;          // summed over slots
  std::vector<double> dc_energy;             // summed over slots
  std::vector<std::vector<double>> routed;   // [dc][job type], summed
  TimeSeries central_total("central queue (jobs)");
  TimeSeries routed_total("jobs routed/slot");
  double fairness_sum = 0.0;
  std::int64_t first_slot = -1, last_slot = -1, records = 0, bad_lines = 0;

  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    auto parsed = parse_json(line);
    if (!parsed.ok() || !parsed.value().is_object()) {
      ++bad_lines;
      continue;
    }
    const JsonValue& rec = parsed.value();
    ++records;
    const std::int64_t slot =
        static_cast<std::int64_t>(rec.number_or("slot", -1.0));
    if (first_slot < 0) first_slot = slot;
    last_slot = slot;
    accumulate_array(rec, "account_work", account_work);
    accumulate_array(rec, "dc_energy_cost", dc_energy);
    accumulate_matrix(rec, "routed", routed);
    central_total.add(sum_of(rec, "central_queue"));
    double routed_this_slot = 0.0;
    if (const JsonValue* m = rec.find("routed"); m != nullptr && m->is_array()) {
      for (const auto& row : m->as_array()) {
        if (!row.is_array()) continue;
        for (const auto& v : row.as_array()) {
          if (v.is_number()) routed_this_slot += v.as_number();
        }
      }
    }
    routed_total.add(routed_this_slot);
    if (const JsonValue* f = rec.find("fairness"); f != nullptr && f->is_number()) {
      fairness_sum += f->as_number();
    }
  }
  if (records == 0) {
    std::cerr << "error: no trace records in " << path
              << (bad_lines > 0 ? " (all lines failed to parse)" : "") << "\n";
    return 1;
  }

  std::cout << "== trace_inspect ==\n"
            << path << ": " << records << " slot records (slots " << first_slot
            << ".." << last_slot << ")";
  if (bad_lines > 0) std::cout << ", " << bad_lines << " unparseable lines skipped";
  std::cout << "\nmean fairness: "
            << format_fixed(fairness_sum / static_cast<double>(records), 4) << "\n\n";

  // -- per-account work shares ------------------------------------------------
  double total_work = 0.0;
  for (double w : account_work) total_work += w;
  SummaryTable shares({"account", "total work", "share %", "work/slot"});
  for (std::size_t m = 0; m < account_work.size(); ++m) {
    shares.add_row("account #" + std::to_string(m + 1),
                   {account_work[m],
                    total_work > 0.0 ? 100.0 * account_work[m] / total_work : 0.0,
                    account_work[m] / static_cast<double>(records)});
  }
  std::cout << "-- account work shares --\n" << shares.render() << "\n";

  // -- routing heatmap (DC x job type) ---------------------------------------
  if (!routed.empty()) {
    double max_cell = 0.0;
    std::size_t num_types = 0;
    for (const auto& row : routed) {
      num_types = std::max(num_types, row.size());
      for (double v : row) max_cell = std::max(max_cell, v);
    }
    std::vector<std::string> headers = {"DC \\ job type"};
    for (std::size_t j = 0; j < num_types; ++j) {
      // Built in two steps: GCC 12's -Wrestrict misfires on `"j" + temporary`.
      std::string header = "j";
      header += std::to_string(j + 1);
      headers.push_back(std::move(header));
    }
    headers.emplace_back("total");
    SummaryTable heat(headers);
    std::cout << "-- routing heatmap: jobs routed per (DC, job type) --\n";
    for (std::size_t i = 0; i < routed.size(); ++i) {
      std::vector<double> cells(routed[i]);
      cells.resize(num_types, 0.0);
      double row_total = 0.0;
      for (double v : cells) row_total += v;
      cells.push_back(row_total);
      std::string glyphs;
      for (std::size_t j = 0; j < num_types; ++j) {
        glyphs += heat_glyph(cells[j], max_cell);
      }
      heat.add_row("DC #" + std::to_string(i + 1), cells, 0);
      std::cout << "  DC #" << (i + 1) << "  [" << glyphs << "]\n";
    }
    std::cout << heat.render() << "\n";
  } else {
    std::cout << "-- routing heatmap unavailable: trace has no 'routed' "
                 "matrices --\n\n";
  }

  // -- queue / routing evolution ---------------------------------------------
  const int width = static_cast<int>(cli.get_int("chart-width"));
  AsciiChart chart(width, 14);
  chart.set_title("Trace evolution");
  chart.set_y_label("jobs");
  chart.set_x_label("record");
  chart.set_x_range(static_cast<double>(first_slot), static_cast<double>(last_slot));
  chart.add_series({central_total.name(), central_total.values()});
  chart.add_series({routed_total.name(), routed_total.values()});
  std::cout << chart.render() << "\n";

  // -- per-DC billed energy ---------------------------------------------------
  if (!dc_energy.empty()) {
    SummaryTable energy({"DC", "total billed cost", "cost/slot"});
    for (std::size_t i = 0; i < dc_energy.size(); ++i) {
      energy.add_row("DC #" + std::to_string(i + 1),
                     {dc_energy[i], dc_energy[i] / static_cast<double>(records)});
    }
    std::cout << "-- billed energy --\n" << energy.render();
  }
  return 0;
}
