// Admission ablation (arXiv 1404.4865 / 1509.03699 vs the paper's
// admit-everything behavior): GreFar routes the overloaded valued scenario
// (scenario/admission_scenario.h) three times — admit-all, the deterministic
// value-density threshold, and the randomized log-uniform threshold — and
// compares the value each run actually realizes after decay, deadline
// abandonment and rejection.
//
// The scenario offers ~1.8x capacity, so admit-all must shed value through
// queueing decay and deadline expiry while the thresholds shed it at the
// door, keeping only work dense enough to be worth serving. The process
// exits nonzero unless BOTH threshold policies beat admit-all on realized
// value — the acceptance gate CI runs with --audit=throw.
//
// Determinism: everything printed to stdout is a pure function of
// (seed, horizon, V, beta) — wall-clock timings go to stderr — so CI can
// require bitwise-equal stdout at --jobs 1 vs --jobs N.
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/experiment.h"
#include "core/admission.h"
#include "core/grefar.h"
#include "scenario/admission_scenario.h"
#include "stats/summary_table.h"
#include "util/strings.h"

int main(int argc, char** argv) {
  using namespace grefar;
  using namespace grefar::bench;

  CliParser cli("admission_ablation",
                "realized value: admit-all vs deterministic vs randomized "
                "admission thresholds");
  add_common_options(cli, /*default_horizon=*/"300");
  cli.add_option("V", "7.5", "GreFar cost-delay parameter");
  cli.add_option("beta", "10", "GreFar energy-fairness parameter");
  parse_or_exit(cli, argc, argv);
  const auto horizon = cli.get_int("horizon");
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const double V = cli.get_double("V");
  const double beta = cli.get_double("beta");
  const auto jobs = jobs_from_cli(cli);
  const AuditMode audit = audit_from_cli(cli);

  ObsSession obs(cli);

  print_header("Admission ablation: realized value under overload",
               "arXiv 1404.4865 / 1509.03699 admission stage vs admit-all",
               seed, horizon);
  std::cout << "scenario: overloaded valued 2-DC cluster, theta = "
            << format_fixed(admission_scenario_theta(), 2) << "\n\n";

  struct Leg {
    std::string label;
    AdmissionPolicyKind kind;
  };
  const std::vector<Leg> legs = {
      {"admit-all", AdmissionPolicyKind::kAdmitAll},
      {"threshold", AdmissionPolicyKind::kThreshold},
      {"randomized", AdmissionPolicyKind::kRandomized},
  };

  auto sweep = run_sweep(legs.size(), horizon, jobs, [&](std::size_t leg) {
    PaperScenario scenario = make_admission_scenario(seed, legs[leg].kind);
    auto scheduler = std::make_shared<GreFarScheduler>(
        scenario.config, paper_grefar_params(V, beta),
        PerSlotSolver::kProjectedGradient);
    return make_scenario_engine(scenario, std::move(scheduler), {}, audit);
  }, &obs);

  SummaryTable table({"policy", "offered jobs", "admitted jobs",
                      "abandoned jobs", "realized value", "rejected value",
                      "abandoned value", "decay loss", "energy cost"});
  std::vector<double> realized(legs.size(), 0.0);
  for (std::size_t leg = 0; leg < legs.size(); ++leg) {
    const SimMetrics& m = sweep.engines[leg]->metrics();
    realized[leg] = m.total_realized_value();
    table.add_row(legs[leg].label,
                  {m.offered_jobs.sum(), m.arrived_jobs.sum(),
                   m.abandoned_jobs.sum(), m.total_realized_value(),
                   m.total_rejected_value(), m.total_abandoned_value(),
                   m.decay_loss.sum(), m.energy_cost.sum()});
  }
  std::cout << table.render() << "\n";
  for (std::size_t leg = 0; leg < legs.size(); ++leg) {
    std::cerr << legs[leg].label << ": " << sweep.leg_ms[leg] << " ms\n";
  }

  bool pass = true;
  for (std::size_t leg = 1; leg < legs.size(); ++leg) {
    const bool beats = realized[leg] > realized[0];
    std::cout << legs[leg].label << " vs admit-all: "
              << format_fixed(realized[leg], 3) << " vs "
              << format_fixed(realized[0], 3)
              << (beats ? " (better)" : " (WORSE)") << "\n";
    pass = pass && beats;
  }
  if (!pass) {
    std::cout << "ABLATION FAILED: an admission policy realized no more "
                 "value than admit-all\n";
    return 1;
  }
  std::cout << "ablation ok: both admission policies beat admit-all on "
               "realized value\n";
  obs.finish();
  return 0;
}
