// Ablation (DESIGN.md §5.1): per-slot solver choice.
//
// Runs the same 2000 h scenario with GreFar using each per-slot solver and
// compares achieved cost/fairness/delay plus wall-clock time. Greedy and LP
// are exact for beta = 0 and must agree; Frank-Wolfe and PGD handle the
// fairness term and should agree with each other.
#include <iostream>
#include <memory>
#include <vector>

#include "common/experiment.h"
#include "core/grefar.h"
#include "stats/summary_table.h"

int main(int argc, char** argv) {
  using namespace grefar;
  using namespace grefar::bench;

  CliParser cli("ablation_solvers", "compare per-slot solvers inside GreFar");
  add_common_options(cli, /*default_horizon=*/"500");
  cli.add_option("V", "7.5", "cost-delay parameter");
  parse_or_exit(cli, argc, argv);
  const auto horizon = cli.get_int("horizon");
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const double V = cli.get_double("V");
  const auto jobs = jobs_from_cli(cli);
  const auto audit = audit_from_cli(cli);

  ObsSession obs(cli);

  print_header("Ablation: per-slot solver choice",
               "DESIGN.md section 5 (design-choice ablation)", seed, horizon);

  // One leg per (solver, beta) pair; each builds its own scenario. The
  // ms/1000 slots column is the leg's wall-clock — under --jobs > 1 legs
  // contend for cores, so compare timings from a --jobs 1 run.
  struct Leg {
    PerSlotSolver solver;
    double beta;
  };
  const std::vector<Leg> legs = {
      {PerSlotSolver::kGreedy, 0.0},     {PerSlotSolver::kLp, 0.0},
      {PerSlotSolver::kFrankWolfe, 0.0}, {PerSlotSolver::kProjectedGradient, 0.0},
      {PerSlotSolver::kFrankWolfe, 100.0},
      {PerSlotSolver::kProjectedGradient, 100.0},
  };
  sweep::SweepSpec spec;
  sweep::SweepAxis axis{.name = "solver"};
  for (const Leg& l : legs) {
    axis.labels.push_back(to_string(l.solver) + "/beta=" +
                          std::to_string(static_cast<int>(l.beta)));
  }
  spec.axes = {axis};
  spec.horizon = horizon;
  spec.scenario = [&](const sweep::SweepPoint&) { return make_paper_scenario(seed); };
  spec.plan = [&](const sweep::SweepPoint& p) {
    sweep::LegPlan plan;
    plan.scenario_key = "paper/seed=" + std::to_string(seed);
    plan.grefar = sweep::GreFarLegSpec{paper_grefar_params(V, legs[p.leg].beta),
                                       legs[p.leg].solver};
    return plan;
  };
  auto sweep_results = run_sweep_spec(spec, jobs, audit, &obs);

  std::cout << "-- beta = 0 (greedy/LP exact; FW/PGD approximate) --\n";
  SummaryTable t0({"solver", "avg energy cost", "overall delay", "ms/1000 slots"});
  for (std::size_t leg = 0; leg < 4; ++leg) {
    const auto& m = sweep_results[leg].metrics;
    t0.add_row(to_string(legs[leg].solver),
               {m.final_average_energy_cost(), m.mean_delay(),
                sweep_results[leg].leg_ms * 1000.0 / static_cast<double>(horizon)});
  }
  std::cout << t0.render() << "\n";

  std::cout << "-- beta = 100 (convex solvers only) --\n";
  SummaryTable t1({"solver", "avg energy cost", "avg fairness", "overall delay",
                   "ms/1000 slots"});
  for (std::size_t leg = 4; leg < legs.size(); ++leg) {
    const auto& m = sweep_results[leg].metrics;
    t1.add_row(to_string(legs[leg].solver),
               {m.final_average_energy_cost(), m.final_average_fairness(),
                m.mean_delay(),
                sweep_results[leg].leg_ms * 1000.0 / static_cast<double>(horizon)});
  }
  std::cout << t1.render()
            << "\nexpected: all solvers land on (nearly) the same cost; greedy is\n"
               "several times faster than the simplex LP at identical decisions, which\n"
               "is why it is the production path for beta = 0.\n";
  obs.finish();
  return 0;
}
