// Ablation (DESIGN.md §5.1): per-slot solver choice.
//
// Runs the same 2000 h scenario with GreFar using each per-slot solver and
// compares achieved cost/fairness/delay plus wall-clock time. Greedy and LP
// are exact for beta = 0 and must agree; Frank-Wolfe and PGD handle the
// fairness term and should agree with each other.
#include <chrono>
#include <iostream>
#include <memory>

#include "common/experiment.h"
#include "core/grefar.h"
#include "stats/summary_table.h"

int main(int argc, char** argv) {
  using namespace grefar;
  using namespace grefar::bench;

  CliParser cli("ablation_solvers", "compare per-slot solvers inside GreFar");
  add_common_options(cli, /*default_horizon=*/"500");
  cli.add_option("V", "7.5", "cost-delay parameter");
  parse_or_exit(cli, argc, argv);
  const auto horizon = cli.get_int("horizon");
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const double V = cli.get_double("V");

  print_header("Ablation: per-slot solver choice",
               "DESIGN.md section 5 (design-choice ablation)", seed, horizon);

  PaperScenario scenario = make_paper_scenario(seed);

  auto run_with = [&](PerSlotSolver solver, double beta) {
    auto scheduler = std::make_shared<GreFarScheduler>(
        scenario.config, paper_grefar_params(V, beta), solver);
    auto start = std::chrono::steady_clock::now();
    auto engine = run_scenario(scenario, scheduler, horizon);
    auto elapsed = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - start)
                       .count();
    return std::make_pair(std::move(engine), elapsed);
  };

  std::cout << "-- beta = 0 (greedy/LP exact; FW/PGD approximate) --\n";
  SummaryTable t0({"solver", "avg energy cost", "overall delay", "ms/1000 slots"});
  for (auto solver : {PerSlotSolver::kGreedy, PerSlotSolver::kLp,
                      PerSlotSolver::kFrankWolfe, PerSlotSolver::kProjectedGradient}) {
    auto [engine, ms] = run_with(solver, 0.0);
    const auto& m = engine->metrics();
    t0.add_row(to_string(solver),
               {m.final_average_energy_cost(), m.mean_delay(),
                ms * 1000.0 / static_cast<double>(horizon)});
  }
  std::cout << t0.render() << "\n";

  std::cout << "-- beta = 100 (convex solvers only) --\n";
  SummaryTable t1({"solver", "avg energy cost", "avg fairness", "overall delay",
                   "ms/1000 slots"});
  for (auto solver :
       {PerSlotSolver::kFrankWolfe, PerSlotSolver::kProjectedGradient}) {
    auto [engine, ms] = run_with(solver, 100.0);
    const auto& m = engine->metrics();
    t1.add_row(to_string(solver),
               {m.final_average_energy_cost(), m.final_average_fairness(),
                m.mean_delay(), ms * 1000.0 / static_cast<double>(horizon)});
  }
  std::cout << t1.render()
            << "\nexpected: all solvers land on (nearly) the same cost; greedy is\n"
               "several times faster than the simplex LP at identical decisions, which\n"
               "is why it is the production path for beta = 0.\n";
  return 0;
}
