#!/usr/bin/env bash
# Runs the two microbenchmark binaries and writes google-benchmark JSON next
# to this script's repo root. Compare a fresh run against the checked-in
# BENCH_baseline.json to catch hot-path regressions:
#
#   ./bench/run_perf.sh out.json
#   # then eyeball, or use benchmark's tools/compare.py if available:
#   #   compare.py benchmarks BENCH_baseline.json out.json
#
# The baseline was captured with:
#   cmake -B build -S . && cmake --build build -j
#   ./bench/run_perf.sh BENCH_baseline.json
# on an otherwise idle machine. Wall-clock numbers move between machines;
# what matters is the *relative* change on the same box.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${BUILD_DIR:-$repo_root/build}"
out="${1:-$repo_root/perf_run.json}"
min_time="${BENCHMARK_MIN_TIME:-0.2}"

for bin in perf_scheduler perf_substrate; do
  if [[ ! -x "$build_dir/bench/$bin" ]]; then
    echo "error: $build_dir/bench/$bin not built (cmake --build $build_dir)" >&2
    exit 1
  fi
done

tmp_sched="$(mktemp)"
tmp_sub="$(mktemp)"
trap 'rm -f "$tmp_sched" "$tmp_sub"' EXIT

"$build_dir/bench/perf_scheduler" \
  --benchmark_min_time="$min_time" \
  --benchmark_out="$tmp_sched" --benchmark_out_format=json
"$build_dir/bench/perf_substrate" \
  --benchmark_min_time="$min_time" \
  --benchmark_out="$tmp_sub" --benchmark_out_format=json

# Merge the two reports into one file (context from the first, benchmarks
# concatenated) so a single JSON holds the whole perf surface. The
# allocs_per_slot section is owned by tests/check/alloc_regression_test.cc,
# not google-benchmark — carry it over from the previous baseline so a
# re-baseline of the timing numbers does not drop the allocation guard.
python3 - "$tmp_sched" "$tmp_sub" "$out" "$repo_root/BENCH_baseline.json" <<'PY'
import json, os, sys
sched, sub, out, baseline = sys.argv[1:5]
with open(sched) as f:
    merged = json.load(f)
with open(sub) as f:
    merged["benchmarks"].extend(json.load(f)["benchmarks"])
if os.path.exists(baseline):
    with open(baseline) as f:
        prev = json.load(f)
    if "allocs_per_slot" in prev:
        merged["allocs_per_slot"] = prev["allocs_per_slot"]
with open(out, "w") as f:
    json.dump(merged, f, indent=1)
    f.write("\n")
PY
echo "wrote $out"
