#!/usr/bin/env bash
# Runs the microbenchmark binaries and writes google-benchmark JSON next
# to this script's repo root. Compare a fresh run against the checked-in
# BENCH_baseline.json to catch hot-path regressions:
#
#   ./bench/run_perf.sh out.json
#   # then eyeball, or use benchmark's tools/compare.py if available:
#   #   compare.py benchmarks BENCH_baseline.json out.json
#
# Debug-build refusal: numbers from a Debug (-O0, assertions) build are
# meaningless as baselines and have silently poisoned comparisons before, so
# the script probes each binary's "grefar_build_type" context field (stamped
# by bench/common/benchmark_main.h from NDEBUG — the library's own
# "library_build_type" only describes how libbenchmark was compiled) and
# exits non-zero unless the build is Release-like. Pass --allow-debug to
# override for profiling/debugging sessions where absolute numbers are not
# the point.
#
# The baseline was captured with:
#   cmake -B build -S . && cmake --build build -j   # default build is Release
#   ./bench/run_perf.sh BENCH_baseline.json
# on an otherwise idle machine. Wall-clock numbers move between machines;
# what matters is the *relative* change on the same box.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${BUILD_DIR:-$repo_root/build}"
min_time="${BENCHMARK_MIN_TIME:-0.2}"

allow_debug=0
out="$repo_root/perf_run.json"
for arg in "$@"; do
  case "$arg" in
    --allow-debug) allow_debug=1 ;;
    -h|--help)
      sed -n '2,23p' "${BASH_SOURCE[0]}"
      exit 0
      ;;
    *) out="$arg" ;;
  esac
done

for bin in perf_scheduler perf_substrate perf_serve sweep_throughput; do
  if [[ ! -x "$build_dir/bench/$bin" ]]; then
    echo "error: $build_dir/bench/$bin not built (cmake --build $build_dir)" >&2
    exit 1
  fi
done

# Probe the build type by running one micro-sized benchmark per binary and
# reading the grefar_build_type context field out of the JSON report.
probe_build_type() {
  local bin="$1" filter="$2" probe
  probe="$(mktemp)"
  "$build_dir/bench/$bin" --benchmark_filter="$filter" --benchmark_min_time=0.001 \
    --benchmark_out="$probe" --benchmark_out_format=json >/dev/null 2>&1 || true
  python3 -c 'import json,sys
try:
    print(json.load(open(sys.argv[1]))["context"].get("grefar_build_type", "unknown"))
except Exception:
    print("unknown")' "$probe"
  rm -f "$probe"
}

for spec in "perf_scheduler BM_GreFarDecideGreedy/3/8\$" \
            "perf_substrate BM_CappedBoxProject/8\$" \
            "perf_serve BM_StreamCsvParse/256/16\$"; do
  read -r bin filter <<<"$spec"
  build_type="$(probe_build_type "$bin" "$filter")"
  if [[ "$build_type" != "release" ]]; then
    echo "error: $bin reports grefar_build_type=$build_type; perf numbers from" >&2
    echo "a non-Release build are not comparable to BENCH_baseline.json." >&2
    echo "Rebuild with -DCMAKE_BUILD_TYPE=Release (the default), or pass" >&2
    echo "--allow-debug to run anyway." >&2
    if [[ "$allow_debug" -ne 1 ]]; then
      exit 1
    fi
    echo "continuing (--allow-debug)" >&2
  fi
done

tmp_sched="$(mktemp)"
tmp_sub="$(mktemp)"
tmp_serve="$(mktemp)"
tmp_sweep="$(mktemp)"
trap 'rm -f "$tmp_sched" "$tmp_sub" "$tmp_serve" "$tmp_sweep"' EXIT

"$build_dir/bench/perf_scheduler" \
  --benchmark_min_time="$min_time" \
  --benchmark_out="$tmp_sched" --benchmark_out_format=json
"$build_dir/bench/perf_substrate" \
  --benchmark_min_time="$min_time" \
  --benchmark_out="$tmp_sub" --benchmark_out_format=json
"$build_dir/bench/perf_serve" \
  --benchmark_min_time="$min_time" \
  --benchmark_out="$tmp_serve" --benchmark_out_format=json

# Sweep execution engine A/B (DESIGN.md §16): serial (--jobs 1) so the
# legs/sec numbers measure artifact sharing + engine reuse alone, not
# parallel scaling. The binary also enforces rebuild-vs-sweep bitwise
# equality, so a perf run doubles as a correctness check.
"$build_dir/bench/sweep_throughput" --jobs 1 --json-out "$tmp_sweep"

# Merge the reports into one file (context from the first, benchmarks
# concatenated, the sweep_throughput summary as its own section) so a single
# JSON holds the whole perf surface. The allocs_per_slot / allocs_per_leg
# sections are owned by tests/check/alloc_regression_test.cc, not
# google-benchmark — carry them over from the previous baseline so a
# re-baseline of the timing numbers does not drop the allocation guards.
python3 - "$tmp_sched" "$tmp_sub" "$tmp_serve" "$tmp_sweep" "$out" \
  "$repo_root/BENCH_baseline.json" <<'PY'
import json, os, sys
sched, sub, serve, sweep, out, baseline = sys.argv[1:7]
with open(sched) as f:
    merged = json.load(f)
for part in (sub, serve):
    with open(part) as f:
        merged["benchmarks"].extend(json.load(f)["benchmarks"])
with open(sweep) as f:
    merged["sweep_throughput"] = json.load(f)
if os.path.exists(baseline):
    with open(baseline) as f:
        prev = json.load(f)
    for section in ("allocs_per_slot", "allocs_per_leg"):
        if section in prev:
            merged[section] = prev[section]
with open(out, "w") as f:
    json.dump(merged, f, indent=1)
    f.write("\n")
PY
echo "wrote $out"
