// Fig. 4 — "GreFar versus 'Always' with beta = 100 and V = 7.5".
//
//  (a) running-average energy cost, (b) fairness, (c) delay in DC #1.
//
// Expected shape (paper): GreFar achieves lower energy cost and better
// fairness than Always at the expense of increased delay; Always' average
// delay is ~1 slot (jobs run in the slot after arrival).
#include <iostream>
#include <memory>

#include "baselines/baselines.h"
#include "common/experiment.h"
#include "util/strings.h"
#include "core/grefar.h"
#include "stats/summary_table.h"

int main(int argc, char** argv) {
  using namespace grefar;
  using namespace grefar::bench;

  CliParser cli("fig4_vs_always", "reproduce Fig. 4 (GreFar vs Always)");
  add_common_options(cli);
  cli.add_option("V", "7.5", "GreFar cost-delay parameter");
  cli.add_option("beta", "100", "GreFar energy-fairness parameter");
  parse_or_exit(cli, argc, argv);
  const auto horizon = cli.get_int("horizon");
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const auto csv_dir = cli.get_string("csv-dir");
  const auto svg_dir = cli.get_string("svg-dir");
  const double V = cli.get_double("V");
  const double beta = cli.get_double("beta");
  const auto jobs = jobs_from_cli(cli);
  const auto audit = audit_from_cli(cli);

  ObsSession obs(cli);

  print_header("Fig. 4: GreFar versus Always",
               "Ren, He, Xu (ICDCS'12), Fig. 4(a)-(c)", seed, horizon);

  // Leg 0 = GreFar, leg 1 = Always; each leg builds its own scenario.
  auto sweep = run_sweep(2, horizon, jobs, [&](std::size_t leg) {
    PaperScenario scenario = make_paper_scenario(seed);
    std::shared_ptr<Scheduler> scheduler;
    if (leg == 0) {
      scheduler = std::make_shared<GreFarScheduler>(scenario.config,
                                                    paper_grefar_params(V, beta));
    } else {
      scheduler = std::make_shared<AlwaysScheduler>(scenario.config);
    }
    return make_scenario_engine(scenario, std::move(scheduler), {}, audit);
  }, &obs);

  std::vector<TimeSeries> energy, fairness, delay_dc1;
  SummaryTable summary({"scheduler", "avg energy cost", "avg fairness",
                        "avg delay DC1", "overall delay"});
  for (const auto& engine : sweep.engines) {
    const auto& m = engine->metrics();
    std::string name = engine->scheduler().name();
    std::string label = name == "Always" ? "Always" : "GreFar";
    energy.push_back(named(m.average_energy_cost(), label));
    fairness.push_back(named(m.average_fairness(), label));
    delay_dc1.push_back(named(m.average_dc_delay(0), label));
    summary.add_row(name,
                    {m.final_average_energy_cost(), m.final_average_fairness(),
                     m.final_average_dc_delay(0), m.mean_delay()});
  }

  std::cout << render_chart("(a) Average energy cost", "cost", energy, horizon)
            << "\n"
            << render_chart("(b) Average fairness (0 is ideal)", "fairness", fairness,
                            horizon)
            << "\n"
            << render_chart("(c) Average delay in DC #1", "slots", delay_dc1, horizon)
            << "\n"
            << summary.render()
            << "\npaper shape: GreFar wins on energy cost and fairness; Always wins\n"
               "on delay (~1 slot).\n";

  maybe_write_csv(csv_dir, "fig4a_energy", energy);
  maybe_write_csv(csv_dir, "fig4b_fairness", fairness);
  maybe_write_csv(csv_dir, "fig4c_delay_dc1", delay_dc1);
  maybe_write_svg(svg_dir, "fig4a_energy", "(a) Average energy cost", "cost", energy,
                  horizon);
  maybe_write_svg(svg_dir, "fig4b_fairness", "(b) Average fairness", "fairness",
                  fairness, horizon);
  maybe_write_svg(svg_dir, "fig4c_delay_dc1", "(c) Average delay in DC #1", "slots",
                  delay_dc1, horizon);
  obs.finish();
  return 0;
}
