// Fig. 3 — "GreFar: minimize energy cost with fairness consideration".
//
//  (a) running-average energy cost for beta = 0 vs beta = 100 (V = 7.5);
//  (b) running-average fairness score;
//  (c) running-average delay in DC #1.
//
// Expected shape (paper): beta = 100 lifts the fairness score substantially
// at a marginal energy-cost increase, and *reduces* delay (the fairness
// function rewards resource usage, so some work runs even at higher prices).
#include <iostream>
#include <memory>

#include "common/experiment.h"
#include "util/strings.h"
#include "core/grefar.h"
#include "stats/summary_table.h"

int main(int argc, char** argv) {
  using namespace grefar;
  using namespace grefar::bench;

  CliParser cli("fig3_fairness", "reproduce Fig. 3 (beta = 0 vs beta = 100)");
  add_common_options(cli);
  cli.add_option("V", "7.5", "cost-delay parameter");
  cli.add_option("beta", "0,100", "energy-fairness parameters to compare");
  parse_or_exit(cli, argc, argv);
  const auto horizon = cli.get_int("horizon");
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const auto csv_dir = cli.get_string("csv-dir");
  const auto svg_dir = cli.get_string("svg-dir");
  const double V = cli.get_double("V");
  const auto betas = cli.get_double_list("beta");
  const auto jobs = jobs_from_cli(cli);
  const auto audit = audit_from_cli(cli);

  ObsSession obs(cli);

  print_header("Fig. 3: impact of the energy-fairness parameter beta",
               "Ren, He, Xu (ICDCS'12), Fig. 3(a)-(c)", seed, horizon);

  // One leg per beta; each builds its own scenario (same seed => same traces).
  auto sweep = run_sweep(betas.size(), horizon, jobs, [&](std::size_t leg) {
    PaperScenario scenario = make_paper_scenario(seed);
    auto scheduler = std::make_shared<GreFarScheduler>(
        scenario.config, paper_grefar_params(V, betas[leg]));
    return make_scenario_engine(scenario, std::move(scheduler), {}, audit);
  }, &obs);

  std::vector<TimeSeries> energy, fairness, delay_dc1;
  SummaryTable summary(
      {"beta", "avg energy cost", "avg fairness", "avg delay DC1", "overall delay"});

  for (std::size_t leg = 0; leg < betas.size(); ++leg) {
    const auto& m = sweep.engines[leg]->metrics();
    std::string label = "beta=" + format_fixed(betas[leg], 0);
    energy.push_back(named(m.average_energy_cost(), label));
    fairness.push_back(named(m.average_fairness(), label));
    delay_dc1.push_back(named(m.average_dc_delay(0), label));
    summary.add_row(label,
                    {m.final_average_energy_cost(), m.final_average_fairness(),
                     m.final_average_dc_delay(0), m.mean_delay()});
  }

  std::cout << render_chart("(a) Average energy cost (V=" + format_fixed(V, 1) + ")",
                            "cost", energy, horizon)
            << "\n"
            << render_chart("(b) Average fairness (0 is ideal)", "fairness", fairness,
                            horizon)
            << "\n"
            << render_chart("(c) Average delay in DC #1", "slots", delay_dc1, horizon)
            << "\n"
            << summary.render()
            << "\npaper shape: beta=100 achieves a much higher fairness score with a\n"
               "marginal energy increase, and lower delay as a side effect.\n";

  maybe_write_csv(csv_dir, "fig3a_energy", energy);
  maybe_write_csv(csv_dir, "fig3b_fairness", fairness);
  maybe_write_csv(csv_dir, "fig3c_delay_dc1", delay_dc1);
  maybe_write_svg(svg_dir, "fig3a_energy", "(a) Average energy cost", "cost", energy,
                  horizon);
  maybe_write_svg(svg_dir, "fig3b_fairness", "(b) Average fairness", "fairness",
                  fairness, horizon);
  maybe_write_svg(svg_dir, "fig3c_delay_dc1", "(c) Average delay in DC #1", "slots",
                  delay_dc1, horizon);
  obs.finish();
  return 0;
}
