// Fig. 5 — "Scheduled work to process (beta = 0 and V = 7.5)".
//
// A one-day snapshot of DC #1: the electricity price (top) and the work
// GreFar vs Always actually processed there each hour (bottom). GreFar's
// processing should anti-correlate with price (bursts at troughs) while
// Always simply tracks arrivals.
#include <cmath>
#include <iostream>
#include <memory>

#include "baselines/baselines.h"
#include "common/experiment.h"
#include "util/strings.h"
#include "core/grefar.h"
#include "stats/summary_table.h"

int main(int argc, char** argv) {
  using namespace grefar;
  using namespace grefar::bench;

  CliParser cli("fig5_snapshot", "reproduce Fig. 5 (one-day schedule snapshot)");
  add_common_options(cli, /*default_horizon=*/"2000");
  cli.add_option("V", "7.5", "GreFar cost-delay parameter");
  cli.add_option("day-start", "480", "first slot of the snapshot window");
  cli.add_option("window", "24", "snapshot length (hours)");
  parse_or_exit(cli, argc, argv);
  const auto horizon = cli.get_int("horizon");
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const auto csv_dir = cli.get_string("csv-dir");
  const auto svg_dir = cli.get_string("svg-dir");
  const double V = cli.get_double("V");
  const auto start = cli.get_int("day-start");
  const auto window = cli.get_int("window");
  const auto audit = audit_from_cli(cli);

  ObsSession obs(cli);

  print_header("Fig. 5: scheduled work vs price (one-day snapshot, DC #1)",
               "Ren, He, Xu (ICDCS'12), Fig. 5", seed, horizon);

  // Our work-unit scaling (d = 1.5-3.5 vs the paper's d ~ 1) shifts the
  // effective deferral strength of a given V; the V=20 run is the closest
  // analogue of the paper's V=7.5 snapshot, so both are shown.
  const double V_strong = 20.0;
  PaperScenario scenario = make_paper_scenario(seed);
  const auto run_slots = std::min<std::int64_t>(horizon, start + window);
  auto grefar = make_scenario_engine(
      scenario,
      std::make_shared<GreFarScheduler>(scenario.config, paper_grefar_params(V, 0.0)),
      {}, audit);
  obs.attach_tracer(*grefar);  // reference run carries the --trace records
  grefar->run(run_slots);
  auto grefar_strong = run_scenario(
      scenario,
      std::make_shared<GreFarScheduler>(scenario.config,
                                        paper_grefar_params(V_strong, 0.0)),
      run_slots, {}, audit);
  auto always = run_scenario(scenario, std::make_shared<AlwaysScheduler>(scenario.config),
                             run_slots, {}, audit);

  TimeSeries price("Price in DC #1");
  TimeSeries g_work("GreFar V=" + format_fixed(V, 1));
  TimeSeries gs_work("GreFar V=" + format_fixed(V_strong, 1));
  TimeSeries a_work("Always");
  for (std::int64_t t = start; t < start + window; ++t) {
    auto i = static_cast<std::size_t>(t);
    price.add(grefar->metrics().dc_price[0].at(i));
    g_work.add(grefar->metrics().dc_work[0].at(i));
    gs_work.add(grefar_strong->metrics().dc_work[0].at(i));
    a_work.add(always->metrics().dc_work[0].at(i));
  }

  std::cout << render_chart("Price in DC #1 (hours " + std::to_string(start) + "-" +
                                std::to_string(start + window) + ")",
                            "price", {price}, window)
            << "\n"
            << render_chart("Work processed in DC #1", "work",
                            {g_work, gs_work, a_work}, window)
            << "\n";

  // Correlation between price and processed work — over the whole run, so
  // the snapshot's qualitative story is backed by a long-run statistic.
  auto full_corr = [&](const SimulationEngine& engine) {
    return correlation(engine.metrics().dc_price[0], engine.metrics().dc_work[0]);
  };
  SummaryTable summary(
      {"scheduler", "price/work corr (full run)", "work in snapshot window"});
  summary.add_row("GreFar V=" + format_fixed(V, 1), {full_corr(*grefar), g_work.sum()});
  summary.add_row("GreFar V=" + format_fixed(V_strong, 1),
                  {full_corr(*grefar_strong), gs_work.sum()});
  summary.add_row("Always", {full_corr(*always), a_work.sum()});
  std::cout << summary.render()
            << "\npaper shape: Always' processing tracks (price-correlated, diurnal)\n"
               "arrivals; GreFar decorrelates from price as V grows and goes\n"
               "negative — it shifts the day's work into the price troughs.\n";

  maybe_write_csv(csv_dir, "fig5_snapshot", {price, g_work, gs_work, a_work});
  maybe_write_svg(svg_dir, "fig5_price", "Price in DC #1", "price", {price}, window);
  maybe_write_svg(svg_dir, "fig5_work", "Work processed in DC #1", "work",
                  {g_work, gs_work, a_work}, window);
  obs.finish();
  return 0;
}
