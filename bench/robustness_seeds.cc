// Robustness: the Fig. 4 comparison across independent seeds.
//
// Every other bench fixes seed 42; this one re-runs GreFar-vs-Always over
// many seeds (fresh prices, arrivals and availability each time) and reports
// the mean and standard deviation of the headline quantities — showing the
// reproduction's conclusions are not seed luck.
#include <iostream>
#include <memory>

#include "baselines/baselines.h"
#include "common/experiment.h"
#include "core/grefar.h"
#include "stats/running_stats.h"
#include "stats/summary_table.h"
#include "util/strings.h"

int main(int argc, char** argv) {
  using namespace grefar;
  using namespace grefar::bench;

  CliParser cli("robustness_seeds", "Fig. 4 comparison across many seeds");
  add_common_options(cli, /*default_horizon=*/"800");
  cli.add_option("num-seeds", "10", "independent scenario seeds to run");
  cli.add_option("V", "7.5", "GreFar cost-delay parameter");
  cli.add_option("beta", "100", "GreFar energy-fairness parameter");
  parse_or_exit(cli, argc, argv);
  const auto horizon = cli.get_int("horizon");
  const auto base_seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const auto num_seeds = cli.get_int("num-seeds");
  const double V = cli.get_double("V");
  const double beta = cli.get_double("beta");
  const auto jobs = jobs_from_cli(cli);
  const auto audit = audit_from_cli(cli);

  ObsSession obs(cli);

  print_header("Robustness: GreFar vs Always across seeds",
               "Ren, He, Xu (ICDCS'12), Fig. 4 (multi-seed)", base_seed, horizon);

  // seeds x {GreFar, Always} as a SweepSpec cross product: legs of the same
  // seed share one materialized scenario instead of regenerating it, and the
  // per-worker engine arena is reused across all 2*num_seeds legs.
  sweep::SweepSpec spec;
  sweep::SweepAxis seed_axis{.name = "seed"};
  for (std::int64_t s = 0; s < num_seeds; ++s) {
    seed_axis.values.push_back(static_cast<double>(base_seed + static_cast<std::uint64_t>(s)));
  }
  spec.axes = {seed_axis, {.name = "policy", .labels = {"grefar", "always"}}};
  spec.horizon = horizon;
  auto leg_seed = [&](const sweep::SweepPoint& p) {
    return base_seed + static_cast<std::uint64_t>(p.index(0));
  };
  spec.scenario = [&](const sweep::SweepPoint& p) {
    return make_paper_scenario(leg_seed(p));
  };
  spec.plan = [&](const sweep::SweepPoint& p) {
    sweep::LegPlan plan;
    plan.scenario_key = "paper/seed=" + std::to_string(leg_seed(p));
    if (p.index(1) == 0) {
      plan.grefar = sweep::GreFarLegSpec{paper_grefar_params(V, beta), {}};
    } else {
      plan.make_scheduler = [](const sweep::ScenarioArtifacts& art) {
        return std::make_shared<AlwaysScheduler>(*art.config);
      };
    }
    return plan;
  };
  auto sweep_results = run_sweep_spec(spec, jobs, audit, &obs);

  RunningStats saving_pct, grefar_cost, always_cost, grefar_delay, always_delay,
      fairness_delta;
  int grefar_wins = 0;
  for (std::int64_t s = 0; s < num_seeds; ++s) {
    const auto& grefar = sweep_results[static_cast<std::size_t>(s) * 2].metrics;
    const auto& always = sweep_results[static_cast<std::size_t>(s) * 2 + 1].metrics;
    double eg = grefar.final_average_energy_cost();
    double ea = always.final_average_energy_cost();
    grefar_cost.add(eg);
    always_cost.add(ea);
    saving_pct.add(100.0 * (ea - eg) / ea);
    grefar_delay.add(grefar.mean_delay());
    always_delay.add(always.mean_delay());
    fairness_delta.add(grefar.final_average_fairness() -
                       always.final_average_fairness());
    if (eg < ea) ++grefar_wins;
  }

  SummaryTable table({"quantity", "mean", "std", "min", "max"});
  auto row = [&](const std::string& label, const RunningStats& stats) {
    table.add_row(label, {stats.mean(), stats.stddev(), stats.min(), stats.max()});
  };
  row("GreFar energy cost", grefar_cost);
  row("Always energy cost", always_cost);
  row("energy saving %", saving_pct);
  row("GreFar delay", grefar_delay);
  row("Always delay", always_delay);
  row("fairness delta (G - A)", fairness_delta);
  std::cout << table.render() << "\nGreFar cheaper in " << grefar_wins << "/"
            << num_seeds << " seeds.\n"
            << "expected: the energy saving is large relative to its spread and\n"
               "GreFar wins in every seed; Always' delay is ~1 in all of them.\n";
  obs.finish();
  return 0;
}
