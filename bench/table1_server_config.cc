// Table I — "Server configuration and electricity price in data centers".
//
// Regenerates the paper's table from the scenario definition: normalized
// speed and power per DC, the measured long-run average electricity price of
// the calibrated price model, and the resulting average energy cost per unit
// work (price * power / speed). Paper values: 0.392 / 0.346 / 0.572.
#include <iostream>

#include "common/experiment.h"
#include "util/strings.h"
#include "price/price_model.h"
#include "stats/summary_table.h"

int main(int argc, char** argv) {
  using namespace grefar;
  using namespace grefar::bench;

  CliParser cli("table1_server_config", "reproduce Table I");
  add_common_options(cli, /*default_horizon=*/"20000");
  parse_or_exit(cli, argc, argv);
  const auto horizon = cli.get_int("horizon");
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  ObsSession obs(cli);

  print_header("Table I: server configuration and electricity price",
               "Ren, He, Xu (ICDCS'12), Table I", seed, horizon);

  PaperScenario scenario = make_paper_scenario(seed);
  SummaryTable table({"DC", "Speed", "Power", "Avg. Price",
                      "Avg. Energy Cost per Unit Work", "paper"});
  const double paper_cost[3] = {0.392, 0.346, 0.572};
  for (std::size_t dc = 0; dc < 3; ++dc) {
    const auto& st = scenario.config.server_types[dc];
    double avg_price = average_price(*scenario.prices, dc, horizon);
    double cost_per_work = avg_price * st.busy_power / st.speed;
    // Built in two steps: GCC 12's -Wrestrict misfires on `"#" + temporary`.
    std::string label = "#";
    label += std::to_string(dc + 1);
    table.add_row({label, format_fixed(st.speed, 2),
                   format_fixed(st.busy_power, 2), format_fixed(avg_price, 3),
                   format_fixed(cost_per_work, 3), format_fixed(paper_cost[dc], 3)});
  }
  std::cout << table.render()
            << "\nDC #2 is the cheapest per unit work (efficient servers offset a\n"
               "higher price); DC #3 is the most expensive — the ordering GreFar's\n"
               "spatial scheduling exploits.\n";
  obs.finish();
  return 0;
}
