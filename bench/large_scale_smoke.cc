// Million-account scale smoke (DESIGN.md §12): the default LargeScaleOptions
// scenario — a 10 x 100 x 1000 AccountTree (10^6 leaf accounts, one job type
// per leaf) with Zipf activity of ~10^3 draws per slot — run end-to-end
// through the job-level engine, twice:
//
//   1. an *audited* leg with the per-slot InvariantAuditor in throw mode
//      (auditor attached => traced decides => the dense per-slot path), and
//   2. an *unaudited* leg on the sparse per-slot path the production engine
//      runs (the active-type hint + clamped queues).
//
// The two legs must agree bitwise on every per-slot metric and on the
// cumulative per-account work — the engine-level statement of the
// sparse == dense contract at M = 10^6. The process exits nonzero on any
// invariant violation or metric divergence. It prints its own getrusage
// peak RSS (portable to hosts without GNU time); CI parses that line and
// asserts it stays under 1 GB: state must track the active set, not M.
#include <sys/resource.h>

#include <chrono>
#include <iostream>
#include <memory>
#include <optional>

#include "check/invariant_auditor.h"
#include "common/experiment.h"
#include "core/grefar.h"
#include "core/per_slot_solvers.h"
#include "scenario/large_scale.h"
#include "sim/engine.h"

namespace {

using namespace grefar;

/// Bitwise comparison of the per-slot series and cumulative account work; any
/// divergence between the audited (dense) and unaudited (sparse) legs is a
/// contract break, not noise.
bool runs_bitwise_equal(const SimMetrics& a, const SimMetrics& b) {
  bool ok = a.slots() == b.slots();
  for (std::size_t t = 0; ok && t < a.slots(); ++t) {
    ok = a.energy_cost.values()[t] == b.energy_cost.values()[t] &&
         a.fairness.values()[t] == b.fairness.values()[t] &&
         a.total_queue_jobs.values()[t] == b.total_queue_jobs.values()[t];
    if (!ok) std::cerr << "metric divergence at slot " << t << "\n";
  }
  if (ok && a.account_work_total.size() != b.account_work_total.size()) ok = false;
  for (std::size_t m = 0; ok && m < a.account_work_total.size(); ++m) {
    ok = a.account_work_total[m] == b.account_work_total[m];
    if (!ok) std::cerr << "account work divergence at account " << m << "\n";
  }
  return ok;
}

double peak_rss_mb() {
  struct rusage usage {};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<double>(usage.ru_maxrss) / 1024.0;  // Linux: KiB
}

}  // namespace

int main(int argc, char** argv) {
  using namespace grefar::bench;

  CliParser cli("large_scale_smoke",
                "million-account scale smoke: audited dense leg vs sparse "
                "production leg, bitwise-compared");
  add_common_options(cli, /*default_horizon=*/"48");
  cli.add_option("V", "2.0", "GreFar cost-delay parameter");
  cli.add_option("beta", "0.5", "GreFar energy-fairness parameter");
  cli.add_option("branching", "10,100,1000", "account-tree branching factors");
  cli.add_option("account-level", "2",
                 "tree level whose nodes become solver accounts");
  cli.add_option("draws", "1000", "Zipf arrival draws per slot");
  parse_or_exit(cli, argc, argv);
  const auto horizon = cli.get_int("horizon");

  LargeScaleOptions opt;
  opt.branching.clear();
  for (double b : cli.get_double_list("branching")) {
    opt.branching.push_back(static_cast<std::size_t>(b));
  }
  opt.account_level = static_cast<std::size_t>(cli.get_int("account-level"));
  opt.draws_per_slot = static_cast<std::size_t>(cli.get_int("draws"));
  opt.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  // This binary exists to audit at scale, so "auto" means throw even in
  // Release; --audit=off skips the audited leg (sparse-only timing runs).
  AuditMode audit = audit_from_cli(cli);
  if (audit == AuditMode::kAuto) audit = AuditMode::kThrow;

  ObsSession obs(cli);
  print_header("Million-account scale smoke", "DESIGN.md §12 scale gate",
               opt.seed, horizon);

  const auto build_start = std::chrono::steady_clock::now();
  LargeScaleScenario scenario = make_large_scale_scenario(opt);
  const double build_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                build_start)
          .count();
  std::cout << "scenario: " << scenario.config->num_accounts() << " accounts, "
            << scenario.config->num_job_types() << " job types, "
            << scenario.config->num_data_centers() << " DCs, "
            << opt.draws_per_slot << " draws/slot (built in " << build_ms
            << " ms)\n";

  GreFarParams params =
      large_scale_grefar_params(cli.get_double("V"), cli.get_double("beta"));

  // Runs one leg and hands back its metrics; the engine (and its ~O(M)
  // buffers) is destroyed before the next leg builds, so peak RSS reflects
  // one live stack, which is what the CI bound measures.
  auto run_leg = [&](bool audited) -> std::optional<SimMetrics> {
    auto scheduler = std::make_shared<GreFarScheduler>(
        scenario.config, params, PerSlotSolver::kProjectedGradient);
    auto engine = std::make_unique<SimulationEngine>(
        scenario.config, scenario.prices, scenario.availability,
        scenario.arrivals, std::move(scheduler));
    std::shared_ptr<InvariantAuditor> auditor;
    if (audited) {
      InvariantAuditorOptions audit_opts;
      audit_opts.throw_on_violation = audit == AuditMode::kThrow;
      audit_opts.expect_queue_bounded_ask = true;
      audit_opts.r_max = params.r_max;
      audit_opts.h_max = params.h_max;
      auditor = std::make_shared<InvariantAuditor>(scenario.config, audit_opts);
      engine->set_inspector(auditor);
      obs.attach_tracer(*engine);
    }
    const auto start = std::chrono::steady_clock::now();
    engine->run(horizon);
    const double leg_ms =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                  start)
            .count();
    std::cout << (audited ? "audited (dense) leg: " : "sparse leg:          ")
              << leg_ms << " ms for " << horizon << " slots ("
              << leg_ms / static_cast<double>(horizon) << " ms/slot), peak RSS "
              << peak_rss_mb() << " MB\n";
    if (auditor != nullptr) {
      std::cout << "audit: " << auditor->slots_audited() << " slots, "
                << auditor->total_violations() << " violations\n";
      if (!auditor->ok()) {
        std::cout << auditor->report() << "\nAUDIT FAILED\n";
        return std::nullopt;
      }
    }
    return engine->metrics();
  };

  std::optional<SimMetrics> audited;
  if (audit != AuditMode::kOff) {
    audited = run_leg(/*audited=*/true);
    if (!audited.has_value()) return 1;
  }
  std::optional<SimMetrics> sparse = run_leg(/*audited=*/false);
  if (!sparse.has_value()) return 1;

  if (audited.has_value() && !runs_bitwise_equal(*audited, *sparse)) {
    std::cout << "SCALE SMOKE FAILED: sparse leg diverges from audited dense "
                 "leg\n";
    return 1;
  }

  std::cout << "summary (sparse leg):\n"
            << sparse->summary_json().dump(2) << "\n";
  if (audited.has_value()) {
    std::cout << "scale smoke OK: audit clean and sparse == dense bitwise at M = "
              << scenario.config->num_accounts() << "\n";
  } else {
    std::cout << "scale smoke OK (audit off: sparse leg only)\n";
  }
  obs.finish();
  return 0;
}
