// google-benchmark microbenchmarks for the serve-mode substrate: streaming
// CSV parse throughput, per-slot streaming trace pulls, and the full
// ServiceLoop (serial vs pipelined) over an on-disk trace.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/grefar.h"
#include "scenario/paper_scenario.h"
#include "scenario/serve_scenario.h"
#include "serve/service_loop.h"
#include "trace/stream_csv.h"
#include "trace/stream_source.h"

namespace grefar {
namespace {

/// A synthetic job trace document: `slots` slots x `types_per_slot` sparse
/// rows each, slot-sorted — the shape the ingest stage chews through.
std::string synthetic_job_doc(std::int64_t slots, std::size_t types_per_slot) {
  std::ostringstream os;
  os << "slot,type,count\n";
  for (std::int64_t t = 0; t < slots; ++t) {
    for (std::size_t j = 0; j < types_per_slot; ++j) {
      os << t << "," << j << "," << 1 + (t + static_cast<std::int64_t>(j)) % 7
         << "\n";
    }
  }
  return os.str();
}

void BM_StreamCsvParse(benchmark::State& state) {
  const std::string doc =
      synthetic_job_doc(state.range(0), static_cast<std::size_t>(state.range(1)));
  for (auto _ : state) {
    std::uint64_t rows = 0;
    Status st = parse_csv(doc, [&rows](const std::vector<std::string>&,
                                       std::uint64_t, const CsvPosition&) -> Status {
      ++rows;
      return {};
    });
    if (!st.ok()) state.SkipWithError(st.error().message.c_str());
    benchmark::DoNotOptimize(rows);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(doc.size()));
}
BENCHMARK(BM_StreamCsvParse)->Args({256, 16})->Args({256, 96});

void BM_StreamingJobSource(benchmark::State& state) {
  const auto slots = state.range(0);
  const auto types = static_cast<std::size_t>(state.range(1));
  const std::string doc = synthetic_job_doc(slots, types);
  std::vector<std::int64_t> counts;
  for (auto _ : state) {
    StreamingJobTraceSource source(std::make_unique<std::istringstream>(doc),
                                   types);
    std::int64_t emitted = 0;
    while (true) {
      auto more = source.next_slot_into(counts);
      if (!more.ok()) {
        state.SkipWithError(more.error().message.c_str());
        break;
      }
      if (!more.value()) break;
      ++emitted;
    }
    benchmark::DoNotOptimize(emitted);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * slots);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(doc.size()));
}
BENCHMARK(BM_StreamingJobSource)->Args({256, 16})->Args({256, 96});

/// Shared on-disk traces for the ServiceLoop benches, generated once.
struct ServeFixture {
  PaperScenario scenario;
  std::shared_ptr<const ClusterConfig> config;
  std::string jobs_path, prices_path;
  std::int64_t horizon;

  ServeFixture(std::size_t dcs, std::size_t types, std::int64_t h)
      : scenario(make_serve_scenario(dcs, types, /*seed=*/17)), horizon(h) {
    config = std::make_shared<const ClusterConfig>(scenario.config);
    Status st = write_serve_traces(scenario, horizon, "/tmp", jobs_path,
                                   prices_path);
    GREFAR_CHECK_MSG(st.ok(), "trace generation failed");
  }
};

void run_service_loop(benchmark::State& state, bool pipelined) {
  static ServeFixture fixture(/*dcs=*/6, /*types=*/64, /*horizon=*/128);
  for (auto _ : state) {
    auto scheduler = std::make_shared<GreFarScheduler>(
        fixture.config, paper_grefar_params(4.0, 0.5));
    ServiceLoopOptions options;
    options.pipelined = pipelined;
    ServiceLoop loop(fixture.config, fixture.scenario.availability,
                     std::move(scheduler),
                     std::make_unique<StreamingJobTraceSource>(
                         fixture.jobs_path, fixture.config->num_job_types()),
                     std::make_unique<StreamingPriceTraceSource>(
                         fixture.prices_path, fixture.config->num_data_centers()),
                     options);
    auto stats = loop.run();
    if (!stats.ok()) state.SkipWithError(stats.error().message.c_str());
    benchmark::DoNotOptimize(stats);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          fixture.horizon);
}

void BM_ServiceLoopSerial(benchmark::State& state) {
  run_service_loop(state, /*pipelined=*/false);
}
BENCHMARK(BM_ServiceLoopSerial)->Unit(benchmark::kMillisecond);

void BM_ServiceLoopPipelined(benchmark::State& state) {
  run_service_loop(state, /*pipelined=*/true);
}
BENCHMARK(BM_ServiceLoopPipelined)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace grefar

#include "common/benchmark_main.h"
