// google-benchmark microbenchmarks: per-slot decision latency.
//
// GreFar must decide every scheduling quantum (15 min - 1 h in the paper);
// these benchmarks show the decision is microseconds even for clusters far
// larger than the evaluation's, i.e. the online algorithm is practical.
#include <benchmark/benchmark.h>

#include <memory>

#include "baselines/baselines.h"
#include "core/grefar.h"
#include "core/per_slot_solvers.h"
#include "lookahead/lookahead.h"
#include "lookahead/mpc.h"
#include "price/price_model.h"
#include "sim/availability.h"
#include "util/rng.h"
#include "workload/arrival_process.h"

namespace grefar {
namespace {

/// Builds a synthetic cluster with `n_dcs` DCs, `n_types` job types and
/// `n_servers` server types, plus a populated random observation.
struct Instance {
  ClusterConfig config;
  SlotObservation obs;
};

Instance make_instance(std::size_t n_dcs, std::size_t n_job_types,
                       std::size_t n_server_types, std::uint64_t seed) {
  Rng rng(seed);
  Instance inst;
  for (std::size_t k = 0; k < n_server_types; ++k) {
    inst.config.server_types.push_back({"srv" + std::to_string(k),
                                        rng.uniform(0.5, 1.5), rng.uniform(0.4, 1.4)});
  }
  for (std::size_t i = 0; i < n_dcs; ++i) {
    DataCenterConfig dc;
    dc.name = "dc" + std::to_string(i);
    for (std::size_t k = 0; k < n_server_types; ++k) {
      dc.installed.push_back(rng.uniform_int(50, 200));
    }
    inst.config.data_centers.push_back(std::move(dc));
  }
  const std::size_t n_accounts = 4;
  for (std::size_t m = 0; m < n_accounts; ++m) {
    inst.config.accounts.push_back({"org" + std::to_string(m), 1.0 / n_accounts});
  }
  for (std::size_t j = 0; j < n_job_types; ++j) {
    JobType jt;
    jt.name = "job" + std::to_string(j);
    jt.work = rng.uniform(0.5, 5.0);
    for (std::size_t i = 0; i < n_dcs; ++i) {
      if (rng.bernoulli(0.7) || jt.eligible_dcs.empty()) jt.eligible_dcs.push_back(i);
    }
    jt.account = j % n_accounts;
    inst.config.job_types.push_back(std::move(jt));
  }
  inst.config.validate();

  inst.obs.slot = 0;
  for (std::size_t i = 0; i < n_dcs; ++i) {
    inst.obs.prices.push_back(rng.uniform(0.2, 0.8));
  }
  inst.obs.availability = Matrix<std::int64_t>(n_dcs, n_server_types);
  for (std::size_t i = 0; i < n_dcs; ++i) {
    for (std::size_t k = 0; k < n_server_types; ++k) {
      inst.obs.availability(i, k) = inst.config.data_centers[i].installed[k];
    }
  }
  inst.obs.central_queue.assign(n_job_types, 0.0);
  for (auto& q : inst.obs.central_queue) q = rng.uniform(0.0, 30.0);
  inst.obs.dc_queue = MatrixD(n_dcs, n_job_types);
  for (std::size_t i = 0; i < n_dcs; ++i) {
    for (std::size_t j = 0; j < n_job_types; ++j) {
      if (inst.config.job_types[j].eligible(i)) {
        inst.obs.dc_queue(i, j) = rng.uniform(0.0, 20.0);
      }
    }
  }
  return inst;
}

GreFarParams bench_params(double beta) {
  GreFarParams p;
  p.V = 7.5;
  p.beta = beta;
  p.r_max = 1e6;
  p.h_max = 1e6;
  return p;
}

void BM_GreFarDecideGreedy(benchmark::State& state) {
  auto inst = make_instance(static_cast<std::size_t>(state.range(0)),
                            static_cast<std::size_t>(state.range(1)), 3, 1);
  GreFarScheduler scheduler(inst.config, bench_params(0.0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheduler.decide(inst.obs));
  }
}
BENCHMARK(BM_GreFarDecideGreedy)
    ->Args({3, 8})
    ->Args({10, 16})
    ->Args({30, 32})
    ->Args({100, 64})
    ->Args({300, 128});

void BM_GreFarDecideFairnessPgd(benchmark::State& state) {
  auto inst = make_instance(static_cast<std::size_t>(state.range(0)),
                            static_cast<std::size_t>(state.range(1)), 3, 2);
  GreFarScheduler scheduler(inst.config, bench_params(100.0),
                            PerSlotSolver::kProjectedGradient);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheduler.decide(inst.obs));
  }
}
BENCHMARK(BM_GreFarDecideFairnessPgd)
    ->Args({3, 8})
    ->Args({10, 16})
    ->Args({30, 32})
    ->Args({100, 64});

void BM_GreFarDecideFairnessFrankWolfe(benchmark::State& state) {
  auto inst = make_instance(static_cast<std::size_t>(state.range(0)),
                            static_cast<std::size_t>(state.range(1)), 3, 3);
  GreFarScheduler scheduler(inst.config, bench_params(100.0),
                            PerSlotSolver::kFrankWolfe);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheduler.decide(inst.obs));
  }
}
BENCHMARK(BM_GreFarDecideFairnessFrankWolfe)
    ->Args({3, 8})
    ->Args({10, 16})
    ->Args({30, 32});

/// Million-account instance for the sparse per-slot path (DESIGN.md §12):
/// `n_types` job types, one account per type, queues empty except the first
/// `n_active` types, and the observation carries the active-type hint. With
/// the hint plus clamp_to_queue the scheduler runs the compact per-slot
/// problem, so the decide cost must track n_active, not n_types.
Instance make_sparse_instance(std::size_t n_types, std::size_t n_active,
                              std::uint64_t seed) {
  const std::size_t n_dcs = 2;
  const std::size_t n_server_types = 2;
  Rng rng(seed);
  Instance inst;
  for (std::size_t k = 0; k < n_server_types; ++k) {
    inst.config.server_types.push_back({"srv" + std::to_string(k),
                                        rng.uniform(0.5, 1.5), rng.uniform(0.4, 1.4)});
  }
  for (std::size_t i = 0; i < n_dcs; ++i) {
    DataCenterConfig dc;
    dc.name = "dc" + std::to_string(i);
    for (std::size_t k = 0; k < n_server_types; ++k) {
      dc.installed.push_back(rng.uniform_int(200, 400));
    }
    inst.config.data_centers.push_back(std::move(dc));
  }
  inst.config.accounts.assign(n_types, {"", 1.0 / static_cast<double>(n_types)});
  inst.config.job_types.reserve(n_types);
  for (std::size_t j = 0; j < n_types; ++j) {
    JobType jt;  // names left empty: 10^6 distinct strings buy nothing here
    jt.work = 0.5 + 0.5 * static_cast<double>(j % 3);
    jt.eligible_dcs.push_back(j % n_dcs);
    jt.account = j;
    inst.config.job_types.push_back(std::move(jt));
  }
  inst.config.validate();

  inst.obs.slot = 0;
  for (std::size_t i = 0; i < n_dcs; ++i) {
    inst.obs.prices.push_back(rng.uniform(0.2, 0.8));
  }
  inst.obs.availability = Matrix<std::int64_t>(n_dcs, n_server_types);
  for (std::size_t i = 0; i < n_dcs; ++i) {
    for (std::size_t k = 0; k < n_server_types; ++k) {
      inst.obs.availability(i, k) = inst.config.data_centers[i].installed[k];
    }
  }
  inst.obs.central_queue.assign(n_types, 0.0);
  inst.obs.dc_queue = MatrixD(n_dcs, n_types);
  for (std::size_t j = 0; j < n_active; ++j) {
    inst.obs.central_queue[j] = static_cast<double>(rng.uniform_int(1, 6));
    inst.obs.dc_queue(j % n_dcs, j) = rng.uniform(0.0, 3.0);
    inst.obs.active_types.push_back(static_cast<std::uint32_t>(j));
  }
  inst.obs.active_types_valid = true;
  return inst;
}

void BM_GreFarDecidePgdAccounts(benchmark::State& state) {
  // args = {M, active}. decide_into (not decide): the sparse clearing of the
  // output matrices relies on buffer identity across slots, exactly how the
  // engine drives the scheduler.
  auto inst = make_sparse_instance(static_cast<std::size_t>(state.range(0)),
                                   static_cast<std::size_t>(state.range(1)), 21);
  GreFarParams p = bench_params(100.0);
  p.clamp_to_queue = true;  // required for the sparse per-slot regime
  GreFarScheduler scheduler(inst.config, p, PerSlotSolver::kProjectedGradient);
  SlotAction action;
  for (auto _ : state) {
    scheduler.decide_into(inst.obs, action);
    benchmark::DoNotOptimize(action.process(0, 0));
  }
}
// {1000, 1000} is the dense reference slot (every account active at M =
// 10^3); the acceptance bar is the 10^6-account slot with ~10^3 active
// staying within 3x of it.
BENCHMARK(BM_GreFarDecidePgdAccounts)
    ->Args({1000, 1000})
    ->Args({100000, 1000})
    ->Args({1000000, 1000});

void BM_GreFarDecideLp(benchmark::State& state) {
  auto inst = make_instance(static_cast<std::size_t>(state.range(0)),
                            static_cast<std::size_t>(state.range(1)), 3, 4);
  GreFarScheduler scheduler(inst.config, bench_params(0.0), PerSlotSolver::kLp);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheduler.decide(inst.obs));
  }
}
BENCHMARK(BM_GreFarDecideLp)->Args({3, 8})->Args({10, 16});

void BM_LookaheadFrame(benchmark::State& state) {
  // One T-slot frame LP, built and solved from scratch (the unit of work
  // the parallel frame fan-out distributes).
  ClusterConfig c;
  c.server_types = {{"fast", 1.0, 1.0}, {"eff", 0.5, 0.4}};
  for (int i = 0; i < 4; ++i) {
    c.data_centers.push_back({"dc" + std::to_string(i), {30, 20}});
  }
  c.accounts = {{"a", 0.5}, {"b", 0.5}};
  c.job_types = {{"j0", 1.0, {0, 1, 2, 3}, 0},
                 {"j1", 2.0, {0, 1, 2, 3}, 1},
                 {"j2", 1.5, {0, 1, 2, 3}, 0},
                 {"j3", 0.5, {0, 1, 2, 3}, 1}};
  Rng rng(6);
  std::vector<std::vector<double>> price_rows(4);
  for (auto& row : price_rows) {
    for (int t = 0; t < 24; ++t) row.push_back(rng.uniform(0.2, 0.9));
  }
  TablePriceModel prices(price_rows);
  FullAvailability avail(c.data_centers);
  ConstantArrivals arrivals({2, 1, 2, 1});
  LookaheadParams p;
  p.T = state.range(0);
  p.R = 1;
  p.r_max = 1e6;
  p.h_max = 1e6;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_lookahead(c, prices, avail, arrivals, p));
  }
}
BENCHMARK(BM_LookaheadFrame)->Arg(8)->Arg(24);

void BM_MpcStep(benchmark::State& state) {
  // Steady-state MPC slot: same window structure each call, warm-started
  // from the previous optimal basis (the cold first solve is untimed).
  ClusterConfig c;
  c.server_types = {{"std", 1.0, 1.0}};
  c.data_centers = {{"dc0", {12}}, {"dc1", {12}}};
  c.accounts = {{"a", 0.5}, {"b", 0.5}};
  c.job_types = {{"ja", 1.0, {0, 1}, 0}, {"jb", 2.0, {0, 1}, 1}};
  auto prices = std::make_shared<TablePriceModel>(std::vector<std::vector<double>>{
      {0.9, 0.8, 0.7, 0.3, 0.2, 0.3, 0.8, 0.9},
      {0.7, 0.7, 0.5, 0.4, 0.3, 0.4, 0.6, 0.7}});
  auto avail = std::make_shared<FullAvailability>(c.data_centers);
  auto arr = std::make_shared<ConstantArrivals>(std::vector<std::int64_t>{3, 2});
  MpcParams p;
  p.window = state.range(0);
  p.r_max = 50.0;
  p.h_max = 50.0;
  MpcScheduler scheduler(c, prices, avail, arr, p);

  SlotObservation obs;
  obs.slot = 0;
  obs.prices = {0.9, 0.7};
  obs.availability = Matrix<std::int64_t>(2, 1);
  obs.availability(0, 0) = 12;
  obs.availability(1, 0) = 12;
  obs.central_queue = {4.0, 2.0};
  obs.dc_queue = MatrixD(2, 2);
  obs.dc_queue(0, 0) = 2.0;
  obs.dc_queue(1, 1) = 1.0;
  scheduler.decide(obs);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheduler.decide(obs));
  }
}
BENCHMARK(BM_MpcStep)->Arg(8);

void BM_AlwaysDecide(benchmark::State& state) {
  auto inst = make_instance(static_cast<std::size_t>(state.range(0)),
                            static_cast<std::size_t>(state.range(1)), 3, 5);
  AlwaysScheduler scheduler(inst.config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheduler.decide(inst.obs));
  }
}
BENCHMARK(BM_AlwaysDecide)->Args({3, 8})->Args({30, 32});

}  // namespace
}  // namespace grefar

#include "common/benchmark_main.h"
