// Scheduler landscape: every policy in the library on one small instance.
//
// Not a figure from the paper — a synthesis bench positioning GreFar among
// its alternatives on the 2-DC periodic-price instance where the offline
// optimum is computable exactly:
//   * Always / Random / LocalOnly / CheapestFirst (price-blind or myopic),
//   * PriceThreshold (hand-tuned static rule),
//   * GreFar across V (no prediction, provable guarantees),
//   * oracle MPC across windows (perfect prediction upper baseline),
//   * the T-step lookahead LP bound (eq. (19)).
#include <iostream>
#include <memory>

#include "baselines/baselines.h"
#include "common/experiment.h"
#include "core/grefar.h"
#include "lookahead/lookahead.h"
#include "lookahead/mpc.h"
#include "price/price_model.h"
#include "sim/engine.h"
#include "stats/summary_table.h"
#include "util/strings.h"

namespace {

grefar::ClusterConfig landscape_config() {
  grefar::ClusterConfig c;
  c.server_types = {{"std", 1.0, 1.0}};
  c.data_centers = {{"dc1", {12}}, {"dc2", {12}}};
  c.accounts = {{"a", 1.0}};
  c.job_types = {{"j", 1.0, {0, 1}, 0}};
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace grefar;
  using namespace grefar::bench;

  CliParser cli("scheduler_landscape", "all schedulers on one solvable instance");
  add_common_options(cli, /*default_horizon=*/"800");
  parse_or_exit(cli, argc, argv);
  const auto horizon = cli.get_int("horizon");
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const auto jobs = jobs_from_cli(cli);

  ObsSession obs(cli);

  print_header("Scheduler landscape (2-DC periodic-price instance)",
               "synthesis bench (not a paper figure)", seed, horizon);

  // Everything a leg needs, built fresh per leg (PoissonArrivals carries a
  // lazily extended cache, so instances must not cross threads).
  struct Instance {
    grefar::ClusterConfig config;
    std::shared_ptr<TablePriceModel> prices;
    std::shared_ptr<FullAvailability> avail;
    std::shared_ptr<PoissonArrivals> arrivals;
  };
  auto make_instance = [seed] {
    Instance inst;
    inst.config = landscape_config();
    inst.prices = std::make_shared<TablePriceModel>(std::vector<std::vector<double>>{
        {0.9, 0.8, 0.7, 0.3, 0.2, 0.3, 0.8, 0.9},
        {0.7, 0.7, 0.5, 0.4, 0.3, 0.4, 0.6, 0.7}});
    inst.avail = std::make_shared<FullAvailability>(inst.config.data_centers);
    inst.arrivals = std::make_shared<PoissonArrivals>(
        std::vector<double>{6.0}, std::vector<std::int64_t>{18}, seed);
    return inst;
  };

  const std::vector<double> grefar_vs = {2.0, 8.0, 32.0};
  const std::vector<std::int64_t> mpc_windows = {2, 8};
  const std::size_t num_legs = 5 + grefar_vs.size() + mpc_windows.size();
  auto sweep = run_sweep(num_legs, horizon, jobs, [&](std::size_t leg) {
    Instance inst = make_instance();
    std::shared_ptr<Scheduler> scheduler;
    switch (leg) {
      case 0: scheduler = std::make_shared<RandomScheduler>(inst.config, seed ^ 1); break;
      case 1: scheduler = std::make_shared<LocalOnlyScheduler>(inst.config); break;
      case 2: scheduler = std::make_shared<AlwaysScheduler>(inst.config); break;
      case 3: scheduler = std::make_shared<CheapestFirstScheduler>(inst.config); break;
      case 4: scheduler = std::make_shared<PriceThresholdScheduler>(inst.config, 0.45); break;
      default:
        if (leg < 5 + grefar_vs.size()) {
          GreFarParams p;
          p.V = grefar_vs[leg - 5];
          p.r_max = 50.0;
          p.h_max = 50.0;
          scheduler = std::make_shared<GreFarScheduler>(inst.config, p);
        } else {
          MpcParams p;
          p.window = mpc_windows[leg - 5 - grefar_vs.size()];
          p.r_max = 50.0;
          p.h_max = 50.0;
          scheduler = std::make_shared<MpcScheduler>(inst.config, inst.prices,
                                                     inst.avail, inst.arrivals, p);
        }
    }
    return std::make_unique<SimulationEngine>(inst.config, inst.prices, inst.avail,
                                              inst.arrivals, std::move(scheduler));
  }, &obs);

  SummaryTable table({"scheduler", "avg energy cost", "avg delay", "p95 delay"});
  for (const auto& engine : sweep.engines) {
    const auto& m = engine->metrics();
    table.add_row(engine->scheduler().name(),
                  {m.final_average_energy_cost(), m.mean_delay(), m.delay_p95()});
  }

  std::cout << table.render() << "\n";

  // The offline bound for context (serial; one LP solve).
  Instance inst = make_instance();
  LookaheadParams lp;
  lp.T = 8;
  lp.R = horizon / lp.T;
  lp.r_max = 50.0;
  lp.h_max = 50.0;
  double bound =
      solve_lookahead(inst.config, *inst.prices, *inst.avail, *inst.arrivals, lp)
          .average_cost;
  std::cout << "T=8 lookahead LP bound (eq. 19): " << format_fixed(bound, 3)
            << "\n\nreading: oracle MPC(W=8) nearly attains the offline bound;\n"
               "GreFar at large V closes most of that gap with *no* prediction.\n"
               "A hand-tuned static threshold competes on this stationary\n"
               "periodic instance but offers no adaptivity or guarantees when\n"
               "prices/arrivals are non-stationary (the paper's setting);\n"
               "myopic price-blind policies pay 1.6-2x more.\n";
  obs.finish();
  return 0;
}
