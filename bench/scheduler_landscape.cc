// Scheduler landscape: every policy in the library on one small instance.
//
// Not a figure from the paper — a synthesis bench positioning GreFar among
// its alternatives on the 2-DC periodic-price instance where the offline
// optimum is computable exactly:
//   * Always / Random / LocalOnly / CheapestFirst (price-blind or myopic),
//   * PriceThreshold (hand-tuned static rule),
//   * GreFar across V (no prediction, provable guarantees),
//   * oracle MPC across windows (perfect prediction upper baseline),
//   * the T-step lookahead LP bound (eq. (19)).
#include <iostream>
#include <memory>

#include "baselines/baselines.h"
#include "common/experiment.h"
#include "core/grefar.h"
#include "lookahead/lookahead.h"
#include "lookahead/mpc.h"
#include "price/price_model.h"
#include "sim/engine.h"
#include "stats/summary_table.h"
#include "util/strings.h"

namespace {

grefar::ClusterConfig landscape_config() {
  grefar::ClusterConfig c;
  c.server_types = {{"std", 1.0, 1.0}};
  c.data_centers = {{"dc1", {12}}, {"dc2", {12}}};
  c.accounts = {{"a", 1.0}};
  c.job_types = {{"j", 1.0, {0, 1}, 0}};
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace grefar;
  using namespace grefar::bench;

  CliParser cli("scheduler_landscape", "all schedulers on one solvable instance");
  add_common_options(cli, /*default_horizon=*/"800");
  parse_or_exit(cli, argc, argv);
  const auto horizon = cli.get_int("horizon");
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const auto jobs = jobs_from_cli(cli);
  const auto audit = audit_from_cli(cli);

  ObsSession obs(cli);

  print_header("Scheduler landscape (2-DC periodic-price instance)",
               "synthesis bench (not a paper figure)", seed, horizon);

  // Everything a leg needs, built fresh per leg (PoissonArrivals carries a
  // lazily extended cache, so instances must not cross threads).
  struct Instance {
    grefar::ClusterConfig config;
    std::shared_ptr<TablePriceModel> prices;
    std::shared_ptr<FullAvailability> avail;
    std::shared_ptr<PoissonArrivals> arrivals;
  };
  auto make_instance = [seed] {
    Instance inst;
    inst.config = landscape_config();
    inst.prices = std::make_shared<TablePriceModel>(std::vector<std::vector<double>>{
        {0.9, 0.8, 0.7, 0.3, 0.2, 0.3, 0.8, 0.9},
        {0.7, 0.7, 0.5, 0.4, 0.3, 0.4, 0.6, 0.7}});
    inst.avail = std::make_shared<FullAvailability>(inst.config.data_centers);
    inst.arrivals = std::make_shared<PoissonArrivals>(
        std::vector<double>{6.0}, std::vector<std::int64_t>{18}, seed);
    return inst;
  };

  const std::vector<double> grefar_vs = {2.0, 8.0, 32.0};
  const std::vector<std::int64_t> mpc_windows = {2, 8};

  // One SweepSpec axis over the whole scheduler zoo. All legs share one
  // materialized instance (the Poisson arrivals realize into an immutable
  // table once); the MPC legs forecast from the shared table models — on
  // this instance prices/availability are already tables and the realized
  // arrival envelope matches the generator's, so the oracle sees the same
  // future either way.
  sweep::SweepSpec spec;
  sweep::SweepAxis policies{.name = "scheduler",
                            .labels = {"random", "local-only", "always",
                                       "cheapest-first", "price-threshold"}};
  for (double v : grefar_vs) policies.labels.push_back("grefar-v" + format_fixed(v, 0));
  for (auto w : mpc_windows) policies.labels.push_back("mpc-w" + std::to_string(w));
  spec.axes = {policies};
  spec.horizon = horizon;
  spec.scenario = [&](const sweep::SweepPoint&) {
    Instance inst = make_instance();
    PaperScenario scenario;
    scenario.config = inst.config;
    scenario.prices = inst.prices;
    scenario.availability = inst.avail;
    scenario.arrivals = inst.arrivals;
    scenario.seed = seed;
    return scenario;
  };
  spec.plan = [&](const sweep::SweepPoint& p) {
    sweep::LegPlan plan;
    plan.scenario_key = "landscape/seed=" + std::to_string(seed);
    const std::size_t leg = p.leg;
    if (leg >= 5 && leg < 5 + grefar_vs.size()) {
      GreFarParams gp;
      gp.V = grefar_vs[leg - 5];
      gp.r_max = 50.0;
      gp.h_max = 50.0;
      plan.grefar = sweep::GreFarLegSpec{gp, {}};
      return plan;
    }
    plan.make_scheduler =
        [leg, seed, &mpc_windows,
         &grefar_vs](const sweep::ScenarioArtifacts& art) -> std::shared_ptr<Scheduler> {
      switch (leg) {
        case 0: return std::make_shared<RandomScheduler>(*art.config, seed ^ 1);
        case 1: return std::make_shared<LocalOnlyScheduler>(*art.config);
        case 2: return std::make_shared<AlwaysScheduler>(*art.config);
        case 3: return std::make_shared<CheapestFirstScheduler>(*art.config);
        case 4: return std::make_shared<PriceThresholdScheduler>(*art.config, 0.45);
        default: {
          MpcParams p;
          p.window = mpc_windows[leg - 5 - grefar_vs.size()];
          p.r_max = 50.0;
          p.h_max = 50.0;
          return std::make_shared<MpcScheduler>(*art.config, art.prices,
                                                art.availability, art.arrivals, p);
        }
      }
    };
    return plan;
  };
  auto sweep_results = run_sweep_spec(spec, jobs, audit, &obs);

  SummaryTable table({"scheduler", "avg energy cost", "avg delay", "p95 delay"});
  for (const auto& leg : sweep_results) {
    const auto& m = leg.metrics;
    table.add_row(leg.scheduler_name,
                  {m.final_average_energy_cost(), m.mean_delay(), m.delay_p95()});
  }

  std::cout << table.render() << "\n";

  // The offline bound for context (serial; one LP solve).
  Instance inst = make_instance();
  LookaheadParams lp;
  lp.T = 8;
  lp.R = horizon / lp.T;
  lp.r_max = 50.0;
  lp.h_max = 50.0;
  double bound =
      solve_lookahead(inst.config, *inst.prices, *inst.avail, *inst.arrivals, lp)
          .average_cost;
  std::cout << "T=8 lookahead LP bound (eq. 19): " << format_fixed(bound, 3)
            << "\n\nreading: oracle MPC(W=8) nearly attains the offline bound;\n"
               "GreFar at large V closes most of that gap with *no* prediction.\n"
               "A hand-tuned static threshold competes on this stationary\n"
               "periodic instance but offers no adaptivity or guarantees when\n"
               "prices/arrivals are non-stationary (the paper's setting);\n"
               "myopic price-blind policies pay 1.6-2x more.\n";
  obs.finish();
  return 0;
}
