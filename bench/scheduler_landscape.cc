// Scheduler landscape: every policy in the library on one small instance.
//
// Not a figure from the paper — a synthesis bench positioning GreFar among
// its alternatives on the 2-DC periodic-price instance where the offline
// optimum is computable exactly:
//   * Always / Random / LocalOnly / CheapestFirst (price-blind or myopic),
//   * PriceThreshold (hand-tuned static rule),
//   * GreFar across V (no prediction, provable guarantees),
//   * oracle MPC across windows (perfect prediction upper baseline),
//   * the T-step lookahead LP bound (eq. (19)).
#include <iostream>
#include <memory>

#include "baselines/baselines.h"
#include "common/experiment.h"
#include "core/grefar.h"
#include "lookahead/lookahead.h"
#include "lookahead/mpc.h"
#include "price/price_model.h"
#include "sim/engine.h"
#include "stats/summary_table.h"
#include "util/strings.h"

namespace {

grefar::ClusterConfig landscape_config() {
  grefar::ClusterConfig c;
  c.server_types = {{"std", 1.0, 1.0}};
  c.data_centers = {{"dc1", {12}}, {"dc2", {12}}};
  c.accounts = {{"a", 1.0}};
  c.job_types = {{"j", 1.0, {0, 1}, 0}};
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace grefar;
  using namespace grefar::bench;

  CliParser cli("scheduler_landscape", "all schedulers on one solvable instance");
  add_common_options(cli, /*default_horizon=*/"800");
  parse_or_exit(cli, argc, argv);
  const auto horizon = cli.get_int("horizon");
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  print_header("Scheduler landscape (2-DC periodic-price instance)",
               "synthesis bench (not a paper figure)", seed, horizon);

  auto config = landscape_config();
  auto prices = std::make_shared<TablePriceModel>(std::vector<std::vector<double>>{
      {0.9, 0.8, 0.7, 0.3, 0.2, 0.3, 0.8, 0.9},
      {0.7, 0.7, 0.5, 0.4, 0.3, 0.4, 0.6, 0.7}});
  auto avail = std::make_shared<FullAvailability>(config.data_centers);
  auto arrivals = std::make_shared<PoissonArrivals>(
      std::vector<double>{6.0}, std::vector<std::int64_t>{18}, seed);

  SummaryTable table({"scheduler", "avg energy cost", "avg delay", "p95 delay"});
  auto run = [&](std::shared_ptr<Scheduler> scheduler) {
    SimulationEngine engine(config, prices, avail, arrivals, std::move(scheduler));
    engine.run(horizon);
    const auto& m = engine.metrics();
    table.add_row(engine.scheduler().name(),
                  {m.final_average_energy_cost(), m.mean_delay(), m.delay_p95()});
  };

  run(std::make_shared<RandomScheduler>(config, seed ^ 1));
  run(std::make_shared<LocalOnlyScheduler>(config));
  run(std::make_shared<AlwaysScheduler>(config));
  run(std::make_shared<CheapestFirstScheduler>(config));
  run(std::make_shared<PriceThresholdScheduler>(config, 0.45));
  for (double V : {2.0, 8.0, 32.0}) {
    GreFarParams p;
    p.V = V;
    p.r_max = 50.0;
    p.h_max = 50.0;
    run(std::make_shared<GreFarScheduler>(config, p));
  }
  for (std::int64_t W : {2, 8}) {
    MpcParams p;
    p.window = W;
    p.r_max = 50.0;
    p.h_max = 50.0;
    run(std::make_shared<MpcScheduler>(config, prices, avail, arrivals, p));
  }

  std::cout << table.render() << "\n";

  // The offline bound for context.
  LookaheadParams lp;
  lp.T = 8;
  lp.R = horizon / lp.T;
  lp.r_max = 50.0;
  lp.h_max = 50.0;
  double bound = solve_lookahead(config, *prices, *avail, *arrivals, lp).average_cost;
  std::cout << "T=8 lookahead LP bound (eq. 19): " << format_fixed(bound, 3)
            << "\n\nreading: oracle MPC(W=8) nearly attains the offline bound;\n"
               "GreFar at large V closes most of that gap with *no* prediction.\n"
               "A hand-tuned static threshold competes on this stationary\n"
               "periodic instance but offers no adaptivity or guarantees when\n"
               "prices/arrivals are non-stationary (the paper's setting);\n"
               "myopic price-blind policies pay 1.6-2x more.\n";
  return 0;
}
