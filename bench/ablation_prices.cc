// Ablation (DESIGN.md §5.4): price-model dependence.
//
// GreFar's advantage over Always comes from *temporal* price variation.
// Under constant prices the advantage should vanish (only spatial choice
// remains); under spikier prices it should widen.
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "baselines/baselines.h"
#include "common/experiment.h"
#include "core/grefar.h"
#include "price/price_model.h"
#include "sim/metrics.h"
#include "stats/summary_table.h"

int main(int argc, char** argv) {
  using namespace grefar;
  using namespace grefar::bench;

  CliParser cli("ablation_prices", "GreFar's edge vs price-model variability");
  add_common_options(cli, /*default_horizon=*/"1000");
  parse_or_exit(cli, argc, argv);
  const auto horizon = cli.get_int("horizon");
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const auto jobs = jobs_from_cli(cli);
  const auto audit = audit_from_cli(cli);

  ObsSession obs(cli);

  print_header("Ablation: price model vs GreFar's advantage",
               "DESIGN.md section 5 (design-choice ablation)", seed, horizon);

  const std::vector<std::string> variant_names = {
      "constant (Table I means)", "diurnal+OU (paper)", "diurnal+OU with spikes"};
  // Price model for a variant, built on top of a leg's own base scenario
  // (SpikyPriceModel keeps a mutable RNG and cache, so it cannot be shared).
  auto variant_prices = [seed](std::size_t variant, const PaperScenario& base)
      -> std::shared_ptr<const PriceModel> {
    switch (variant) {
      case 0:
        return std::make_shared<ConstantPriceModel>(
            std::vector<double>{0.392, 0.433, 0.548});
      case 1:
        return base.prices;
      default:
        return std::make_shared<SpikyPriceModel>(base.prices, 0.02, 2.5, 0.5,
                                                 seed ^ 0x5111ULL);
    }
  };

  // GreFar's saving decomposes into a *spatial* part (concentrating work on
  // low cost-per-work servers, which works even under constant prices) and a
  // *temporal* part (running work in cheap hours). The clean temporal metric
  // is the price-capture ratio: the work-weighted average price each
  // scheduler paid, relative to the time-average price of the DCs it used.
  // Capture < 1 means work was shifted into troughs; constant prices force
  // capture == 1 exactly.
  auto price_capture = [&](const SimMetrics& m) {
    double paid = 0.0, reference = 0.0;
    for (std::size_t dc = 0; dc < m.num_data_centers(); ++dc) {
      double work = m.dc_work[dc].sum();
      double mean_price = m.dc_price[dc].mean();
      for (std::size_t t = 0; t < m.slots(); ++t) {
        paid += m.dc_price[dc].at(t) * m.dc_work[dc].at(t);
      }
      reference += mean_price * work;
    }
    return reference > 0.0 ? paid / reference : 1.0;
  };

  const double V = 20.0;  // strong deferral to make the temporal effect visible
  // variant x {GreFar, Always} as a SweepSpec cross product: the two policies
  // of a variant share one materialized scenario (the spiky model realizes
  // into an immutable table once, so it can be shared across legs).
  sweep::SweepSpec spec;
  spec.axes = {{.name = "prices", .labels = {"constant", "paper", "spiky"}},
               {.name = "policy", .labels = {"grefar", "always"}}};
  spec.horizon = horizon;
  spec.scenario = [&](const sweep::SweepPoint& p) {
    PaperScenario scenario = make_paper_scenario(seed);
    scenario.prices = variant_prices(p.index(0), scenario);
    return scenario;
  };
  spec.plan = [&](const sweep::SweepPoint& p) {
    sweep::LegPlan plan;
    plan.scenario_key = "paper/seed=" + std::to_string(seed) +
                        "/prices=" + std::to_string(p.index(0));
    if (p.index(1) == 0) {
      plan.grefar = sweep::GreFarLegSpec{paper_grefar_params(V, 0.0), {}};
    } else {
      plan.make_scheduler = [](const sweep::ScenarioArtifacts& art) {
        return std::make_shared<AlwaysScheduler>(*art.config);
      };
    }
    return plan;
  };
  auto sweep_results = run_sweep_spec(spec, jobs, audit, &obs);

  SummaryTable table({"price model", "Always cost", "GreFar cost", "saving %",
                      "Always capture", "GreFar capture"});
  for (std::size_t v = 0; v < variant_names.size(); ++v) {
    const auto& grefar = sweep_results[v * 2].metrics;
    const auto& always = sweep_results[v * 2 + 1].metrics;
    double eg = grefar.final_average_energy_cost();
    double ea = always.final_average_energy_cost();
    table.add_row(variant_names[v], {ea, eg, 100.0 * (ea - eg) / ea,
                                     price_capture(always),
                                     price_capture(grefar)});
  }
  std::cout << table.render()
            << "\nexpected: price capture is exactly 1 for everyone under constant\n"
               "prices (nothing to time). With variable prices Always pays a\n"
               "premium (capture > 1: its processing follows the diurnal arrivals,\n"
               "which peak with prices) while GreFar holds capture at or below 1 —\n"
               "the temporal arbitrage. The constant-price saving that remains is\n"
               "purely spatial.\n";
  obs.finish();
  return 0;
}
