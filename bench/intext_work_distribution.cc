// In-text result (§VI-B1): with V = 7.5 and beta = 100, the average work
// per time step scheduled to data centers #1/#2/#3 is 33.967/48.502/14.770 —
// more work is processed where the energy cost per unit work is lower
// (DC2 < DC1 < DC3, see Table I).
#include <iostream>
#include <memory>

#include "baselines/baselines.h"
#include "common/experiment.h"
#include "util/strings.h"
#include "core/grefar.h"
#include "price/price_model.h"
#include "stats/summary_table.h"

int main(int argc, char** argv) {
  using namespace grefar;
  using namespace grefar::bench;

  CliParser cli("intext_work_distribution",
                "reproduce the Sec. VI-B1 in-text work distribution");
  add_common_options(cli);
  cli.add_option("V", "7.5", "GreFar cost-delay parameter");
  cli.add_option("beta", "100", "GreFar energy-fairness parameter");
  parse_or_exit(cli, argc, argv);
  const auto horizon = cli.get_int("horizon");
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const double V = cli.get_double("V");
  const double beta = cli.get_double("beta");
  const auto audit = audit_from_cli(cli);

  ObsSession obs(cli);

  print_header("In-text: average work per slot per data center",
               "Ren, He, Xu (ICDCS'12), Sec. VI-B1", seed, horizon);

  PaperScenario scenario = make_paper_scenario(seed);
  auto grefar = make_scenario_engine(
      scenario,
      std::make_shared<GreFarScheduler>(scenario.config, paper_grefar_params(V, beta)),
      {}, audit);
  obs.attach_tracer(*grefar);  // reference run carries the --trace records
  grefar->run(horizon);
  auto always = run_scenario(scenario, std::make_shared<AlwaysScheduler>(scenario.config),
                             horizon, {}, audit);

  const double paper[3] = {33.967, 48.502, 14.770};
  SummaryTable table({"DC", "cost/work", "GreFar work/slot", "paper", "Always work/slot"});
  for (std::size_t dc = 0; dc < 3; ++dc) {
    const auto& st = scenario.config.server_types[dc];
    double cost_per_work =
        average_price(*scenario.prices, dc, horizon) * st.busy_power / st.speed;
    // Built in two steps: GCC 12's -Wrestrict misfires on `"#" + temporary`.
    std::string label = "#";
    label += std::to_string(dc + 1);
    table.add_row({label, format_fixed(cost_per_work, 3),
                   format_fixed(grefar->metrics().mean_dc_work(dc), 3),
                   format_fixed(paper[dc], 3),
                   format_fixed(always->metrics().mean_dc_work(dc), 3)});
  }
  std::cout << table.render()
            << "\npaper shape: GreFar's ordering is DC2 > DC1 > DC3 — work flows to\n"
               "the lowest energy cost per unit work; Always ignores cost.\n";
  obs.finish();
  return 0;
}
