#include "lookahead/mpc.h"

#include <gtest/gtest.h>

#include "baselines/baselines.h"
#include "core/grefar.h"
#include "price/price_model.h"
#include "sim/engine.h"
#include "util/check.h"

namespace grefar {
namespace {

ClusterConfig one_dc_config() {
  ClusterConfig c;
  c.server_types = {{"std", 1.0, 1.0}};
  c.data_centers = {{"dc", {12}}};
  c.accounts = {{"a", 1.0}};
  c.job_types = {{"j", 1.0, {0}, 0}};
  return c;
}

ClusterConfig two_dc_config() {
  ClusterConfig c;
  c.server_types = {{"std", 1.0, 1.0}};
  c.data_centers = {{"dc1", {12}}, {"dc2", {12}}};
  c.accounts = {{"a", 1.0}};
  c.job_types = {{"j", 1.0, {0, 1}, 0}};
  return c;
}

MpcParams mpc_params(std::int64_t window) {
  MpcParams p;
  p.window = window;
  p.r_max = 50.0;
  p.h_max = 50.0;
  return p;
}

TEST(Mpc, RejectsBadConstruction) {
  auto c = one_dc_config();
  auto prices = std::make_shared<ConstantPriceModel>(std::vector<double>{0.5});
  auto avail = std::make_shared<FullAvailability>(c.data_centers);
  auto arr = std::make_shared<ConstantArrivals>(std::vector<std::int64_t>{2});
  auto p = mpc_params(0);
  EXPECT_THROW(MpcScheduler(c, prices, avail, arr, p), ContractViolation);
  EXPECT_THROW(MpcScheduler(c, nullptr, avail, arr, mpc_params(4)),
               ContractViolation);
}

TEST(Mpc, NameEncodesWindow) {
  auto c = one_dc_config();
  auto prices = std::make_shared<ConstantPriceModel>(std::vector<double>{0.5});
  auto avail = std::make_shared<FullAvailability>(c.data_centers);
  auto arr = std::make_shared<ConstantArrivals>(std::vector<std::int64_t>{2});
  MpcScheduler s(c, prices, avail, arr, mpc_params(6));
  EXPECT_EQ(s.name(), "MPC(W=6)");
}

TEST(Mpc, DefersToTheCheapSlotWithinWindow) {
  // Price pattern 0.9, 0.9, 0.1 repeating; jobs should run on 0.1 slots.
  auto c = one_dc_config();
  auto prices = std::make_shared<TablePriceModel>(
      std::vector<std::vector<double>>{{0.9, 0.9, 0.1}});
  auto avail = std::make_shared<FullAvailability>(c.data_centers);
  auto arr = std::make_shared<ConstantArrivals>(std::vector<std::int64_t>{3});
  auto sched = std::make_shared<MpcScheduler>(c, prices, avail, arr, mpc_params(3));
  SimulationEngine engine(c, prices, avail, arr, sched);
  engine.run(30);
  const auto& m = engine.metrics();
  double cheap_work = 0.0, expensive_work = 0.0;
  for (std::size_t t = 0; t < m.slots(); ++t) {
    if (m.dc_price[0].at(t) < 0.5) cheap_work += m.dc_work[0].at(t);
    else expensive_work += m.dc_work[0].at(t);
  }
  EXPECT_GT(cheap_work, 5.0 * std::max(expensive_work, 1.0));
}

TEST(Mpc, RoutesToTheCheaperDataCenter) {
  auto c = two_dc_config();
  auto prices = std::make_shared<TablePriceModel>(
      std::vector<std::vector<double>>{{0.8}, {0.2}});
  auto avail = std::make_shared<FullAvailability>(c.data_centers);
  auto arr = std::make_shared<ConstantArrivals>(std::vector<std::int64_t>{5});
  auto sched = std::make_shared<MpcScheduler>(c, prices, avail, arr, mpc_params(2));
  SimulationEngine engine(c, prices, avail, arr, sched);
  engine.run(20);
  EXPECT_GT(engine.metrics().dc_work[1].sum(),
            10.0 * std::max(engine.metrics().dc_work[0].sum(), 1.0));
}

TEST(Mpc, BeatsAlwaysOnVariablePrices) {
  auto c = two_dc_config();
  auto prices = std::make_shared<TablePriceModel>(std::vector<std::vector<double>>{
      {0.9, 0.8, 0.7, 0.3, 0.2, 0.3, 0.8, 0.9},
      {0.7, 0.7, 0.5, 0.4, 0.3, 0.4, 0.6, 0.7}});
  auto avail = std::make_shared<FullAvailability>(c.data_centers);
  auto arr = std::make_shared<ConstantArrivals>(std::vector<std::int64_t>{6});

  auto run_with = [&](std::shared_ptr<Scheduler> scheduler) {
    SimulationEngine engine(c, prices, avail, arr, std::move(scheduler));
    engine.run(160);
    return engine.metrics().final_average_energy_cost();
  };
  double mpc = run_with(std::make_shared<MpcScheduler>(c, prices, avail, arr,
                                                       mpc_params(8)));
  double always = run_with(std::make_shared<AlwaysScheduler>(c));
  EXPECT_LT(mpc, 0.8 * always);
}

TEST(Mpc, OracleWindowUpperBoundsGreFar) {
  // With the window spanning the full price period, oracle MPC should do at
  // least as well as (converged) GreFar on the same instance.
  auto c = two_dc_config();
  auto prices = std::make_shared<TablePriceModel>(std::vector<std::vector<double>>{
      {0.9, 0.8, 0.7, 0.3, 0.2, 0.3, 0.8, 0.9},
      {0.7, 0.7, 0.5, 0.4, 0.3, 0.4, 0.6, 0.7}});
  auto avail = std::make_shared<FullAvailability>(c.data_centers);
  auto arr = std::make_shared<ConstantArrivals>(std::vector<std::int64_t>{6});

  SimulationEngine mpc_engine(
      c, prices, avail, arr,
      std::make_shared<MpcScheduler>(c, prices, avail, arr, mpc_params(8)));
  mpc_engine.run(160);

  GreFarParams g;
  g.V = 32.0;
  g.r_max = 50.0;
  g.h_max = 50.0;
  SimulationEngine grefar_engine(c, prices, avail, arr,
                                 std::make_shared<GreFarScheduler>(c, g));
  grefar_engine.run(160);

  EXPECT_LE(mpc_engine.metrics().final_average_energy_cost(),
            grefar_engine.metrics().final_average_energy_cost() * 1.05);
}

TEST(Mpc, StableUnderLoad) {
  auto c = one_dc_config();
  auto prices = std::make_shared<TablePriceModel>(
      std::vector<std::vector<double>>{{0.5, 0.6, 0.4, 0.7}});
  auto avail = std::make_shared<FullAvailability>(c.data_centers);
  auto arr = std::make_shared<ConstantArrivals>(std::vector<std::int64_t>{9});
  auto sched = std::make_shared<MpcScheduler>(c, prices, avail, arr, mpc_params(4));
  SimulationEngine engine(c, prices, avail, arr, sched);
  engine.run(80);
  // Arrivals 9 vs capacity 12: the queue must stay bounded.
  EXPECT_LT(engine.metrics().total_queue_jobs.at(79), 80.0);
}

TEST(Mpc, WarmStartReentersAtTheColdOptimum) {
  // decide() twice on the same observation: the second call re-enters phase 2
  // at the previous optimal basis, finds no improving column, and must return
  // exactly the action a cold scheduler computes.
  auto c = two_dc_config();
  auto prices = std::make_shared<TablePriceModel>(
      std::vector<std::vector<double>>{{0.8, 0.4}, {0.2, 0.6}});
  auto avail = std::make_shared<FullAvailability>(c.data_centers);
  auto arr = std::make_shared<ConstantArrivals>(std::vector<std::int64_t>{5});

  SlotObservation obs;
  obs.slot = 0;
  obs.prices = {0.8, 0.2};
  obs.availability = Matrix<std::int64_t>(2, 1);
  obs.availability(0, 0) = 12;
  obs.availability(1, 0) = 12;
  obs.central_queue = {7.0};
  obs.dc_queue = MatrixD(2, 1);
  obs.dc_queue(0, 0) = 3.0;
  obs.dc_queue(1, 0) = 1.0;

  MpcScheduler warm(c, prices, avail, arr, mpc_params(4));
  auto first = warm.decide(obs);   // cold (no basis yet)
  auto second = warm.decide(obs);  // warm re-entry at the optimum

  auto cold_params = mpc_params(4);
  cold_params.warm_start = false;
  MpcScheduler cold(c, prices, avail, arr, cold_params);
  auto reference = cold.decide(obs);

  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(first.route(i, 0), reference.route(i, 0)) << "dc " << i;
    EXPECT_EQ(first.process(i, 0), reference.process(i, 0)) << "dc " << i;
    EXPECT_EQ(second.route(i, 0), reference.route(i, 0)) << "dc " << i;
    EXPECT_EQ(second.process(i, 0), reference.process(i, 0)) << "dc " << i;
  }
}

TEST(Mpc, WarmStartMatchesColdScheduleCost) {
  // Rolling a full horizon: every slot's window LP *optimum* is identical
  // warm or cold, but under exact price ties the two may execute different
  // optimal vertices, deferring different amounts of work past the end of
  // the run — so realized costs agree only to a few percent, not exactly.
  auto c = two_dc_config();
  auto prices = std::make_shared<TablePriceModel>(std::vector<std::vector<double>>{
      {0.9, 0.8, 0.7, 0.3, 0.2, 0.3, 0.8, 0.9},
      {0.7, 0.7, 0.5, 0.4, 0.3, 0.4, 0.6, 0.7}});
  auto avail = std::make_shared<FullAvailability>(c.data_centers);
  auto arr = std::make_shared<ConstantArrivals>(std::vector<std::int64_t>{6});

  auto run_with = [&](bool warm_start) {
    auto p = mpc_params(8);
    p.warm_start = warm_start;
    SimulationEngine engine(c, prices, avail, arr,
                            std::make_shared<MpcScheduler>(c, prices, avail, arr, p));
    engine.run(120);
    return engine.metrics().final_average_energy_cost();
  };
  double warm = run_with(true);
  double cold = run_with(false);
  EXPECT_NEAR(warm, cold, 0.1 * std::max(1.0, std::abs(cold)));
}

TEST(Mpc, WindowOneIsMyopic) {
  // W = 1 cannot defer: it behaves like process-now whenever the terminal
  // penalty exceeds the current price, giving ~Always-like delay.
  auto c = one_dc_config();
  auto prices = std::make_shared<ConstantPriceModel>(std::vector<double>{0.5});
  auto avail = std::make_shared<FullAvailability>(c.data_centers);
  auto arr = std::make_shared<ConstantArrivals>(std::vector<std::int64_t>{4});
  auto sched = std::make_shared<MpcScheduler>(c, prices, avail, arr, mpc_params(1));
  SimulationEngine engine(c, prices, avail, arr, sched);
  engine.run(40);
  EXPECT_NEAR(engine.metrics().mean_delay(), 1.0, 0.2);
}

}  // namespace
}  // namespace grefar
