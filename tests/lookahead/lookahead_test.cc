#include "lookahead/lookahead.h"

#include <gtest/gtest.h>

#include "core/grefar.h"
#include "sim/scalar_engine.h"
#include "util/check.h"
#include "workload/arrival_process.h"

namespace grefar {
namespace {

ClusterConfig one_dc_config() {
  ClusterConfig c;
  c.server_types = {{"std", 1.0, 1.0}};
  c.data_centers = {{"dc", {10}}};
  c.accounts = {{"a", 1.0}};
  c.job_types = {{"j", 1.0, {0}, 0}};
  return c;
}

ClusterConfig two_dc_config() {
  ClusterConfig c;
  c.server_types = {{"std", 1.0, 1.0}};
  c.data_centers = {{"dc1", {10}}, {"dc2", {10}}};
  c.accounts = {{"a", 1.0}};
  c.job_types = {{"j", 1.0, {0, 1}, 0}};
  return c;
}

LookaheadParams lookahead_params(std::int64_t T, std::int64_t R) {
  LookaheadParams p;
  p.T = T;
  p.R = R;
  p.r_max = 100.0;
  p.h_max = 100.0;
  return p;
}

TEST(Lookahead, ProcessesAtTheCheapestSlotInFrame) {
  // Prices alternate 0.9 / 0.1; all work should run on the 0.1 slots.
  auto config = one_dc_config();
  TablePriceModel prices(std::vector<std::vector<double>>{{0.9, 0.1}});
  FullAvailability avail(config.data_centers);
  ConstantArrivals arrivals({4});

  auto result = solve_lookahead(config, prices, avail, arrivals,
                                lookahead_params(2, 3));
  ASSERT_EQ(result.frame_costs.size(), 3u);
  // Per frame: 8 arrivals processed at price 0.1 => energy 0.8 over 2 slots.
  for (double c : result.frame_costs) EXPECT_NEAR(c, 0.4, 1e-6);
  EXPECT_NEAR(result.average_cost, 0.4, 1e-6);
}

TEST(Lookahead, RoutesWorkToTheCheaperDataCenter) {
  auto config = two_dc_config();
  TablePriceModel prices(std::vector<std::vector<double>>{{0.8}, {0.2}});
  FullAvailability avail(config.data_centers);
  ConstantArrivals arrivals({5});
  auto result = solve_lookahead(config, prices, avail, arrivals,
                                lookahead_params(1, 4));
  // Everything at DC2: 5 work * 0.2 = 1.0 per slot.
  EXPECT_NEAR(result.average_cost, 1.0, 1e-6);
}

TEST(Lookahead, CapacityForcesSpillToExpensiveDc) {
  auto config = two_dc_config();
  config.data_centers[1].installed = {2};  // cheap DC capacity 2
  TablePriceModel prices(std::vector<std::vector<double>>{{0.8}, {0.2}});
  FullAvailability avail(config.data_centers);
  ConstantArrivals arrivals({5});
  auto result = solve_lookahead(config, prices, avail, arrivals,
                                lookahead_params(1, 2));
  // 2 work at 0.2 + 3 work at 0.8 = 0.4 + 2.4 = 2.8.
  EXPECT_NEAR(result.average_cost, 2.8, 1e-6);
}

TEST(Lookahead, LongerFramesNeverCostMore) {
  // More lookahead = more temporal flexibility => frame-average optimum
  // cannot increase.
  auto config = one_dc_config();
  TablePriceModel prices(std::vector<std::vector<double>>{{0.9, 0.5, 0.1, 0.7, 0.3, 0.2, 0.8, 0.4}});
  FullAvailability avail(config.data_centers);
  ConstantArrivals arrivals({3});
  auto short_frames = solve_lookahead(config, prices, avail, arrivals,
                                      lookahead_params(1, 8));
  auto long_frames = solve_lookahead(config, prices, avail, arrivals,
                                     lookahead_params(8, 1));
  EXPECT_LE(long_frames.average_cost, short_frames.average_cost + 1e-9);
}

TEST(Lookahead, UsesEnergyEfficientServersFirst) {
  ClusterConfig c;
  c.server_types = {{"fast", 1.0, 1.0}, {"eff", 0.5, 0.3}};
  c.data_centers = {{"dc", {10, 4}}};  // eff capacity 2
  c.accounts = {{"a", 1.0}};
  c.job_types = {{"j", 1.0, {0}, 0}};
  TablePriceModel prices(std::vector<std::vector<double>>{{1.0}});
  FullAvailability avail(c.data_centers);
  ConstantArrivals arrivals({3});
  auto result = solve_lookahead(c, prices, avail, arrivals, lookahead_params(1, 1));
  // 2 work on eff (0.6/work) + 1 work on fast (1.0/work) = 1.2 + 1.0 = 2.2.
  EXPECT_NEAR(result.average_cost, 2.2, 1e-6);
}

TEST(Lookahead, InfeasibleWhenCapacityBelowArrivals) {
  auto config = one_dc_config();
  config.data_centers[0].installed = {2};
  TablePriceModel prices(std::vector<std::vector<double>>{{0.5}});
  FullAvailability avail(config.data_centers);
  ConstantArrivals arrivals({5});  // 5 > capacity 2 every slot
  EXPECT_THROW(solve_lookahead(config, prices, avail, arrivals,
                               lookahead_params(2, 1)),
               ContractViolation);
}

TEST(Lookahead, RMaxBoundRespected) {
  auto config = one_dc_config();
  TablePriceModel prices(std::vector<std::vector<double>>{{0.5}});
  FullAvailability avail(config.data_centers);
  ConstantArrivals arrivals({5});
  auto p = lookahead_params(1, 1);
  p.r_max = 2.0;  // cannot route the 5 arrivals
  EXPECT_THROW(solve_lookahead(config, prices, avail, arrivals, p),
               ContractViolation);
}

TEST(Lookahead, ZeroArrivalsZeroCost) {
  auto config = one_dc_config();
  TablePriceModel prices(std::vector<std::vector<double>>{{0.5}});
  FullAvailability avail(config.data_centers);
  ConstantArrivals arrivals({0});
  auto result = solve_lookahead(config, prices, avail, arrivals,
                                lookahead_params(4, 2));
  EXPECT_NEAR(result.average_cost, 0.0, 1e-9);
}

TEST(Lookahead, RejectsBadParams) {
  auto config = one_dc_config();
  TablePriceModel prices(std::vector<std::vector<double>>{{0.5}});
  FullAvailability avail(config.data_centers);
  ConstantArrivals arrivals({1});
  auto p = lookahead_params(0, 1);
  EXPECT_THROW(solve_lookahead(config, prices, avail, arrivals, p),
               ContractViolation);
}

FairLookaheadParams fair_params(std::int64_t T, std::int64_t R, double beta) {
  FairLookaheadParams p;
  p.base = lookahead_params(T, R);
  p.beta = beta;
  return p;
}

TEST(FairLookahead, BetaZeroMatchesTheLp) {
  auto config = two_dc_config();
  TablePriceModel prices(std::vector<std::vector<double>>{{0.8, 0.3}, {0.5, 0.5}});
  FullAvailability avail(config.data_centers);
  ConstantArrivals arrivals({4});
  auto lp_result = solve_lookahead(config, prices, avail, arrivals,
                                   lookahead_params(2, 3));
  auto fair_result = solve_lookahead_fair(config, prices, avail, arrivals,
                                          fair_params(2, 3, 0.0));
  EXPECT_NEAR(fair_result.average_cost, lp_result.average_cost, 1e-6);
}

TEST(FairLookahead, CostIsAboveTheEnergyOnlyBoundForBetaPositive) {
  // g = e - beta*f with f <= 0, so the optimal g is >= the optimal e... not
  // quite (different optimizers); but the *fair* optimum evaluated on g is
  // at least the energy-only optimum of e minus beta*0:
  //   min_g (e - beta f) >= min e  since -beta f >= 0.
  ClusterConfig config;
  config.server_types = {{"std", 1.0, 1.0}};
  config.data_centers = {{"dc1", {10}}, {"dc2", {10}}};
  config.accounts = {{"a", 0.5}, {"b", 0.5}};
  config.job_types = {{"ja", 1.0, {0, 1}, 0}, {"jb", 1.0, {0, 1}, 1}};
  TablePriceModel prices(std::vector<std::vector<double>>{{0.8, 0.3}, {0.5, 0.5}});
  FullAvailability avail(config.data_centers);
  ConstantArrivals arrivals({3, 2});
  auto energy_only = solve_lookahead(config, prices, avail, arrivals,
                                     lookahead_params(2, 2));
  auto fair = solve_lookahead_fair(config, prices, avail, arrivals,
                                   fair_params(2, 2, 25.0));
  EXPECT_GE(fair.average_cost, energy_only.average_cost - 1e-9);
}

TEST(FairLookahead, LargerBetaNeverLowersTheCost) {
  ClusterConfig config;
  config.server_types = {{"std", 1.0, 1.0}};
  config.data_centers = {{"dc", {10}}};
  config.accounts = {{"a", 0.7}, {"b", 0.3}};
  config.job_types = {{"ja", 1.0, {0}, 0}, {"jb", 1.0, {0}, 1}};
  TablePriceModel prices(std::vector<std::vector<double>>{{0.6, 0.2}});
  FullAvailability avail(config.data_centers);
  ConstantArrivals arrivals({2, 2});
  double prev = -1e300;
  for (double beta : {0.0, 5.0, 50.0}) {
    auto result = solve_lookahead_fair(config, prices, avail, arrivals,
                                       fair_params(2, 4, beta));
    EXPECT_GE(result.average_cost, prev - 1e-9) << "beta=" << beta;
    prev = result.average_cost;
  }
}

TEST(FairLookahead, UpperBoundsGreFarTheoremStyle) {
  // The beta > 0 analogue of the Theorem-1 bench: GreFar's energy-fairness
  // cost at large V should approach (and not hugely exceed) the fair
  // lookahead optimum.
  ClusterConfig config;
  config.server_types = {{"std", 1.0, 1.0}};
  config.data_centers = {{"dc1", {12}}, {"dc2", {12}}};
  config.accounts = {{"a", 0.5}, {"b", 0.5}};
  config.job_types = {{"ja", 1.0, {0, 1}, 0}, {"jb", 1.0, {0, 1}, 1}};
  auto prices = std::make_shared<TablePriceModel>(std::vector<std::vector<double>>{
      {0.9, 0.8, 0.7, 0.3, 0.2, 0.3, 0.8, 0.9},
      {0.7, 0.7, 0.5, 0.4, 0.3, 0.4, 0.6, 0.7}});
  auto avail = std::make_shared<FullAvailability>(config.data_centers);
  auto arrivals = std::make_shared<ConstantArrivals>(std::vector<std::int64_t>{3, 3});

  const double beta = 10.0;
  auto bound = solve_lookahead_fair(config, *prices, *avail, *arrivals,
                                    fair_params(8, 40, beta));

  GreFarParams g;
  g.V = 128.0;
  g.beta = beta;
  g.r_max = 50.0;
  g.h_max = 50.0;
  g.clamp_to_queue = true;
  g.process_after_routing = false;
  auto scheduler = std::make_shared<GreFarScheduler>(config, g);
  ScalarQueueSimulator sim(config, prices, avail, arrivals, scheduler);
  sim.run(320);
  EXPECT_LE(sim.average_cost(beta), bound.average_cost * 1.25 + 0.1);
}

TEST(FairLookahead, RejectsBadParams) {
  auto config = one_dc_config();
  TablePriceModel prices(std::vector<std::vector<double>>{{0.5}});
  FullAvailability avail(config.data_centers);
  ConstantArrivals arrivals({1});
  auto p = fair_params(2, 2, -1.0);
  EXPECT_THROW(solve_lookahead_fair(config, prices, avail, arrivals, p),
               ContractViolation);
  p = fair_params(2, 2, 1.0);
  p.fw_iterations = 0;
  EXPECT_THROW(solve_lookahead_fair(config, prices, avail, arrivals, p),
               ContractViolation);
}

TEST(Lookahead, FrameCostsBitIdenticalAcrossJobCounts) {
  // Frames are solved by independent workers but reduced in frame order, so
  // the result must be *bit-identical* at any job count, not merely close.
  auto config = two_dc_config();
  TablePriceModel prices(std::vector<std::vector<double>>{
      {0.9, 0.3, 0.5, 0.7}, {0.4, 0.6, 0.2, 0.8}});
  FullAvailability avail(config.data_centers);
  ConstantArrivals arrivals({3});
  auto serial_params = lookahead_params(2, 6);
  serial_params.jobs = 1;
  auto parallel_params = serial_params;
  parallel_params.jobs = 8;
  auto serial = solve_lookahead(config, prices, avail, arrivals, serial_params);
  auto parallel = solve_lookahead(config, prices, avail, arrivals, parallel_params);
  ASSERT_EQ(serial.frame_costs.size(), parallel.frame_costs.size());
  for (std::size_t r = 0; r < serial.frame_costs.size(); ++r) {
    EXPECT_EQ(serial.frame_costs[r], parallel.frame_costs[r]) << "frame " << r;
  }
  EXPECT_EQ(serial.average_cost, parallel.average_cost);

  auto hw_params = serial_params;
  hw_params.jobs = 0;  // all hardware threads
  auto hw = solve_lookahead(config, prices, avail, arrivals, hw_params);
  EXPECT_EQ(serial.average_cost, hw.average_cost);
}

TEST(FairLookahead, FrameCostsBitIdenticalAcrossJobCounts) {
  // Same guarantee for the FW path, whose warm-started LMO chains state
  // *within* a frame (never across frames or workers).
  ClusterConfig config;
  config.server_types = {{"std", 1.0, 1.0}};
  config.data_centers = {{"dc1", {10}}, {"dc2", {10}}};
  config.accounts = {{"a", 0.5}, {"b", 0.5}};
  config.job_types = {{"ja", 1.0, {0, 1}, 0}, {"jb", 1.0, {0, 1}, 1}};
  TablePriceModel prices(std::vector<std::vector<double>>{
      {0.8, 0.3, 0.6, 0.2}, {0.5, 0.5, 0.4, 0.7}});
  FullAvailability avail(config.data_centers);
  ConstantArrivals arrivals({3, 2});
  auto serial_params = fair_params(2, 6, 25.0);
  serial_params.base.jobs = 1;
  auto parallel_params = serial_params;
  parallel_params.base.jobs = 8;
  auto serial = solve_lookahead_fair(config, prices, avail, arrivals, serial_params);
  auto parallel =
      solve_lookahead_fair(config, prices, avail, arrivals, parallel_params);
  ASSERT_EQ(serial.frame_costs.size(), parallel.frame_costs.size());
  for (std::size_t r = 0; r < serial.frame_costs.size(); ++r) {
    EXPECT_EQ(serial.frame_costs[r], parallel.frame_costs[r]) << "frame " << r;
  }
  EXPECT_EQ(serial.average_cost, parallel.average_cost);
}

TEST(Lookahead, FrameLpShapes) {
  auto config = two_dc_config();
  auto p = lookahead_params(3, 1);
  TablePriceModel prices(std::vector<std::vector<double>>{{0.5}, {0.4}});
  FullAvailability avail(config.data_centers);
  ConstantArrivals arrivals({2});
  auto lp = build_frame_lp(config, prices, avail, arrivals, 0, p);
  // Variables: r (2*1*3) + u (2*1*3) + w (2*1*3) = 18.
  EXPECT_EQ(lp.num_vars(), 18u);
  EXPECT_GT(lp.num_constraints(), 0u);
}

}  // namespace
}  // namespace grefar
