#include "baselines/baselines.h"

#include <gtest/gtest.h>

#include "price/price_model.h"
#include "sim/engine.h"
#include "workload/arrival_process.h"

namespace grefar {
namespace {

ClusterConfig two_dc_config() {
  ClusterConfig c;
  c.server_types = {{"std", 1.0, 1.0}};
  c.data_centers = {{"dc1", {10}}, {"dc2", {10}}};
  c.accounts = {{"a", 1.0}};
  c.job_types = {{"j", 1.0, {0, 1}, 0}};
  return c;
}

SlotObservation obs_with(const ClusterConfig& c, double Q, double q0, double q1,
                         std::vector<double> prices = {0.5, 0.5}) {
  SlotObservation obs;
  obs.slot = 0;
  obs.prices = std::move(prices);
  obs.availability = Matrix<std::int64_t>(2, 1);
  obs.availability(0, 0) = c.data_centers[0].installed[0];
  obs.availability(1, 0) = c.data_centers[1].installed[0];
  obs.central_queue = {Q};
  obs.dc_queue = MatrixD(2, 1);
  obs.dc_queue(0, 0) = q0;
  obs.dc_queue(1, 0) = q1;
  return obs;
}

TEST(Always, RoutesEveryQueuedJob) {
  AlwaysScheduler s(two_dc_config());
  auto action = s.decide(obs_with(two_dc_config(), 6.0, 0.0, 0.0));
  EXPECT_DOUBLE_EQ(action.route(0, 0) + action.route(1, 0), 6.0);
}

TEST(Always, BalancesBySpareCapacity) {
  AlwaysScheduler s(two_dc_config());
  // dc1 already holds 8 jobs of work: spare 2 vs dc2 spare 10.
  auto action = s.decide(obs_with(two_dc_config(), 4.0, 8.0, 0.0));
  EXPECT_GT(action.route(1, 0), action.route(0, 0));
}

TEST(Always, ProcessesEverythingUpToCapacity) {
  AlwaysScheduler s(two_dc_config());
  auto action = s.decide(obs_with(two_dc_config(), 0.0, 4.0, 0.0));
  EXPECT_DOUBLE_EQ(action.process(0, 0), 4.0);
  // Over capacity: clamp to 10.
  auto big = s.decide(obs_with(two_dc_config(), 0.0, 25.0, 0.0));
  EXPECT_DOUBLE_EQ(big.process(0, 0), 10.0);
}

TEST(Always, IgnoresPrices) {
  AlwaysScheduler s(two_dc_config());
  auto cheap = s.decide(obs_with(two_dc_config(), 0.0, 4.0, 0.0, {0.01, 0.01}));
  auto expensive = s.decide(obs_with(two_dc_config(), 0.0, 4.0, 0.0, {10.0, 10.0}));
  EXPECT_DOUBLE_EQ(cheap.process(0, 0), expensive.process(0, 0));
}

TEST(CheapestFirst, RoutesToCheapestEligibleDc) {
  ClusterConfig c = two_dc_config();
  CheapestFirstScheduler s(c);
  auto action = s.decide(obs_with(c, 4.0, 0.0, 0.0, {0.9, 0.2}));
  EXPECT_DOUBLE_EQ(action.route(1, 0), 4.0);
  EXPECT_DOUBLE_EQ(action.route(0, 0), 0.0);
}

TEST(CheapestFirst, SpillsOverWhenCheapDcIsFull) {
  ClusterConfig c = two_dc_config();
  c.data_centers[1].installed = {3};  // tiny cheap DC
  CheapestFirstScheduler s(c);
  auto action = s.decide(obs_with(c, 6.0, 0.0, 0.0, {0.9, 0.2}));
  // availability for dc2 is 3 in the obs helper? -> rebuild obs:
  SlotObservation obs = obs_with(c, 6.0, 0.0, 0.0, {0.9, 0.2});
  obs.availability(1, 0) = 3;
  action = s.decide(obs);
  EXPECT_DOUBLE_EQ(action.route(1, 0), 3.0);
  EXPECT_DOUBLE_EQ(action.route(0, 0), 3.0);
}

TEST(Random, RoutesAllJobsAmongEligibleDcs) {
  RandomScheduler s(two_dc_config(), 42);
  auto action = s.decide(obs_with(two_dc_config(), 10.0, 0.0, 0.0));
  EXPECT_DOUBLE_EQ(action.route(0, 0) + action.route(1, 0), 10.0);
}

TEST(Random, DeterministicPerSeed) {
  RandomScheduler a(two_dc_config(), 7);
  RandomScheduler b(two_dc_config(), 7);
  auto obs = obs_with(two_dc_config(), 10.0, 0.0, 0.0);
  auto action_a = a.decide(obs);
  auto action_b = b.decide(obs);
  EXPECT_TRUE(action_a.route == action_b.route);
}

TEST(LocalOnly, PinsToFirstEligibleDc) {
  ClusterConfig c = two_dc_config();
  c.job_types[0].eligible_dcs = {1, 0};
  LocalOnlyScheduler s(c);
  auto action = s.decide(obs_with(c, 5.0, 0.0, 0.0));
  EXPECT_DOUBLE_EQ(action.route(1, 0), 5.0);
  EXPECT_DOUBLE_EQ(action.route(0, 0), 0.0);
}

TEST(BaselinesInEngine, AlwaysHasUnitAverageDelay) {
  // The paper: "the average delay is expected to be one" for Always.
  ClusterConfig c = two_dc_config();
  auto prices = std::make_shared<ConstantPriceModel>(std::vector<double>{0.5, 0.5});
  auto avail = std::make_shared<FullAvailability>(c.data_centers);
  auto arr = std::make_shared<ConstantArrivals>(std::vector<std::int64_t>{6});
  auto sched = std::make_shared<AlwaysScheduler>(c);
  SimulationEngine engine(c, prices, avail, arr, sched);
  engine.run(50);
  const auto& m = engine.metrics();
  double total_delay = 0.0, total_jobs = 0.0;
  for (std::size_t i = 0; i < 2; ++i) {
    total_delay += m.dc_delay_sum[i].sum();
    total_jobs += m.dc_completions[i].sum();
  }
  EXPECT_NEAR(total_delay / total_jobs, 1.0, 1e-9);
  // All arrived jobs (except the last slot's) completed.
  EXPECT_NEAR(total_jobs, 6.0 * 49, 1e-9);
}

TEST(BaselinesInEngine, AllBaselinesDrainTheQueue) {
  ClusterConfig c = two_dc_config();
  auto prices = std::make_shared<ConstantPriceModel>(std::vector<double>{0.5, 0.5});
  auto avail = std::make_shared<FullAvailability>(c.data_centers);
  auto arr = std::make_shared<ConstantArrivals>(std::vector<std::int64_t>{5});
  std::vector<std::shared_ptr<Scheduler>> schedulers = {
      std::make_shared<AlwaysScheduler>(c),
      std::make_shared<CheapestFirstScheduler>(c),
      std::make_shared<RandomScheduler>(c, 3),
      std::make_shared<LocalOnlyScheduler>(c),
  };
  for (auto& sched : schedulers) {
    SimulationEngine engine(c, prices, avail, arr, sched);
    engine.run(40);
    // Stable: queues stay bounded near the per-slot arrival batch.
    double backlog = engine.central_queue_length(0) +
                     engine.dc_queue_length(0, 0) + engine.dc_queue_length(1, 0);
    EXPECT_LE(backlog, 3 * 5.0 + 1e-9) << sched->name();
  }
}

TEST(PriceThreshold, ProcessesOnlyBelowThreshold) {
  PriceThresholdScheduler s(two_dc_config(), /*threshold=*/0.4);
  auto cheap = s.decide(obs_with(two_dc_config(), 0.0, 4.0, 0.0, {0.3, 0.3}));
  EXPECT_DOUBLE_EQ(cheap.process(0, 0), 4.0);
  auto expensive = s.decide(obs_with(two_dc_config(), 0.0, 4.0, 0.0, {0.5, 0.5}));
  EXPECT_DOUBLE_EQ(expensive.process(0, 0), 0.0);
}

TEST(PriceThreshold, PerDcDecision) {
  PriceThresholdScheduler s(two_dc_config(), 0.4);
  auto action = s.decide(obs_with(two_dc_config(), 0.0, 4.0, 4.0, {0.5, 0.3}));
  EXPECT_DOUBLE_EQ(action.process(0, 0), 0.0);  // DC1 too expensive
  EXPECT_DOUBLE_EQ(action.process(1, 0), 4.0);  // DC2 cheap enough
}

TEST(PriceThreshold, BacklogSafetyValveFires) {
  // Queue of 45 work > 4x capacity (40): forced processing despite price.
  PriceThresholdScheduler s(two_dc_config(), 0.4, /*backlog_factor=*/4.0);
  auto action = s.decide(obs_with(two_dc_config(), 0.0, 45.0, 0.0, {0.9, 0.9}));
  EXPECT_GT(action.process(0, 0), 0.0);
}

TEST(PriceThreshold, RoutesEverythingLikeCheapestFirst) {
  PriceThresholdScheduler s(two_dc_config(), 0.4);
  auto action = s.decide(obs_with(two_dc_config(), 6.0, 0.0, 0.0, {0.9, 0.2}));
  EXPECT_DOUBLE_EQ(action.route(1, 0), 6.0);
}

TEST(PriceThreshold, StableInClosedLoop) {
  ClusterConfig c = two_dc_config();
  auto prices = std::make_shared<ConstantPriceModel>(std::vector<double>{0.9, 0.9});
  auto avail = std::make_shared<FullAvailability>(c.data_centers);
  auto arr = std::make_shared<ConstantArrivals>(std::vector<std::int64_t>{5});
  // Threshold below the constant price: only the safety valve processes.
  auto sched = std::make_shared<PriceThresholdScheduler>(c, 0.4, 2.0);
  SimulationEngine engine(c, prices, avail, arr, sched);
  engine.run(300);
  double backlog = engine.central_queue_length(0) + engine.dc_queue_length(0, 0) +
                   engine.dc_queue_length(1, 0);
  EXPECT_LT(backlog, 200.0);  // bounded by the valve, not growing ~5*300
}

TEST(PriceThreshold, RejectsBadParameters) {
  EXPECT_THROW(PriceThresholdScheduler(two_dc_config(), 0.0), ContractViolation);
  EXPECT_THROW(PriceThresholdScheduler(two_dc_config(), 0.4, -1.0),
               ContractViolation);
}

TEST(DelayPercentiles, TrackCompletions) {
  ClusterConfig c = two_dc_config();
  auto prices = std::make_shared<ConstantPriceModel>(std::vector<double>{0.5, 0.5});
  auto avail = std::make_shared<FullAvailability>(c.data_centers);
  auto arr = std::make_shared<ConstantArrivals>(std::vector<std::int64_t>{6});
  auto sched = std::make_shared<AlwaysScheduler>(c);
  SimulationEngine engine(c, prices, avail, arr, sched);
  engine.run(60);
  const auto& m = engine.metrics();
  // Always completes everything one slot after arrival.
  EXPECT_GT(m.delay_stats.count(), 0);
  EXPECT_NEAR(m.delay_stats.mean(), 1.0, 1e-9);
  EXPECT_NEAR(m.delay_p50(), 1.0, 1e-9);
  EXPECT_NEAR(m.delay_p99(), 1.0, 1e-9);
}

TEST(Names, AreStable) {
  ClusterConfig c = two_dc_config();
  EXPECT_EQ(AlwaysScheduler(c).name(), "Always");
  EXPECT_EQ(CheapestFirstScheduler(c).name(), "CheapestFirst");
  EXPECT_EQ(RandomScheduler(c, 1).name(), "Random");
  EXPECT_EQ(LocalOnlyScheduler(c).name(), "LocalOnly");
  EXPECT_EQ(PriceThresholdScheduler(c, 0.35).name(), "PriceThreshold(0.350)");
}

}  // namespace
}  // namespace grefar
