#include "stats/time_series.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace grefar {
namespace {

TimeSeries make_series(std::vector<double> values, std::string name = "s") {
  TimeSeries ts(std::move(name));
  for (double v : values) ts.add(v);
  return ts;
}

TEST(TimeSeries, EmptyDefaults) {
  TimeSeries ts;
  EXPECT_TRUE(ts.empty());
  EXPECT_EQ(ts.size(), 0u);
  EXPECT_DOUBLE_EQ(ts.mean(), 0.0);
  EXPECT_DOUBLE_EQ(ts.sum(), 0.0);
  EXPECT_DOUBLE_EQ(ts.tail_mean(10), 0.0);
}

TEST(TimeSeries, AddAndAccess) {
  auto ts = make_series({1.0, 2.0, 3.0});
  EXPECT_EQ(ts.size(), 3u);
  EXPECT_DOUBLE_EQ(ts.at(1), 2.0);
  EXPECT_THROW(ts.at(3), ContractViolation);
}

TEST(TimeSeries, MeanAndSum) {
  auto ts = make_series({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(ts.mean(), 2.5);
  EXPECT_DOUBLE_EQ(ts.sum(), 10.0);
}

TEST(TimeSeries, PrefixAverageMatchesPaperDefinition) {
  // "summing up all the values up to time t and dividing by t"
  auto avg = make_series({2.0, 4.0, 6.0}).prefix_average();
  ASSERT_EQ(avg.size(), 3u);
  EXPECT_DOUBLE_EQ(avg.at(0), 2.0);
  EXPECT_DOUBLE_EQ(avg.at(1), 3.0);
  EXPECT_DOUBLE_EQ(avg.at(2), 4.0);
  EXPECT_EQ(avg.name(), "s_avg");
}

TEST(TimeSeries, PrefixAverageOfEmpty) {
  EXPECT_TRUE(TimeSeries("x").prefix_average().empty());
}

TEST(TimeSeries, TailMean) {
  auto ts = make_series({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(ts.tail_mean(2), 3.5);
  EXPECT_DOUBLE_EQ(ts.tail_mean(100), 2.5);  // all
}

TEST(TimeSeries, Downsample) {
  auto ts = make_series({0.0, 1.0, 2.0, 3.0, 4.0, 5.0});
  auto ds = ts.downsample(2);
  ASSERT_EQ(ds.size(), 3u);
  EXPECT_DOUBLE_EQ(ds.at(0), 0.0);
  EXPECT_DOUBLE_EQ(ds.at(1), 2.0);
  EXPECT_DOUBLE_EQ(ds.at(2), 4.0);
  EXPECT_THROW(ts.downsample(0), ContractViolation);
}

TEST(TimeSeries, PrefixRatioComputesRunningAverageDelay) {
  // delay sums: 2, 0, 4; completions: 1, 0, 2 => running delays 2, 2, 2.
  auto num = make_series({2.0, 0.0, 4.0}, "delay");
  auto den = make_series({1.0, 0.0, 2.0}, "jobs");
  auto ratio = TimeSeries::prefix_ratio(num, den, "avg_delay");
  ASSERT_EQ(ratio.size(), 3u);
  EXPECT_DOUBLE_EQ(ratio.at(0), 2.0);
  EXPECT_DOUBLE_EQ(ratio.at(1), 2.0);
  EXPECT_DOUBLE_EQ(ratio.at(2), 2.0);
}

TEST(TimeSeries, PrefixRatioZeroDenominatorIsZero) {
  auto num = make_series({5.0, 1.0}, "n");
  auto den = make_series({0.0, 1.0}, "d");
  auto ratio = TimeSeries::prefix_ratio(num, den, "r");
  EXPECT_DOUBLE_EQ(ratio.at(0), 0.0);
  EXPECT_DOUBLE_EQ(ratio.at(1), 6.0);
}

TEST(TimeSeries, PrefixRatioRequiresEqualLengths) {
  auto num = make_series({1.0}, "n");
  auto den = make_series({1.0, 2.0}, "d");
  EXPECT_THROW(TimeSeries::prefix_ratio(num, den, "r"), ContractViolation);
}

TEST(Correlation, PerfectPositiveAndNegative) {
  auto a = make_series({1.0, 2.0, 3.0, 4.0});
  auto b = make_series({2.0, 4.0, 6.0, 8.0});
  auto c = make_series({4.0, 3.0, 2.0, 1.0});
  EXPECT_NEAR(correlation(a, b), 1.0, 1e-12);
  EXPECT_NEAR(correlation(a, c), -1.0, 1e-12);
  EXPECT_NEAR(correlation(a, a), 1.0, 1e-12);
}

TEST(Correlation, ConstantSeriesGivesZero) {
  auto a = make_series({1.0, 2.0, 3.0});
  auto flat = make_series({5.0, 5.0, 5.0});
  EXPECT_DOUBLE_EQ(correlation(a, flat), 0.0);
  EXPECT_DOUBLE_EQ(correlation(flat, a), 0.0);
}

TEST(Correlation, EmptyAndMismatched) {
  TimeSeries empty("e");
  EXPECT_DOUBLE_EQ(correlation(empty, empty), 0.0);
  auto a = make_series({1.0, 2.0});
  auto b = make_series({1.0});
  EXPECT_THROW(correlation(a, b), ContractViolation);
}

TEST(Correlation, UncorrelatedIsNearZero) {
  // Alternating vs linear: correlation ~0 for even-length series.
  TimeSeries alt("alt"), lin("lin");
  for (int i = 0; i < 100; ++i) {
    alt.add(i % 2 == 0 ? 1.0 : -1.0);
    lin.add(static_cast<double>(i));
  }
  EXPECT_NEAR(correlation(alt, lin), 0.0, 0.05);
}

TEST(Correlation, InvariantToAffineTransforms) {
  auto a = make_series({3.0, 1.0, 4.0, 1.0, 5.0});
  auto b = make_series({2.0, 7.0, 1.0, 8.0, 2.0});
  TimeSeries a_scaled("s");
  for (double v : a.values()) a_scaled.add(10.0 * v - 3.0);
  EXPECT_NEAR(correlation(a, b), correlation(a_scaled, b), 1e-12);
}

TEST(TimeSeriesCsv, HeaderAndRows) {
  auto a = make_series({1.0, 2.0}, "alpha");
  auto b = make_series({3.0, 4.0}, "beta");
  auto csv = time_series_to_csv({&a, &b});
  EXPECT_NE(csv.find("slot,alpha,beta"), std::string::npos);
  EXPECT_NE(csv.find("0,1.000000,3.000000"), std::string::npos);
  EXPECT_NE(csv.find("1,2.000000,4.000000"), std::string::npos);
}

TEST(TimeSeriesCsv, UnequalLengthsPadWithEmpty) {
  auto a = make_series({1.0, 2.0, 3.0}, "a");
  auto b = make_series({9.0}, "b");
  auto csv = time_series_to_csv({&a, &b});
  EXPECT_NE(csv.find("2,3.000000,"), std::string::npos);
}

}  // namespace
}  // namespace grefar
