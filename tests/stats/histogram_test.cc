#include "stats/histogram.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/check.h"
#include "util/rng.h"

namespace grefar {
namespace {

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 10), ContractViolation);
  EXPECT_THROW(Histogram(2.0, 1.0, 10), ContractViolation);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), ContractViolation);
}

TEST(Histogram, BinEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(4), 8.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(4), 10.0);
  EXPECT_THROW(h.bin_lo(5), ContractViolation);
}

TEST(Histogram, CountsLandInCorrectBins) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);
  h.add(1.9);
  h.add(2.0);
  h.add(9.99);
  EXPECT_EQ(h.bin_count(0), 2);
  EXPECT_EQ(h.bin_count(1), 1);
  EXPECT_EQ(h.bin_count(4), 1);
  EXPECT_EQ(h.count(), 4);
}

TEST(Histogram, UnderOverflow) {
  Histogram h(0.0, 1.0, 2);
  h.add(-0.1);
  h.add(1.0);  // hi is exclusive
  h.add(5.0);
  EXPECT_EQ(h.underflow(), 1);
  EXPECT_EQ(h.overflow(), 2);
  EXPECT_EQ(h.count(), 3);
}

TEST(Histogram, QuantileOfUniformSamples) {
  Histogram h(0.0, 1.0, 100);
  Rng rng(3);
  for (int i = 0; i < 100000; ++i) h.add(rng.uniform());
  EXPECT_NEAR(h.quantile(0.5), 0.5, 0.02);
  EXPECT_NEAR(h.quantile(0.9), 0.9, 0.02);
  EXPECT_NEAR(h.quantile(0.1), 0.1, 0.02);
}

TEST(Histogram, QuantileEdges) {
  Histogram h(0.0, 1.0, 4);
  // Empty histograms have no quantiles: NaN, matching P2Quantile::value().
  EXPECT_TRUE(std::isnan(h.quantile(0.0)));
  EXPECT_TRUE(std::isnan(h.quantile(0.5)));
  EXPECT_TRUE(std::isnan(h.quantile(1.0)));
  h.add(0.5);
  EXPECT_THROW(h.quantile(-0.1), ContractViolation);
  EXPECT_THROW(h.quantile(1.1), ContractViolation);
}

TEST(Histogram, QuantileZeroAnchorsAtFirstPopulatedBin) {
  // All mass in [0.5, 0.75) with no underflow: q=0 must report the start of
  // the populated region, not the histogram's far-below-data lower edge.
  Histogram h(0.0, 1.0, 4);
  for (int i = 0; i < 10; ++i) h.add(0.6);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.5);
  // With underflowed samples, q=0 still clamps to lo.
  h.add(-1.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
}

TEST(Histogram, QuantileWithOverflowClamps) {
  Histogram h(0.0, 1.0, 4);
  for (int i = 0; i < 10; ++i) h.add(100.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.9), 1.0);
}

TEST(Histogram, QuantileWithUnderflowClamps) {
  Histogram h(0.0, 1.0, 4);
  for (int i = 0; i < 10; ++i) h.add(-5.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.1), 0.0);
}

TEST(Histogram, RenderShowsBars) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  h.add(0.6);
  h.add(1.5);
  auto out = h.render();
  EXPECT_NE(out.find('#'), std::string::npos);
  EXPECT_NE(out.find('2'), std::string::npos);
}

}  // namespace
}  // namespace grefar
