#include "stats/running_stats.h"
#include <cmath>

#include <gtest/gtest.h>

#include "util/check.h"
#include "util/rng.h"

namespace grefar {
namespace {

TEST(RunningStats, EmptyDefaults) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
  EXPECT_DOUBLE_EQ(s.sum(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(4.0);
  EXPECT_EQ(s.count(), 1);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 4.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of this classic dataset is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, StddevIsSqrtVariance) {
  RunningStats s;
  s.add(1.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 2.0);
  EXPECT_DOUBLE_EQ(s.stddev(), std::sqrt(2.0));
}

TEST(RunningStats, NumericallyStableForLargeOffset) {
  RunningStats s;
  const double offset = 1e9;
  for (double x : {offset + 1.0, offset + 2.0, offset + 3.0}) s.add(x);
  EXPECT_NEAR(s.mean(), offset + 2.0, 1e-3);
  EXPECT_NEAR(s.variance(), 1.0, 1e-6);
}

TEST(RunningStats, MergeMatchesSequential) {
  Rng rng(42);
  RunningStats all, left, right;
  for (int i = 0; i < 1000; ++i) {
    double x = rng.normal(3.0, 2.0);
    all.add(x);
    (i < 400 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.add(2.0);
  RunningStats a_copy = a;
  a.merge(b);  // no-op
  EXPECT_EQ(a.count(), 2);
  EXPECT_DOUBLE_EQ(a.mean(), a_copy.mean());
  b.merge(a);  // adopt
  EXPECT_EQ(b.count(), 2);
  EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

TEST(Ewma, FirstSampleInitializes) {
  Ewma e(0.5);
  EXPECT_FALSE(e.initialized());
  EXPECT_DOUBLE_EQ(e.value(), 0.0);
  e.add(10.0);
  EXPECT_TRUE(e.initialized());
  EXPECT_DOUBLE_EQ(e.value(), 10.0);
}

TEST(Ewma, SmoothsTowardNewValues) {
  Ewma e(0.5);
  e.add(0.0);
  e.add(10.0);
  EXPECT_DOUBLE_EQ(e.value(), 5.0);
  e.add(10.0);
  EXPECT_DOUBLE_EQ(e.value(), 7.5);
}

TEST(Ewma, AlphaOneTracksExactly) {
  Ewma e(1.0);
  e.add(3.0);
  e.add(-1.0);
  EXPECT_DOUBLE_EQ(e.value(), -1.0);
}

TEST(Ewma, RejectsBadAlpha) {
  EXPECT_THROW(Ewma(0.0), ContractViolation);
  EXPECT_THROW(Ewma(1.5), ContractViolation);
  EXPECT_THROW(Ewma(-0.1), ContractViolation);
}

TEST(Ewma, ConvergesToConstantInput) {
  Ewma e(0.2);
  for (int i = 0; i < 200; ++i) e.add(7.0);
  EXPECT_NEAR(e.value(), 7.0, 1e-9);
}

}  // namespace
}  // namespace grefar
