#include "stats/p2_quantile.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/check.h"
#include "util/rng.h"

namespace grefar {
namespace {

double exact_quantile(std::vector<double> values, double q) {
  std::sort(values.begin(), values.end());
  double idx = q * static_cast<double>(values.size() - 1);
  auto lo = static_cast<std::size_t>(idx);
  auto hi = std::min(lo + 1, values.size() - 1);
  double frac = idx - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

TEST(P2Quantile, RejectsBadQuantile) {
  EXPECT_THROW(P2Quantile(0.0), ContractViolation);
  EXPECT_THROW(P2Quantile(1.0), ContractViolation);
  EXPECT_THROW(P2Quantile(-0.5), ContractViolation);
}

TEST(P2Quantile, EmptyIsNaN) {
  // "No samples" must be distinguishable from a genuine zero-delay
  // percentile; JSON emitters turn the NaN into null.
  P2Quantile p(0.5);
  EXPECT_TRUE(std::isnan(p.value()));
  EXPECT_EQ(p.count(), 0);
}

TEST(P2Quantile, ExactForSmallSamples) {
  P2Quantile p(0.5);
  p.add(3.0);
  EXPECT_DOUBLE_EQ(p.value(), 3.0);
  p.add(1.0);
  EXPECT_DOUBLE_EQ(p.value(), 2.0);  // median of {1,3}
  p.add(5.0);
  EXPECT_DOUBLE_EQ(p.value(), 3.0);  // median of {1,3,5}
}

TEST(P2Quantile, MedianOfUniform) {
  P2Quantile p(0.5);
  Rng rng(1);
  for (int i = 0; i < 50000; ++i) p.add(rng.uniform());
  EXPECT_NEAR(p.value(), 0.5, 0.02);
}

TEST(P2Quantile, P99OfUniform) {
  P2Quantile p(0.99);
  Rng rng(2);
  for (int i = 0; i < 50000; ++i) p.add(rng.uniform());
  EXPECT_NEAR(p.value(), 0.99, 0.02);
}

TEST(P2Quantile, P90OfNormal) {
  P2Quantile p(0.9);
  Rng rng(3);
  std::vector<double> samples;
  for (int i = 0; i < 50000; ++i) {
    double x = rng.normal();
    p.add(x);
    samples.push_back(x);
  }
  EXPECT_NEAR(p.value(), exact_quantile(samples, 0.9), 0.05);
}

TEST(P2Quantile, HandlesSortedInput) {
  P2Quantile p(0.5);
  for (int i = 0; i < 10001; ++i) p.add(static_cast<double>(i));
  EXPECT_NEAR(p.value(), 5000.0, 100.0);
}

TEST(P2Quantile, HandlesReverseSortedInput) {
  P2Quantile p(0.5);
  for (int i = 10000; i >= 0; --i) p.add(static_cast<double>(i));
  EXPECT_NEAR(p.value(), 5000.0, 100.0);
}

TEST(P2Quantile, ConstantStream) {
  P2Quantile p(0.75);
  for (int i = 0; i < 1000; ++i) p.add(4.2);
  EXPECT_NEAR(p.value(), 4.2, 1e-9);
}

TEST(P2Quantile, CountTracksSamples) {
  P2Quantile p(0.5);
  for (int i = 0; i < 17; ++i) p.add(static_cast<double>(i));
  EXPECT_EQ(p.count(), 17);
}

// Parameterized sweep: accuracy across quantiles on exponential data.
class P2SweepTest : public ::testing::TestWithParam<double> {};

TEST_P(P2SweepTest, TracksExactQuantileOnExponential) {
  const double q = GetParam();
  P2Quantile p(q);
  Rng rng(static_cast<std::uint64_t>(q * 1e6));
  std::vector<double> samples;
  for (int i = 0; i < 40000; ++i) {
    double x = rng.exponential(1.0);
    p.add(x);
    samples.push_back(x);
  }
  double exact = exact_quantile(samples, q);
  EXPECT_NEAR(p.value(), exact, std::max(0.05, 0.1 * exact));
}

INSTANTIATE_TEST_SUITE_P(Quantiles, P2SweepTest,
                         ::testing::Values(0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99));

}  // namespace
}  // namespace grefar
