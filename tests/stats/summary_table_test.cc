#include "stats/summary_table.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace grefar {
namespace {

TEST(SummaryTable, RequiresHeaders) {
  EXPECT_THROW(SummaryTable({}), ContractViolation);
}

TEST(SummaryTable, RejectsRaggedRows) {
  SummaryTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), ContractViolation);
}

TEST(SummaryTable, RendersHeaderSeparatorAndRows) {
  SummaryTable t({"name", "value"});
  t.add_row({"x", "1"});
  auto out = t.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
  EXPECT_NE(out.find("x"), std::string::npos);
  EXPECT_EQ(t.rows(), 1u);
}

TEST(SummaryTable, NumericRowFormatting) {
  SummaryTable t({"dc", "price", "cost"});
  t.add_row("dc1", {0.392, 0.392}, 3);
  auto out = t.render();
  EXPECT_NE(out.find("0.392"), std::string::npos);
}

TEST(SummaryTable, ColumnsAlign) {
  SummaryTable t({"n", "long-header"});
  t.add_row({"very-long-label", "1"});
  auto out = t.render();
  // Each line must have the same length (aligned columns).
  std::size_t prev = std::string::npos;
  std::size_t start = 0;
  while (start < out.size()) {
    auto end = out.find('\n', start);
    if (end == std::string::npos) break;
    std::size_t len = end - start;
    if (prev != std::string::npos) {
      EXPECT_EQ(len, prev);
    }
    prev = len;
    start = end + 1;
  }
}

TEST(SummaryTable, EmptyTableRendersHeaderOnly) {
  SummaryTable t({"h1"});
  auto out = t.render();
  EXPECT_NE(out.find("h1"), std::string::npos);
  EXPECT_EQ(t.rows(), 0u);
}

}  // namespace
}  // namespace grefar
