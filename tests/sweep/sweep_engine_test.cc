// Sweep-engine determinism suite (DESIGN.md §16).
//
// The load-bearing guarantees, each locked by a test:
//   * chunked dynamic scheduling is invisible — results are bitwise
//     identical at any (jobs, chunk) combination;
//   * arena reuse is invisible — a reused engine/scheduler produces the
//     same bits as a freshly constructed one per leg;
//   * the whole sweep engine is equivalent to the historical
//     rebuild-per-leg path, leg for leg;
//   * warm starts (opt-in) stay deterministic across jobs/chunks even
//     though they are not bitwise-comparable to cold runs.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "baselines/baselines.h"
#include "core/grefar.h"
#include "obs/counters.h"
#include "scenario/paper_scenario.h"
#include "sweep/sweep_engine.h"

namespace grefar {
namespace sweep {
namespace {

constexpr std::int64_t kHorizon = 48;
constexpr std::uint64_t kSeed = 42;

/// 2 seeds x 3 V values x 2 policies = 12 legs, exercising the GreFar arena
/// path, the make_scheduler path and two distinct scenario keys at once.
SweepSpec small_spec() {
  SweepSpec spec;
  spec.axes = {{.name = "seed", .values = {42.0, 43.0}},
               {.name = "policy", .labels = {"grefar", "always"}},
               {.name = "V", .values = {2.0, 7.5, 20.0}}};
  spec.horizon = kHorizon;
  spec.scenario = [](const SweepPoint& p) {
    return make_paper_scenario(kSeed + p.index(0));
  };
  spec.plan = [](const SweepPoint& p) {
    LegPlan plan;
    plan.scenario_key = "paper/seed=" + std::to_string(kSeed + p.index(0));
    if (p.index(1) == 0) {
      plan.grefar = GreFarLegSpec{paper_grefar_params(p.value(2), 100.0), {}};
    } else {
      plan.make_scheduler = [](const ScenarioArtifacts& art) {
        return std::make_shared<AlwaysScheduler>(*art.config);
      };
    }
    return plan;
  };
  return spec;
}

struct LegDigest {
  std::vector<double> energy;
  std::vector<double> fairness;
  double delay = 0.0;
  double p95 = 0.0;
  std::string scheduler;

  bool operator==(const LegDigest& other) const = default;
};

std::vector<LegDigest> run_digests(const SweepOptions& options,
                                   const SweepSpec& spec) {
  SweepEngine engine(options);
  std::vector<LegDigest> digests(spec.num_legs());
  engine.run(spec, [&digests](std::size_t leg, SimulationEngine& e) {
    LegDigest& d = digests[leg];
    const SimMetrics& m = e.metrics();
    for (std::size_t t = 0; t < m.slots(); ++t) {
      d.energy.push_back(m.energy_cost.at(t));
      d.fairness.push_back(m.fairness.at(t));
    }
    d.delay = m.mean_delay();
    d.p95 = m.delay_p95();
    d.scheduler = std::string(e.scheduler().name());
  });
  return digests;
}

TEST(SweepEngineTest, BitwiseIdenticalAtAnyJobsAndChunk) {
  SweepSpec spec = small_spec();
  SweepOptions reference_options;
  reference_options.jobs = 1;
  reference_options.chunk_size = 1;
  auto reference = run_digests(reference_options, spec);
  ASSERT_EQ(reference.size(), 12u);
  for (std::size_t jobs : {std::size_t{1}, std::size_t{4}, std::size_t{8}}) {
    for (std::size_t chunk : {std::size_t{1}, std::size_t{7}, std::size_t{64}}) {
      SweepOptions options;
      options.jobs = jobs;
      options.chunk_size = chunk;
      auto digests = run_digests(options, spec);
      ASSERT_EQ(digests.size(), reference.size());
      for (std::size_t leg = 0; leg < digests.size(); ++leg) {
        EXPECT_TRUE(digests[leg] == reference[leg])
            << "leg " << leg << " differs at jobs=" << jobs
            << " chunk=" << chunk;
      }
    }
  }
}

TEST(SweepEngineTest, ReusedArenasMatchFreshEnginesBitwise) {
  SweepSpec spec = small_spec();
  SweepOptions fresh_options;
  fresh_options.jobs = 4;
  fresh_options.chunk_size = 3;
  fresh_options.reuse_engines = false;  // construct per leg: the reference
  auto fresh = run_digests(fresh_options, spec);
  SweepOptions reuse_options = fresh_options;
  reuse_options.reuse_engines = true;
  auto reused = run_digests(reuse_options, spec);
  ASSERT_EQ(fresh.size(), reused.size());
  for (std::size_t leg = 0; leg < fresh.size(); ++leg) {
    EXPECT_TRUE(fresh[leg] == reused[leg]) << "leg " << leg;
  }
}

TEST(SweepEngineTest, SteadyStateRunOnSameEngineIsBitwiseStable) {
  // Arenas persist across run() calls; the second pass (everything reused,
  // cache hot) must reproduce the first bit-for-bit.
  SweepSpec spec = small_spec();
  SweepOptions options;
  options.jobs = 2;
  options.chunk_size = 4;
  SweepEngine engine(options);
  auto collect_into = [&spec](std::vector<LegDigest>& digests) {
    digests.assign(spec.num_legs(), LegDigest{});
    return [&digests](std::size_t leg, SimulationEngine& e) {
      const SimMetrics& m = e.metrics();
      for (std::size_t t = 0; t < m.slots(); ++t) {
        digests[leg].energy.push_back(m.energy_cost.at(t));
      }
      digests[leg].delay = m.mean_delay();
    };
  };
  std::vector<LegDigest> first, second;
  engine.run(spec, collect_into(first));
  engine.run(spec, collect_into(second));
  EXPECT_EQ(engine.artifacts().size(), 2u) << "two unique scenario keys";
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t leg = 0; leg < first.size(); ++leg) {
    EXPECT_TRUE(first[leg] == second[leg]) << "leg " << leg;
  }
}

TEST(SweepEngineTest, MatchesRebuildPerLegPathBitwise) {
  SweepSpec spec = small_spec();
  SweepOptions options;
  options.jobs = 4;
  options.chunk_size = 2;
  auto sweep_digests = run_digests(options, spec);
  for (std::size_t leg = 0; leg < spec.num_legs(); ++leg) {
    SweepPoint p = spec.point(leg);
    PaperScenario scenario = make_paper_scenario(kSeed + p.index(0));
    std::shared_ptr<Scheduler> scheduler;
    if (p.index(1) == 0) {
      scheduler = std::make_shared<GreFarScheduler>(
          scenario.config, paper_grefar_params(p.value(2), 100.0));
    } else {
      scheduler = std::make_shared<AlwaysScheduler>(scenario.config);
    }
    auto engine = make_scenario_engine(scenario, std::move(scheduler));
    engine->run(kHorizon);
    const SimMetrics& m = engine->metrics();
    ASSERT_EQ(m.slots(), sweep_digests[leg].energy.size()) << "leg " << leg;
    for (std::size_t t = 0; t < m.slots(); ++t) {
      EXPECT_EQ(m.energy_cost.at(t), sweep_digests[leg].energy[t])
          << "leg " << leg << " slot " << t;
      EXPECT_EQ(m.fairness.at(t), sweep_digests[leg].fairness[t])
          << "leg " << leg << " slot " << t;
    }
    EXPECT_EQ(m.mean_delay(), sweep_digests[leg].delay) << "leg " << leg;
  }
}

/// GreFar-only spec for the warm-start tests (warm starts apply to the
/// scheduler arena path; the LP solver also reuses its simplex basis).
SweepSpec warm_spec() {
  SweepSpec spec;
  spec.axes = {{.name = "seed", .values = {42.0, 43.0}},
               {.name = "V", .values = {2.0, 7.5, 12.0, 20.0}}};
  spec.horizon = kHorizon;
  spec.scenario = [](const SweepPoint& p) {
    return make_paper_scenario(kSeed + p.index(0));
  };
  spec.plan = [](const SweepPoint& p) {
    LegPlan plan;
    plan.scenario_key = "paper/seed=" + std::to_string(kSeed + p.index(0));
    plan.grefar =
        GreFarLegSpec{paper_grefar_params(p.value(1), 0.0), PerSlotSolver::kLp};
    return plan;
  };
  return spec;
}

TEST(SweepEngineTest, WarmStartsAreDeterministicAcrossJobsAndChunks) {
  SweepSpec spec = warm_spec();
  SweepOptions reference_options;
  reference_options.jobs = 1;
  reference_options.chunk_size = 1;
  reference_options.warm_start = true;
  auto reference = run_digests(reference_options, spec);
  for (std::size_t jobs : {std::size_t{4}, std::size_t{8}}) {
    for (std::size_t chunk : {std::size_t{1}, std::size_t{7}}) {
      SweepOptions options = reference_options;
      options.jobs = jobs;
      options.chunk_size = chunk;
      auto digests = run_digests(options, spec);
      for (std::size_t leg = 0; leg < digests.size(); ++leg) {
        EXPECT_TRUE(digests[leg] == reference[leg])
            << "warm leg " << leg << " differs at jobs=" << jobs
            << " chunk=" << chunk;
      }
    }
  }
}

TEST(SweepEngineTest, WarmStartsActuallyFire) {
  SweepSpec spec = warm_spec();
  SweepOptions options;
  options.jobs = 1;
  options.warm_start = true;
  obs::CounterRegistry counters;
  {
    obs::CountersScope scope(&counters);
    SweepEngine engine(options);
    engine.run(spec, [](std::size_t, SimulationEngine&) {});
  }
  // 2 runs of 4 V values: legs 1..3 of each run are warm-eligible.
  EXPECT_EQ(counters.counter("sweep.warm_start_legs"), 6u);
  EXPECT_GT(counters.counter("per_slot.lp_warm_starts"), 0u);
}

TEST(SweepEngineTest, AuditStrideSamplesLegs) {
  // audit=throw on every 5th leg: runs clean (the paper scenario holds its
  // invariants) and proves the stride path executes end to end.
  SweepSpec spec = small_spec();
  SweepOptions options;
  options.jobs = 2;
  options.audit = AuditMode::kThrow;
  options.audit_stride = 5;
  SweepEngine engine(options);
  auto stats = engine.run(spec, [](std::size_t, SimulationEngine&) {});
  EXPECT_EQ(stats.legs, 12u);
  EXPECT_EQ(stats.unique_scenarios, 2u);
}

}  // namespace
}  // namespace sweep
}  // namespace grefar
