// Materialized scenario artifacts must replay the lazy stochastic models
// bitwise over [0, horizon) — the contract that lets sweep legs share one
// read-only instance instead of regenerating per leg — and the hash-cons
// cache must build each unique key exactly once.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "scenario/paper_scenario.h"
#include "sweep/artifact_cache.h"
#include "workload/arrival_process.h"

namespace grefar {
namespace sweep {
namespace {

constexpr std::int64_t kHorizon = 96;

TEST(ArtifactCacheTest, MaterializedPricesReplayLazyModelBitwise) {
  PaperScenario scenario = make_paper_scenario(/*seed=*/42);
  ScenarioArtifacts art = materialize_scenario(scenario, kHorizon);
  // A *fresh* lazy model from the same seed: materialization must neither
  // perturb nor depend on the original instance's cache state.
  PaperScenario fresh = make_paper_scenario(/*seed=*/42);
  ASSERT_EQ(art.prices->num_data_centers(), fresh.prices->num_data_centers());
  for (std::size_t i = 0; i < fresh.prices->num_data_centers(); ++i) {
    for (std::int64_t t = 0; t < kHorizon; ++t) {
      EXPECT_EQ(art.prices->price(i, t), fresh.prices->price(i, t))
          << "dc " << i << " slot " << t;
    }
  }
}

TEST(ArtifactCacheTest, MaterializedAvailabilityReplaysLazyModelBitwise) {
  PaperScenario scenario = make_paper_scenario(/*seed=*/7);
  ScenarioArtifacts art = materialize_scenario(scenario, kHorizon);
  PaperScenario fresh = make_paper_scenario(/*seed=*/7);
  for (std::int64_t t = 0; t < kHorizon; ++t) {
    EXPECT_TRUE(art.availability->availability(t) ==
                fresh.availability->availability(t))
        << "slot " << t;
  }
}

TEST(ArtifactCacheTest, MaterializedArrivalsReplayLazyModelExactly) {
  PaperScenario scenario = make_paper_scenario(/*seed=*/13);
  ScenarioArtifacts art = materialize_scenario(scenario, kHorizon);
  PaperScenario fresh = make_paper_scenario(/*seed=*/13);
  ASSERT_EQ(art.arrivals->num_job_types(), fresh.arrivals->num_job_types());
  EXPECT_EQ(art.arrivals->has_valued_arrivals(),
            fresh.arrivals->has_valued_arrivals());
  std::vector<std::int64_t> got, want;
  for (std::int64_t t = 0; t < kHorizon; ++t) {
    art.arrivals->arrivals_into(t, got);
    fresh.arrivals->arrivals_into(t, want);
    EXPECT_EQ(got, want) << "slot " << t;
  }
}

TEST(ArtifactCacheTest, ValuedArrivalsKeepBatchAnnotations) {
  // A hand-built valued process: the table must preserve batch order and
  // the value/decay/deadline annotations bit-for-bit.
  std::vector<std::vector<ArrivalBatch>> slots(4);
  slots[0] = {{/*type=*/0, /*count=*/2, /*value=*/5.0, /*decay=*/0.25,
               /*deadline=*/12},
              {/*type=*/1, /*count=*/1, /*value=*/3.5, /*decay=*/0.5,
               /*deadline=*/kTypeDefaultDeadline}};
  slots[2] = {{/*type=*/1, /*count=*/4}};
  PaperScenario scenario = make_paper_scenario(/*seed=*/1);
  scenario.arrivals = std::make_shared<ValuedTableArrivals>(slots, /*num_types=*/2);
  ScenarioArtifacts art = materialize_scenario(scenario, /*horizon=*/4);
  ASSERT_TRUE(art.arrivals->has_valued_arrivals());
  std::vector<ArrivalBatch> got;
  for (std::int64_t t = 0; t < 4; ++t) {
    art.arrivals->valued_arrivals_into(t, got);
    ASSERT_EQ(got.size(), slots[static_cast<std::size_t>(t)].size()) << "slot " << t;
    for (std::size_t b = 0; b < got.size(); ++b) {
      const ArrivalBatch& want = slots[static_cast<std::size_t>(t)][b];
      EXPECT_EQ(got[b].type, want.type);
      EXPECT_EQ(got[b].count, want.count);
      // NaN annotations must survive as NaN (bit-pattern compare via ==
      // would reject NaN == NaN, so compare through isnan on both sides).
      EXPECT_EQ(std::isnan(got[b].value), std::isnan(want.value));
      if (!std::isnan(want.value)) EXPECT_EQ(got[b].value, want.value);
      EXPECT_EQ(std::isnan(got[b].decay_rate), std::isnan(want.decay_rate));
      if (!std::isnan(want.decay_rate)) {
        EXPECT_EQ(got[b].decay_rate, want.decay_rate);
      }
      EXPECT_EQ(got[b].deadline, want.deadline);
    }
  }
}

TEST(ArtifactCacheTest, HashConsReturnsSameInstanceAndBuildsOnce) {
  ArtifactCache cache;
  int builds = 0;
  auto builder = [&builds] {
    ++builds;
    return materialize_scenario(make_paper_scenario(/*seed=*/42), /*horizon=*/8);
  };
  auto a = cache.get_or_build("paper/seed=42", builder);
  auto b = cache.get_or_build("paper/seed=42", builder);
  EXPECT_EQ(a.get(), b.get()) << "same key must share one instance";
  EXPECT_EQ(builds, 1);
  auto c = cache.get_or_build("paper/seed=43", [&builds] {
    ++builds;
    return materialize_scenario(make_paper_scenario(/*seed=*/43), /*horizon=*/8);
  });
  EXPECT_NE(a.get(), c.get());
  EXPECT_EQ(builds, 2);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 2u);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
}

TEST(ArtifactCacheTest, EngineRunOnArtifactsMatchesLazyScenarioBitwise) {
  // End-to-end: a GreFar run on the materialized tables must produce
  // bitwise-identical metrics to the same run on the lazy models.
  constexpr std::int64_t kRun = 64;
  PaperScenario lazy = make_paper_scenario(/*seed=*/42);
  auto run = [&](const PaperScenario& s) {
    auto scheduler = std::make_shared<GreFarScheduler>(
        s.config, paper_grefar_params(/*V=*/7.5, /*beta=*/100.0));
    auto engine = make_scenario_engine(s, std::move(scheduler), {}, AuditMode::kOff);
    engine->run(kRun);
    return engine;
  };
  auto reference = run(lazy);

  ScenarioArtifacts art = materialize_scenario(make_paper_scenario(/*seed=*/42), kRun);
  PaperScenario table_backed;
  table_backed.config = *art.config;
  table_backed.prices = art.prices;
  table_backed.availability = art.availability;
  table_backed.arrivals = art.arrivals;
  table_backed.seed = art.seed;
  auto materialized = run(table_backed);

  const auto& mr = reference->metrics();
  const auto& mm = materialized->metrics();
  ASSERT_EQ(mr.slots(), mm.slots());
  for (std::size_t t = 0; t < mr.slots(); ++t) {
    EXPECT_EQ(mr.energy_cost.at(t), mm.energy_cost.at(t)) << "slot " << t;
    EXPECT_EQ(mr.fairness.at(t), mm.fairness.at(t)) << "slot " << t;
  }
  EXPECT_EQ(mr.mean_delay(), mm.mean_delay());
  EXPECT_EQ(mr.delay_p99(), mm.delay_p99());
}

}  // namespace
}  // namespace sweep
}  // namespace grefar
