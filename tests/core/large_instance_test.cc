// Large-instance crosschecks and intra-slot determinism.
//
// The per-slot hot path (SoA reset, cached greedy merge, sharded kernels)
// was rewritten for instances far larger than the paper's 3x8 evaluation;
// these tests pin its correctness at 100 DCs x 64 job types:
//
//   * the incremental greedy still matches the simplex LP optimum exactly
//     (beta = 0), and PGD / Frank-Wolfe land within solver tolerance of it;
//   * decisions are bit-identical for intra_slot_jobs in {1, 4, 8} — the
//     sharded kernels write disjoint per-DC slots and the caller merges in
//     DC index order, so FP association never depends on the shard count;
//   * full audited simulations (invariant auditor in throw mode) stay clean
//     and produce bitwise-equal metrics at every shard count.
#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/grefar.h"
#include "core/per_slot_solvers.h"
#include "scenario/paper_scenario.h"
#include "util/rng.h"

namespace grefar {
namespace {

/// Synthetic cluster + populated observation, same shape as the perf
/// benchmarks use (bench/perf_scheduler.cc) so the crosschecks exercise the
/// exact instances whose latency the acceptance criteria track.
struct Instance {
  ClusterConfig config;
  SlotObservation obs;
};

Instance make_instance(std::size_t n_dcs, std::size_t n_job_types,
                       std::size_t n_server_types, std::uint64_t seed) {
  Rng rng(seed);
  Instance inst;
  for (std::size_t k = 0; k < n_server_types; ++k) {
    inst.config.server_types.push_back({"srv" + std::to_string(k),
                                        rng.uniform(0.5, 1.5), rng.uniform(0.4, 1.4)});
  }
  for (std::size_t i = 0; i < n_dcs; ++i) {
    DataCenterConfig dc;
    dc.name = "dc" + std::to_string(i);
    for (std::size_t k = 0; k < n_server_types; ++k) {
      dc.installed.push_back(rng.uniform_int(50, 200));
    }
    inst.config.data_centers.push_back(std::move(dc));
  }
  const std::size_t n_accounts = 4;
  for (std::size_t m = 0; m < n_accounts; ++m) {
    inst.config.accounts.push_back({"org" + std::to_string(m), 1.0 / n_accounts});
  }
  for (std::size_t j = 0; j < n_job_types; ++j) {
    JobType jt;
    jt.name = "job" + std::to_string(j);
    jt.work = rng.uniform(0.5, 5.0);
    for (std::size_t i = 0; i < n_dcs; ++i) {
      if (rng.bernoulli(0.7) || jt.eligible_dcs.empty()) jt.eligible_dcs.push_back(i);
    }
    jt.account = j % n_accounts;
    inst.config.job_types.push_back(std::move(jt));
  }
  inst.config.validate();

  inst.obs.slot = 0;
  for (std::size_t i = 0; i < n_dcs; ++i) {
    inst.obs.prices.push_back(rng.uniform(0.2, 0.8));
  }
  inst.obs.availability = Matrix<std::int64_t>(n_dcs, n_server_types);
  for (std::size_t i = 0; i < n_dcs; ++i) {
    for (std::size_t k = 0; k < n_server_types; ++k) {
      inst.obs.availability(i, k) = inst.config.data_centers[i].installed[k];
    }
  }
  inst.obs.central_queue.assign(n_job_types, 0.0);
  for (auto& q : inst.obs.central_queue) q = rng.uniform(0.0, 30.0);
  inst.obs.dc_queue = MatrixD(n_dcs, n_job_types);
  for (std::size_t i = 0; i < n_dcs; ++i) {
    for (std::size_t j = 0; j < n_job_types; ++j) {
      if (inst.config.job_types[j].eligible(i)) {
        inst.obs.dc_queue(i, j) = rng.uniform(0.0, 20.0);
      }
    }
  }
  return inst;
}

GreFarParams large_params(double beta) {
  GreFarParams p;
  p.V = 7.5;
  p.beta = beta;
  p.r_max = 100.0;
  p.h_max = 100.0;
  return p;
}

// -- Solver crosschecks at 100 x 64 -----------------------------------------

TEST(LargeInstance, GreedyMatchesLpAtBetaZero) {
  for (std::uint64_t seed : {11u, 12u, 13u}) {
    auto inst = make_instance(100, 64, 3, seed);
    PerSlotProblem problem(inst.config, inst.obs, large_params(0.0));
    auto greedy = solve_per_slot_greedy(problem);
    auto lp = solve_per_slot_lp(problem);
    const double scale = 1.0 + std::abs(problem.value(lp));
    EXPECT_NEAR(problem.value(greedy), problem.value(lp), 1e-6 * scale)
        << "seed=" << seed;
  }
}

TEST(LargeInstance, PgdWithinToleranceOfLpAtBetaZero) {
  auto inst = make_instance(100, 64, 3, 21);
  PerSlotProblem problem(inst.config, inst.obs, large_params(0.0));
  const double lp_value = problem.value(solve_per_slot_lp(problem));
  const double pgd_value = problem.value(solve_per_slot_pgd(problem));
  const double scale = 1.0 + std::abs(lp_value);
  // value() evaluates the *smoothed* energy curve while the LP optimizes the
  // exact piecewise-linear one, so the two optima can differ slightly in
  // either direction (within the smoothing band); the check is symmetric.
  EXPECT_NEAR(pgd_value, lp_value, 2e-2 * scale);
}

TEST(LargeInstance, FrankWolfeWithinToleranceOfLpAtBetaZero) {
  auto inst = make_instance(100, 64, 3, 22);
  PerSlotProblem problem(inst.config, inst.obs, large_params(0.0));
  const double lp_value = problem.value(solve_per_slot_lp(problem));
  const double fw_value = problem.value(solve_per_slot_frank_wolfe(problem));
  const double scale = 1.0 + std::abs(lp_value);
  EXPECT_NEAR(fw_value, lp_value, 2e-2 * scale);
}

// -- Bit-identical decisions across intra_slot_jobs -------------------------

/// Drives one scheduler through a slot sequence designed to hit every cache
/// path of the incremental greedy: a prices-only slot (demand caches and
/// piece orders reuse), a queue move (demand re-sort), and an availability
/// move (piece rebuild). Returns the concatenated route/process matrices.
std::vector<MatrixD> decide_sequence(GreFarScheduler& scheduler, Instance inst) {
  std::vector<MatrixD> out;
  SlotAction action;
  auto record = [&] {
    scheduler.decide_into(inst.obs, action);
    out.push_back(action.route);
    out.push_back(action.process);
  };
  record();  // slot 0: cold
  inst.obs.slot = 1;  // prices-only move
  for (auto& p : inst.obs.prices) p *= 1.3;
  record();
  inst.obs.slot = 2;  // queue move
  for (auto& q : inst.obs.central_queue) q *= 0.5;
  for (auto& q : inst.obs.dc_queue.data()) q *= 1.7;
  record();
  inst.obs.slot = 3;  // availability move
  for (auto& n : inst.obs.availability.data()) n = (n * 3) / 4;
  record();
  return out;
}

void expect_bit_identical(const std::vector<MatrixD>& a, const std::vector<MatrixD>& b,
                          std::size_t jobs) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t s = 0; s < a.size(); ++s) {
    // EXPECT_EQ on doubles is exact: any FP-association drift across shard
    // counts fails here.
    EXPECT_EQ(a[s].data(), b[s].data()) << "jobs=" << jobs << " matrix " << s;
  }
}

TEST(IntraSlotDeterminism, GreedyDecisionsBitIdenticalAcrossJobs) {
  auto inst = make_instance(100, 64, 3, 31);  // 6400 vars: pooled path engages
  GreFarScheduler reference(inst.config, large_params(0.0));
  const auto expected = decide_sequence(reference, inst);
  for (std::size_t jobs : {1u, 4u, 8u}) {
    GreFarParams p = large_params(0.0);
    p.intra_slot_jobs = jobs;
    GreFarScheduler scheduler(inst.config, p);
    expect_bit_identical(decide_sequence(scheduler, inst), expected, jobs);
  }
}

TEST(IntraSlotDeterminism, PgdDecisionsBitIdenticalAcrossJobs) {
  auto inst = make_instance(30, 32, 3, 32);
  GreFarParams base = large_params(100.0);
  base.intra_slot_min_vars = 1;  // engage the pooled kernels even at 960 vars
  GreFarScheduler reference(inst.config, base, PerSlotSolver::kProjectedGradient);
  const auto expected = decide_sequence(reference, inst);
  for (std::size_t jobs : {1u, 4u, 8u}) {
    GreFarParams p = base;
    p.intra_slot_jobs = jobs;
    GreFarScheduler scheduler(inst.config, p, PerSlotSolver::kProjectedGradient);
    expect_bit_identical(decide_sequence(scheduler, inst), expected, jobs);
  }
}

// -- Audited end-to-end runs ------------------------------------------------

/// Runs the paper scenario under the invariant auditor in throw mode (every
/// slot machine-checked, first violation aborts) and returns the per-slot
/// energy-cost series — bitwise-comparable across shard counts.
std::vector<double> audited_energy_series(double beta, PerSlotSolver solver,
                                          std::size_t jobs, std::int64_t horizon) {
  auto scenario = make_paper_scenario(97);
  GreFarParams p = paper_grefar_params(7.5, beta);
  p.intra_slot_jobs = jobs;
  p.intra_slot_min_vars = 1;  // the 3x8 scenario is tiny; force the pooled path
  auto engine = run_scenario(
      scenario, std::make_shared<GreFarScheduler>(scenario.config, p, solver),
      horizon, {}, AuditMode::kThrow);
  return engine->metrics().energy_cost.values();
}

TEST(IntraSlotDeterminism, AuditedGreedyRunCleanAndBitIdentical) {
  const auto reference = audited_energy_series(0.0, PerSlotSolver::kGreedy, 1, 200);
  for (std::size_t jobs : {4u, 8u}) {
    EXPECT_EQ(audited_energy_series(0.0, PerSlotSolver::kGreedy, jobs, 200), reference)
        << "jobs=" << jobs;
  }
}

TEST(IntraSlotDeterminism, AuditedPgdRunCleanAndBitIdentical) {
  const auto reference =
      audited_energy_series(100.0, PerSlotSolver::kProjectedGradient, 1, 120);
  for (std::size_t jobs : {4u, 8u}) {
    EXPECT_EQ(audited_energy_series(100.0, PerSlotSolver::kProjectedGradient, jobs, 120),
              reference)
        << "jobs=" << jobs;
  }
}

}  // namespace
}  // namespace grefar
