#include "core/per_slot_solvers.h"

#include <gtest/gtest.h>

#include "solver/brute_force.h"
#include "util/rng.h"

namespace grefar {
namespace {

ClusterConfig test_config() {
  ClusterConfig c;
  c.server_types = {{"fast", 1.0, 1.0}, {"eff", 0.5, 0.3}};
  c.data_centers = {{"dc1", {4, 4}}, {"dc2", {2, 8}}};
  c.accounts = {{"a", 0.6}, {"b", 0.4}};
  c.job_types = {{"j0", 1.0, {0, 1}, 0}, {"j1", 2.0, {0}, 1}};
  return c;
}

SlotObservation random_obs(const ClusterConfig& c, Rng& rng) {
  SlotObservation obs;
  obs.slot = 0;
  obs.prices.clear();
  for (std::size_t i = 0; i < c.num_data_centers(); ++i) {
    obs.prices.push_back(rng.uniform(0.2, 0.8));
  }
  obs.availability = Matrix<std::int64_t>(c.num_data_centers(), c.num_server_types());
  for (std::size_t i = 0; i < c.num_data_centers(); ++i) {
    for (std::size_t k = 0; k < c.num_server_types(); ++k) {
      obs.availability(i, k) = rng.uniform_int(0, c.data_centers[i].installed[k]);
    }
  }
  obs.central_queue.assign(c.num_job_types(), 0.0);
  obs.dc_queue = MatrixD(c.num_data_centers(), c.num_job_types());
  for (std::size_t i = 0; i < c.num_data_centers(); ++i) {
    for (std::size_t j = 0; j < c.num_job_types(); ++j) {
      if (c.job_types[j].eligible(i)) obs.dc_queue(i, j) = rng.uniform(0.0, 5.0);
    }
  }
  return obs;
}

GreFarParams params(double V, double beta) {
  GreFarParams p;
  p.V = V;
  p.beta = beta;
  p.h_max = 100.0;
  p.r_max = 100.0;
  return p;
}

TEST(GreedySolver, EmptyQueuesProcessNothing) {
  auto config = test_config();
  Rng rng(1);
  auto obs = random_obs(config, rng);
  obs.dc_queue.fill(0.0);
  PerSlotProblem problem(config, obs, params(1.0, 0.0));
  auto u = solve_per_slot_greedy(problem);
  for (double v : u) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(GreedySolver, HighVSuppressesProcessing) {
  // With V huge, V*phi*c exceeds any queue value: process nothing.
  auto config = test_config();
  Rng rng(2);
  auto obs = random_obs(config, rng);
  PerSlotProblem problem(config, obs, params(1e9, 0.0));
  auto u = solve_per_slot_greedy(problem);
  for (double v : u) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(GreedySolver, ZeroVProcessesEverythingQueued) {
  // With V = 0 energy is free: serve every queued job up to capacity.
  auto config = test_config();
  config.data_centers = {{"dc1", {100, 0}}, {"dc2", {100, 0}}};  // huge capacity
  Rng rng(3);
  auto obs = random_obs(config, rng);
  obs.availability.fill(100);
  PerSlotProblem problem(config, obs, params(0.0, 0.0));
  auto u = solve_per_slot_greedy(problem);
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 2; ++j) {
      if (!config.job_types[j].eligible(i)) continue;
      double queued_work = obs.dc_queue(i, j) * config.job_types[j].work;
      if (obs.dc_queue(i, j) > 0.0) {
        EXPECT_NEAR(u[problem.index(i, j)], queued_work, 1e-9);
      }
    }
  }
}

TEST(GreedySolver, ThresholdBehaviourOnSingleQueue) {
  // One DC, one server type: process iff q/d > V * phi * p/s.
  ClusterConfig c;
  c.server_types = {{"std", 1.0, 1.0}};
  c.data_centers = {{"dc", {10}}};
  c.accounts = {{"a", 1.0}};
  c.job_types = {{"j", 1.0, {0}, 0}};
  SlotObservation obs;
  obs.slot = 0;
  obs.prices = {0.5};
  obs.availability = Matrix<std::int64_t>(1, 1);
  obs.availability(0, 0) = 10;
  obs.central_queue = {0.0};
  obs.dc_queue = MatrixD(1, 1);

  // Threshold: q > V * 0.5. With V = 4 -> threshold 2.
  obs.dc_queue(0, 0) = 1.9;
  PerSlotProblem below(c, obs, params(4.0, 0.0));
  EXPECT_DOUBLE_EQ(solve_per_slot_greedy(below)[0], 0.0);

  obs.dc_queue(0, 0) = 2.1;
  PerSlotProblem above(c, obs, params(4.0, 0.0));
  EXPECT_NEAR(solve_per_slot_greedy(above)[0], 2.1, 1e-9);
}

TEST(GreedySolver, RespectsCapacity) {
  auto config = test_config();
  Rng rng(4);
  for (int trial = 0; trial < 20; ++trial) {
    auto obs = random_obs(config, rng);
    PerSlotProblem problem(config, obs, params(0.1, 0.0));
    auto u = solve_per_slot_greedy(problem);
    EXPECT_TRUE(problem.polytope().contains(u, 1e-9)) << "trial " << trial;
  }
}

TEST(GreedyVsLp, ObjectivesAgreeOnRandomInstances) {
  auto config = test_config();
  Rng rng(5);
  for (int trial = 0; trial < 40; ++trial) {
    auto obs = random_obs(config, rng);
    double V = rng.uniform(0.0, 10.0);
    PerSlotProblem problem(config, obs, params(V, 0.0));
    auto greedy = solve_per_slot_greedy(problem);
    auto lp = solve_per_slot_lp(problem);
    EXPECT_NEAR(problem.value(greedy), problem.value(lp), 1e-6)
        << "trial " << trial << " V=" << V;
  }
}

TEST(GreedyVsFrankWolfe, AgreeWhenBetaZero) {
  auto config = test_config();
  Rng rng(6);
  for (int trial = 0; trial < 15; ++trial) {
    auto obs = random_obs(config, rng);
    PerSlotProblem problem(config, obs, params(rng.uniform(0.5, 5.0), 0.0));
    auto greedy = solve_per_slot_greedy(problem);
    auto fw = solve_per_slot_frank_wolfe(problem);
    // Greedy is exact for the *kinked* objective; FW minimizes the smoothed
    // one and zigzags near faces — allow the combined slack.
    double scale = std::max(1.0, std::abs(problem.value(greedy)));
    EXPECT_NEAR(problem.value(greedy), problem.value(fw), 5e-3 * scale)
        << "trial " << trial;
  }
}

TEST(FrankWolfeVsPgd, AgreeWithFairness) {
  auto config = test_config();
  Rng rng(7);
  for (int trial = 0; trial < 15; ++trial) {
    auto obs = random_obs(config, rng);
    double beta = rng.uniform(1.0, 100.0);
    PerSlotProblem problem(config, obs, params(rng.uniform(0.5, 5.0), beta));
    auto fw = solve_per_slot_frank_wolfe(problem);
    auto pgd = solve_per_slot_pgd(problem);
    double scale = std::max(1.0, std::abs(problem.value(fw)));
    EXPECT_NEAR(problem.value(fw), problem.value(pgd), 2e-2 * scale)
        << "trial " << trial;
    // PGD is the production solver for beta > 0: it must never be much
    // worse than FW.
    EXPECT_LE(problem.value(pgd), problem.value(fw) + 2e-3 * scale)
        << "trial " << trial;
  }
}

TEST(FairnessSolvers, MatchBruteForceOnTinyInstance) {
  // 1 DC, 2 job types (one per account): 2 variables, exhaustive check.
  ClusterConfig c;
  c.server_types = {{"std", 1.0, 1.0}};
  c.data_centers = {{"dc", {6}}};
  c.accounts = {{"a", 0.5}, {"b", 0.5}};
  c.job_types = {{"ja", 1.0, {0}, 0}, {"jb", 1.0, {0}, 1}};
  SlotObservation obs;
  obs.slot = 0;
  obs.prices = {0.5};
  obs.availability = Matrix<std::int64_t>(1, 1);
  obs.availability(0, 0) = 6;
  obs.central_queue = {0.0, 0.0};
  obs.dc_queue = MatrixD(1, 2);
  obs.dc_queue(0, 0) = 4.0;
  obs.dc_queue(0, 1) = 1.0;

  PerSlotProblem problem(c, obs, params(2.0, 30.0));
  auto fw = solve_per_slot_frank_wolfe(problem);
  auto brute = minimize_brute_force(
      [&](const std::vector<double>& x) { return problem.value(x); },
      problem.polytope(), 41);
  EXPECT_LE(problem.value(fw), brute.objective + 1e-3);
}

TEST(FairnessSolvers, BetaPullsAllocationTowardGamma) {
  // KKT-verifiable instance: capacity 10, equal queues (value 8 per work),
  // gamma = (0.3, 0.7), V = 1, phi = 1, beta = 100. Stationarity on the
  // binding cap gives u* = (3, 7) exactly (equal marginals -7).
  ClusterConfig c;
  c.server_types = {{"std", 1.0, 1.0}};
  c.data_centers = {{"dc", {10}}};
  c.accounts = {{"a", 0.3}, {"b", 0.7}};
  c.job_types = {{"ja", 1.0, {0}, 0}, {"jb", 1.0, {0}, 1}};
  SlotObservation obs;
  obs.slot = 0;
  obs.prices = {1.0};
  obs.availability = Matrix<std::int64_t>(1, 1);
  obs.availability(0, 0) = 10;
  obs.central_queue = {0.0, 0.0};
  obs.dc_queue = MatrixD(1, 2);
  obs.dc_queue(0, 0) = 8.0;
  obs.dc_queue(0, 1) = 8.0;

  GreFarParams p = params(1.0, 100.0);
  PerSlotProblem fair(c, obs, p);
  for (auto solver :
       {PerSlotSolver::kFrankWolfe, PerSlotSolver::kProjectedGradient}) {
    auto u = solve_per_slot(fair, solver);
    EXPECT_NEAR(u[0], 3.0, 0.3) << to_string(solver);
    EXPECT_NEAR(u[1], 7.0, 0.3) << to_string(solver);
  }
}

TEST(PerSlotDispatch, AllSolversRun) {
  auto config = test_config();
  Rng rng(8);
  auto obs = random_obs(config, rng);
  PerSlotProblem problem(config, obs, params(1.0, 0.0));
  for (auto solver : {PerSlotSolver::kGreedy, PerSlotSolver::kFrankWolfe,
                      PerSlotSolver::kProjectedGradient, PerSlotSolver::kLp}) {
    auto u = solve_per_slot(problem, solver);
    EXPECT_EQ(u.size(), problem.num_vars());
    EXPECT_TRUE(problem.polytope().contains(u, 1e-6)) << to_string(solver);
  }
}

TEST(CrossSlotWarmStart, OffReproducesTheColdTrajectory) {
  // With warm_start_across_slots off, a scratch-carrying solve must be
  // bitwise identical to the historical scratch-free cold solve, slot by
  // slot — the A/B lever has to be a true control.
  auto config = test_config();
  Rng rng(21);
  GreFarParams p = params(2.0, 50.0);
  p.warm_start_across_slots = false;

  std::vector<SlotObservation> slots;
  for (int t = 0; t < 5; ++t) slots.push_back(random_obs(config, rng));
  PerSlotProblem problem(config, slots[0], p);
  PerSlotSolverScratch scratch;
  std::vector<double> u;
  for (const auto& obs : slots) {
    problem.reset(obs);
    solve_per_slot_into(problem, PerSlotSolver::kFrankWolfe, u, &scratch);
    auto cold = solve_per_slot_frank_wolfe(problem);
    ASSERT_EQ(u.size(), cold.size());
    for (std::size_t v = 0; v < u.size(); ++v) EXPECT_EQ(u[v], cold[v]);
  }
}

TEST(CrossSlotWarmStart, OnMatchesTheColdObjective) {
  // Warm-started slots may stop at a (very slightly) different point, but
  // the objective must match the cold solve to solver tolerance for both
  // iterative solvers, across a drifting observation sequence.
  auto config = test_config();
  Rng rng(22);
  GreFarParams p = params(2.0, 50.0);
  ASSERT_TRUE(p.warm_start_across_slots);  // on by default

  std::vector<SlotObservation> slots;
  for (int t = 0; t < 6; ++t) slots.push_back(random_obs(config, rng));
  for (auto solver :
       {PerSlotSolver::kFrankWolfe, PerSlotSolver::kProjectedGradient}) {
    PerSlotProblem problem(config, slots[0], p);
    PerSlotSolverScratch scratch;
    std::vector<double> u;
    for (std::size_t t = 0; t < slots.size(); ++t) {
      problem.reset(slots[t]);
      solve_per_slot_into(problem, solver, u, &scratch);
      EXPECT_TRUE(problem.polytope().contains(u, 1e-6))
          << to_string(solver) << " slot " << t;
      auto cold = solve_per_slot(problem, solver);
      // Either start can stall marginally earlier; in practice the warm one
      // often lands *lower*. Allow the solvers' own accuracy band.
      double scale = std::max(1.0, std::abs(problem.value(cold)));
      EXPECT_NEAR(problem.value(u), problem.value(cold), 5e-3 * scale)
          << to_string(solver) << " slot " << t;
    }
  }
}

TEST(GreedySolver, IdleCompactSlotServesNoStaleDemands) {
  // A busy compact slot primes the per-DC demand caches; the following
  // zero-active-type slot must produce the empty action. Regression: with
  // J == 0 the (qv, ub) cache key rows are empty and compare equal to a
  // *cleared* key (size 0 == J), so the fill served the previous busy
  // slot's demand list and wrote through the zero-variable u — a crash
  // whenever the caller's vector had no retained capacity (fresh engine or
  // a buffer std::move'd away by an iterative solver).
  auto config = test_config();
  Rng rng(31);
  GreFarParams p = params(0.0, 0.0);  // V = 0: route everything queued
  p.clamp_to_queue = true;            // compact resets need the clamp

  SlotObservation busy = random_obs(config, rng);
  busy.active_types_valid = true;
  busy.active_types = {0, 1};
  PerSlotProblem problem(config, busy, p);
  problem.set_sparse_enabled(true);
  problem.reset(busy);
  ASSERT_TRUE(problem.compact());

  PerSlotSolverScratch scratch;
  std::vector<double> primed;
  solve_per_slot_greedy_into(problem, primed, &scratch);
  double routed = 0.0;
  for (double v : primed) routed += v;
  ASSERT_GT(routed, 0.0);  // the demand caches now hold nonempty lists

  SlotObservation idle = busy;
  idle.dc_queue.fill(0.0);
  idle.central_queue.assign(config.num_job_types(), 0.0);
  idle.active_types.clear();
  problem.reset(idle);
  ASSERT_TRUE(problem.compact());
  ASSERT_EQ(problem.num_vars(), 0u);

  std::vector<double> u;  // no capacity — the crashing shape
  solve_per_slot_greedy_into(problem, u, &scratch);
  EXPECT_TRUE(u.empty());

  // The idle slot must not have poisoned the caches for the next busy one.
  problem.reset(busy);
  std::vector<double> again;
  solve_per_slot_greedy_into(problem, again, &scratch);
  ASSERT_EQ(again.size(), primed.size());
  for (std::size_t k = 0; k < again.size(); ++k) EXPECT_EQ(again[k], primed[k]);
}

TEST(PerSlotSolverNames, AreStable) {
  EXPECT_EQ(to_string(PerSlotSolver::kGreedy), "greedy");
  EXPECT_EQ(to_string(PerSlotSolver::kFrankWolfe), "frank-wolfe");
  EXPECT_EQ(to_string(PerSlotSolver::kProjectedGradient), "pgd");
  EXPECT_EQ(to_string(PerSlotSolver::kLp), "lp");
}

// Parameterized: greedy optimality against brute force over a grid of V.
class GreedyOptimalityTest : public ::testing::TestWithParam<double> {};

TEST_P(GreedyOptimalityTest, MatchesBruteForce) {
  const double V = GetParam();
  ClusterConfig c;
  c.server_types = {{"fast", 1.0, 1.0}, {"eff", 0.5, 0.3}};
  c.data_centers = {{"dc", {3, 4}}};
  c.accounts = {{"a", 1.0}};
  c.job_types = {{"j0", 1.0, {0}, 0}, {"j1", 2.0, {0}, 0}};
  SlotObservation obs;
  obs.slot = 0;
  obs.prices = {0.45};
  obs.availability = Matrix<std::int64_t>(1, 2);
  obs.availability(0, 0) = 3;
  obs.availability(0, 1) = 4;
  obs.central_queue = {0.0, 0.0};
  obs.dc_queue = MatrixD(1, 2);
  obs.dc_queue(0, 0) = 3.0;
  obs.dc_queue(0, 1) = 1.5;

  PerSlotProblem problem(c, obs, params(V, 0.0));
  auto greedy = solve_per_slot_greedy(problem);
  auto brute = minimize_brute_force(
      [&](const std::vector<double>& x) { return problem.value(x); },
      problem.polytope(), 61);
  EXPECT_LE(problem.value(greedy), brute.objective + 1e-6) << "V=" << V;
}

INSTANTIATE_TEST_SUITE_P(VSweep, GreedyOptimalityTest,
                         ::testing::Values(0.0, 0.1, 0.5, 1.0, 2.5, 5.0, 7.5, 20.0));

}  // namespace
}  // namespace grefar
