#include "core/admission.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/check.h"

namespace grefar {
namespace {

JobType unit_work_type() {
  JobType jt;
  jt.name = "t";
  jt.work = 2.0;
  jt.eligible_dcs = {0};
  return jt;
}

TEST(Admission, AdmitAllTakesEverything) {
  AdmitAllPolicy p;
  const JobType jt = unit_work_type();
  EXPECT_EQ(p.admit(0, jt, 7, 0.0, kNoDeadline), 7);
  EXPECT_EQ(p.admit(100, jt, 3, 1e9, 5), 3);
  EXPECT_TRUE(std::isnan(p.threshold(0)));
  EXPECT_EQ(p.name(), "admit-all");
}

TEST(Admission, ThresholdIsAllOrNothingOnValueDensity) {
  ThresholdAdmission p(1.0);
  const JobType jt = unit_work_type();  // work 2 => density = value / 2
  EXPECT_EQ(p.admit(0, jt, 5, 2.0, kNoDeadline), 5);   // density 1.0 == theta
  EXPECT_EQ(p.admit(0, jt, 5, 1.99, kNoDeadline), 0);  // just below
  EXPECT_EQ(p.admit(0, jt, 5, 10.0, kNoDeadline), 5);
  EXPECT_DOUBLE_EQ(p.threshold(0), 1.0);
  EXPECT_DOUBLE_EQ(p.threshold(12345), 1.0);  // slot-independent
}

TEST(Admission, ThresholdRejectsBadTheta) {
  EXPECT_THROW(ThresholdAdmission(-1.0), ContractViolation);
  EXPECT_THROW(ThresholdAdmission(std::nan("")), ContractViolation);
  EXPECT_THROW(RandomizedThresholdAdmission(0.0, 1.0, 1), ContractViolation);
  EXPECT_THROW(RandomizedThresholdAdmission(2.0, 1.0, 1), ContractViolation);
}

TEST(Admission, RandomizedThresholdStaysInRangeAndVaries) {
  RandomizedThresholdAdmission p(0.25, 4.0, 99);
  bool varies = false;
  double prev = p.threshold(0);
  for (std::int64_t t = 0; t < 200; ++t) {
    const double theta = p.threshold(t);
    EXPECT_GE(theta, 0.25);
    EXPECT_LE(theta, 4.0);
    if (theta != prev) varies = true;
    prev = theta;
  }
  EXPECT_TRUE(varies);
}

TEST(Admission, RandomizedThresholdIsPureInSeedAndSlot) {
  // The §11 contract: threshold(t) replays bit-identically regardless of
  // construction order, prior calls, or interleaving — it is a pure
  // function of (seed, slot), exactly like ZipfArrivals.
  RandomizedThresholdAdmission a(0.5, 2.0, 7);
  std::vector<double> forward;
  for (std::int64_t t = 0; t < 50; ++t) forward.push_back(a.threshold(t));

  RandomizedThresholdAdmission b(0.5, 2.0, 7);
  for (std::int64_t t = 49; t >= 0; --t) {
    EXPECT_EQ(b.threshold(t), forward[static_cast<std::size_t>(t)]) << t;
  }
  // admit() keys on the same draw as threshold().
  const JobType jt = unit_work_type();
  for (std::int64_t t = 0; t < 50; ++t) {
    const double density_above = forward[static_cast<std::size_t>(t)] + 1e-9;
    EXPECT_EQ(a.admit(t, jt, 3, density_above * jt.work, kNoDeadline), 3) << t;
  }
  // Different seeds give different streams.
  RandomizedThresholdAdmission c(0.5, 2.0, 8);
  bool differs = false;
  for (std::int64_t t = 0; t < 50 && !differs; ++t) {
    differs = c.threshold(t) != forward[static_cast<std::size_t>(t)];
  }
  EXPECT_TRUE(differs);
}

TEST(Admission, FactoryBuildsTheLineup) {
  auto all = make_admission_policy(AdmissionPolicyKind::kAdmitAll, 1.0, 1);
  auto det = make_admission_policy(AdmissionPolicyKind::kThreshold, 1.5, 1);
  auto rnd = make_admission_policy(AdmissionPolicyKind::kRandomized, 2.0, 1);
  EXPECT_EQ(all->name(), "admit-all");
  EXPECT_EQ(det->name(), "threshold");
  EXPECT_EQ(rnd->name(), "randomized-threshold");
  EXPECT_DOUBLE_EQ(det->threshold(3), 1.5);
  // The randomized variant hedges log-uniformly over [theta/4, theta*4].
  for (std::int64_t t = 0; t < 100; ++t) {
    EXPECT_GE(rnd->threshold(t), 0.5);
    EXPECT_LE(rnd->threshold(t), 8.0);
  }
}

}  // namespace
}  // namespace grefar
