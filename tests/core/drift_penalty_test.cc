#include "core/drift_penalty.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace grefar {
namespace {

ClusterConfig test_config() {
  ClusterConfig c;
  c.server_types = {{"fast", 1.0, 1.0}, {"eff", 0.5, 0.3}};
  c.data_centers = {{"dc1", {4, 4}}, {"dc2", {2, 8}}};
  c.accounts = {{"a", 0.6}, {"b", 0.4}};
  c.job_types = {{"j0", 1.0, {0, 1}, 0}, {"j1", 2.0, {0}, 1}};
  return c;
}

SlotObservation test_obs(const ClusterConfig& c) {
  SlotObservation obs;
  obs.slot = 0;
  obs.prices = {0.4, 0.5};
  obs.availability = Matrix<std::int64_t>(2, 2);
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t k = 0; k < 2; ++k) {
      obs.availability(i, k) = c.data_centers[i].installed[k];
    }
  }
  obs.central_queue = {3.0, 1.0};
  obs.dc_queue = MatrixD(2, 2);
  obs.dc_queue(0, 0) = 2.0;
  obs.dc_queue(0, 1) = 4.0;
  obs.dc_queue(1, 0) = 6.0;
  // (1,1) ineligible
  return obs;
}

GreFarParams params(double V, double beta, bool clamp = true) {
  GreFarParams p;
  p.V = V;
  p.beta = beta;
  p.h_max = 100.0;
  p.r_max = 100.0;
  p.clamp_to_queue = clamp;
  return p;
}

TEST(PerSlotProblem, ShapesAndIndexing) {
  auto config = test_config();
  auto obs = test_obs(config);
  PerSlotProblem problem(config, obs, params(1.0, 0.0));
  EXPECT_EQ(problem.num_vars(), 4u);
  EXPECT_EQ(problem.index(0, 0), 0u);
  EXPECT_EQ(problem.index(1, 1), 3u);
}

TEST(PerSlotProblem, TotalResourceSumsCapacities) {
  auto config = test_config();
  auto obs = test_obs(config);
  PerSlotProblem problem(config, obs, params(1.0, 0.0));
  // dc1: 4*1 + 4*0.5 = 6; dc2: 2*1 + 8*0.5 = 6.
  EXPECT_DOUBLE_EQ(problem.total_resource(), 12.0);
  EXPECT_DOUBLE_EQ(problem.curve(0).capacity(), 6.0);
}

TEST(PerSlotProblem, QueueValuesArePerWorkUnit) {
  auto config = test_config();
  auto obs = test_obs(config);
  PerSlotProblem problem(config, obs, params(1.0, 0.0));
  EXPECT_DOUBLE_EQ(problem.queue_value(0, 0), 2.0);       // q/d = 2/1
  EXPECT_DOUBLE_EQ(problem.queue_value(0, 1), 2.0);       // 4/2
  EXPECT_DOUBLE_EQ(problem.queue_value(1, 0), 6.0);
  EXPECT_DOUBLE_EQ(problem.queue_value(1, 1), 0.0);       // ineligible
}

TEST(PerSlotProblem, ClampedUpperBoundsTrackQueues) {
  auto config = test_config();
  auto obs = test_obs(config);
  PerSlotProblem problem(config, obs, params(1.0, 0.0, /*clamp=*/true));
  const auto& ub = problem.polytope().upper_bounds();
  EXPECT_DOUBLE_EQ(ub[problem.index(0, 0)], 2.0);   // q * d = 2*1
  EXPECT_DOUBLE_EQ(ub[problem.index(0, 1)], 8.0);   // 4*2
  EXPECT_DOUBLE_EQ(ub[problem.index(1, 1)], 0.0);   // ineligible
}

TEST(PerSlotProblem, UnclampedUpperBoundsUseHMax) {
  auto config = test_config();
  auto obs = test_obs(config);
  PerSlotProblem problem(config, obs, params(1.0, 0.0, /*clamp=*/false));
  const auto& ub = problem.polytope().upper_bounds();
  EXPECT_DOUBLE_EQ(ub[problem.index(0, 0)], 100.0);
  EXPECT_DOUBLE_EQ(ub[problem.index(0, 1)], 200.0);  // h_max * d
  EXPECT_DOUBLE_EQ(ub[problem.index(1, 1)], 0.0);    // still ineligible
}

TEST(PerSlotProblem, ValueAtZeroIsZero) {
  auto config = test_config();
  auto obs = test_obs(config);
  PerSlotProblem problem(config, obs, params(2.0, 0.0));
  EXPECT_DOUBLE_EQ(problem.value(std::vector<double>(4, 0.0)), 0.0);
}

TEST(PerSlotProblem, ValueMatchesManualComputation) {
  auto config = test_config();
  auto obs = test_obs(config);
  PerSlotProblem problem(config, obs, params(2.0, 0.0));
  // u = (1, 0, 0, 0): dc1 serves 1 work on cheapest server (eff: 0.3/0.5=0.6).
  std::vector<double> u{1.0, 0.0, 0.0, 0.0};
  double expected = 2.0 * 0.4 * 0.6 - 2.0 * 1.0;  // V*phi*C(1) - (q/d)*u
  EXPECT_NEAR(problem.value(u), expected, 1e-12);
}

TEST(PerSlotProblem, FairnessTermPenalizesImbalance) {
  auto config = test_config();
  auto obs = test_obs(config);
  PerSlotProblem with_fair(config, obs, params(1.0, 10.0));
  PerSlotProblem no_fair(config, obs, params(1.0, 0.0));
  std::vector<double> u{2.0, 0.0, 1.0, 0.0};  // all work for account a
  // -V*beta*f > 0 penalty added.
  EXPECT_GT(with_fair.value(u), no_fair.value(u));
}

TEST(PerSlotProblem, GradientMatchesFiniteDifferenceSmoothRegion) {
  auto config = test_config();
  auto obs = test_obs(config);
  PerSlotProblem problem(config, obs, params(1.5, 25.0));
  // Pick an interior point away from the energy curve kinks.
  std::vector<double> u{0.5, 1.0, 0.8, 0.0};
  std::vector<double> grad;
  problem.gradient(u, grad);
  const double eps = 1e-6;
  for (std::size_t idx = 0; idx < 3; ++idx) {  // skip ineligible var 3
    auto hi = u;
    hi[idx] += eps;
    auto lo = u;
    lo[idx] -= eps;
    double numeric = (problem.value(hi) - problem.value(lo)) / (2 * eps);
    EXPECT_NEAR(grad[idx], numeric, 1e-5) << "var " << idx;
  }
}

TEST(PerSlotProblem, ObjectiveIsConvexAlongRandomSegments) {
  auto config = test_config();
  auto obs = test_obs(config);
  PerSlotProblem problem(config, obs, params(1.0, 50.0));
  std::vector<double> a{0.0, 0.0, 0.0, 0.0};
  std::vector<double> b{2.0, 4.0, 3.0, 0.0};
  auto at = [&](double t) {
    std::vector<double> x(4);
    for (std::size_t i = 0; i < 4; ++i) x[i] = a[i] + t * (b[i] - a[i]);
    return problem.value(x);
  };
  // Midpoint convexity along the segment at several points.
  for (double t = 0.1; t < 1.0; t += 0.2) {
    double mid = at(t);
    double chord = 0.5 * (at(t - 0.1) + at(t + 0.1));
    EXPECT_LE(mid, chord + 1e-9);
  }
}

TEST(PerSlotProblem, RejectsBadParams) {
  auto config = test_config();
  auto obs = test_obs(config);
  auto bad = params(-1.0, 0.0);
  EXPECT_THROW(PerSlotProblem(config, obs, bad), ContractViolation);
  bad = params(1.0, -2.0);
  EXPECT_THROW(PerSlotProblem(config, obs, bad), ContractViolation);
}

TEST(PerSlotProblem, ParallelismConstraintCapsUpperBounds) {
  auto config = test_config();
  config.job_types[0].max_rate = 0.5;  // each job absorbs <= 0.5 work/slot
  auto obs = test_obs(config);         // q(0,0) = 2 jobs
  PerSlotProblem problem(config, obs, params(1.0, 0.0));
  const auto& ub = problem.polytope().upper_bounds();
  // Without the cap the clamped ub is q*d = 2; with it: 0.5 * ceil(2) = 1.
  EXPECT_DOUBLE_EQ(ub[problem.index(0, 0)], 1.0);
  // Type 1 (unconstrained) keeps its clamped bound.
  EXPECT_DOUBLE_EQ(ub[problem.index(0, 1)], 8.0);
}

TEST(PerSlotProblem, ParallelismConstraintRoundsQueueUp) {
  auto config = test_config();
  config.job_types[0].max_rate = 1.0;
  auto obs = test_obs(config);
  obs.dc_queue(0, 0) = 0.4;  // a partially-served job still counts as one
  PerSlotProblem problem(config, obs, params(1.0, 0.0));
  const auto& ub = problem.polytope().upper_bounds();
  // clamp gives 0.4 * d = 0.4; rate cap gives 1.0 * ceil(0.4) = 1 -> min 0.4.
  EXPECT_DOUBLE_EQ(ub[problem.index(0, 0)], 0.4);
}

TEST(PerSlotProblem, WrongVectorSizeIsContractViolation) {
  auto config = test_config();
  auto obs = test_obs(config);
  PerSlotProblem problem(config, obs, params(1.0, 0.0));
  EXPECT_THROW(problem.value({1.0}), ContractViolation);
  std::vector<double> grad;
  EXPECT_THROW(problem.gradient({1.0}, grad), ContractViolation);
}

}  // namespace
}  // namespace grefar
