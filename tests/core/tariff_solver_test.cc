// Per-slot solving under tiered (usage-dependent) billing: the greedy must
// remain exact (verified against brute force), the convex solvers must agree
// on the smoothed objective, and the engine must bill through the tariff.
#include <gtest/gtest.h>

#include "baselines/baselines.h"
#include "core/grefar.h"
#include "core/per_slot_solvers.h"
#include "price/price_model.h"
#include "sim/engine.h"
#include "solver/brute_force.h"
#include "util/rng.h"
#include "workload/arrival_process.h"

namespace grefar {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

ClusterConfig tariffed_config() {
  ClusterConfig c;
  c.server_types = {{"fast", 1.0, 1.0}, {"eff", 0.5, 0.3}};
  c.data_centers = {{"dc1", {4, 4}}, {"dc2", {2, 8}}};
  c.accounts = {{"a", 0.6}, {"b", 0.4}};
  c.job_types = {{"j0", 1.0, {0, 1}, 0}, {"j1", 2.0, {0}, 1}};
  // dc1: doubles beyond 2 energy units; dc2: flat.
  c.tariffs = {TieredTariff({{2.0, 1.0}, {kInf, 2.0}}), TieredTariff()};
  return c;
}

SlotObservation obs_for(const ClusterConfig& c, Rng& rng) {
  SlotObservation obs;
  obs.slot = 0;
  for (std::size_t i = 0; i < c.num_data_centers(); ++i) {
    obs.prices.push_back(rng.uniform(0.2, 0.8));
  }
  obs.availability = Matrix<std::int64_t>(c.num_data_centers(), c.num_server_types());
  for (std::size_t i = 0; i < c.num_data_centers(); ++i) {
    for (std::size_t k = 0; k < c.num_server_types(); ++k) {
      obs.availability(i, k) = c.data_centers[i].installed[k];
    }
  }
  obs.central_queue.assign(c.num_job_types(), 0.0);
  obs.dc_queue = MatrixD(c.num_data_centers(), c.num_job_types());
  for (std::size_t i = 0; i < c.num_data_centers(); ++i) {
    for (std::size_t j = 0; j < c.num_job_types(); ++j) {
      if (c.job_types[j].eligible(i)) obs.dc_queue(i, j) = rng.uniform(0.0, 5.0);
    }
  }
  return obs;
}

GreFarParams params(double V, double beta = 0.0) {
  GreFarParams p;
  p.V = V;
  p.beta = beta;
  p.r_max = 100.0;
  p.h_max = 100.0;
  return p;
}

TEST(TariffGreedy, SingleDcMatchesBruteForce) {
  // 1 DC, 1 server type (speed/power 1), tariff doubling beyond E=2.
  ClusterConfig c;
  c.server_types = {{"std", 1.0, 1.0}};
  c.data_centers = {{"dc", {6}}};
  c.accounts = {{"a", 1.0}};
  c.job_types = {{"j0", 1.0, {0}, 0}, {"j1", 2.0, {0}, 0}};
  c.tariffs = {TieredTariff({{2.0, 1.0}, {kInf, 2.0}})};

  SlotObservation obs;
  obs.slot = 0;
  obs.prices = {0.5};
  obs.availability = Matrix<std::int64_t>(1, 1);
  obs.availability(0, 0) = 6;
  obs.central_queue = {0.0, 0.0};
  obs.dc_queue = MatrixD(1, 2);
  // Value of j0 per work: 1.8; j1: 0.6. Marginal cost: 0.5*V within tier 1,
  // 1.0*V beyond. With V = 1.5: tier-1 cost 0.75, tier-2 cost 1.5.
  obs.dc_queue(0, 0) = 1.8;
  obs.dc_queue(0, 1) = 1.2;

  PerSlotProblem problem(c, obs, params(1.5));
  auto greedy = solve_per_slot_greedy(problem);
  // j0 (value 1.8) profitable on both tiers up to its queue (1.8 work);
  // j1 (value 0.6) profitable on neither (0.6 < 0.75).
  EXPECT_NEAR(greedy[0], 1.8, 1e-9);
  EXPECT_NEAR(greedy[1], 0.0, 1e-9);

  // Cross-check the exact (unsmoothed) objective against brute force.
  auto exact = [&](const std::vector<double>& u) {
    double work = u[0] + u[1];
    EnergyCostCurve curve(c.server_types, {6});
    double cost = 1.5 * 0.5 * c.tariff(0).cost(curve.energy_for_work(work));
    return cost - 1.8 * u[0] - 0.6 * u[1];
  };
  auto brute = minimize_brute_force(exact, problem.polytope(), 61);
  EXPECT_LE(exact(greedy), brute.objective + 1e-6);
}

TEST(TariffGreedy, TierBoundaryChangesTheDecision) {
  // Same setup; a mid-value demand is served only within the cheap tier.
  ClusterConfig c;
  c.server_types = {{"std", 1.0, 1.0}};
  c.data_centers = {{"dc", {6}}};
  c.accounts = {{"a", 1.0}};
  c.job_types = {{"j", 1.0, {0}, 0}};
  c.tariffs = {TieredTariff({{2.0, 1.0}, {kInf, 2.0}})};
  SlotObservation obs;
  obs.slot = 0;
  obs.prices = {0.5};
  obs.availability = Matrix<std::int64_t>(1, 1);
  obs.availability(0, 0) = 6;
  obs.central_queue = {0.0};
  obs.dc_queue = MatrixD(1, 1);
  obs.dc_queue(0, 0) = 1.0;  // queue value q/d = 1.0 per unit work

  // V = 1.5: tier-1 marginal 0.75 < 1.0 < tier-2 marginal 1.5. Disable the
  // queue clamp so the bound (h_max = 5) exceeds the tier boundary.
  auto p = params(1.5);
  p.h_max = 5.0;
  p.clamp_to_queue = false;
  PerSlotProblem problem(c, obs, p);
  auto u = solve_per_slot_greedy(problem);
  EXPECT_NEAR(u[0], 2.0, 1e-9);  // stops exactly at the tier boundary
}

TEST(TariffGreedy, RandomInstancesBeatBruteForceGrid) {
  auto c = tariffed_config();
  Rng rng(31);
  for (int trial = 0; trial < 15; ++trial) {
    auto obs = obs_for(c, rng);
    PerSlotProblem problem(c, obs, params(rng.uniform(0.5, 4.0)));
    auto greedy = solve_per_slot_greedy(problem);
    EXPECT_TRUE(problem.polytope().contains(greedy, 1e-9));
    // Exact objective (kinked tariff, kinked curve).
    auto exact = [&](const std::vector<double>& u) {
      double total = 0.0;
      for (std::size_t i = 0; i < c.num_data_centers(); ++i) {
        double work = 0.0;
        for (std::size_t j = 0; j < c.num_job_types(); ++j) {
          work += u[problem.index(i, j)];
          total -= problem.queue_value(i, j) * u[problem.index(i, j)];
        }
        total += problem.params().V * obs.prices[i] *
                 c.tariff(i).cost(problem.curve(i).energy_for_work(work));
      }
      return total;
    };
    auto brute = minimize_brute_force(exact, problem.polytope(), 13);
    EXPECT_LE(exact(greedy), brute.objective + 1e-6) << "trial " << trial;
  }
}

TEST(TariffConvexSolvers, AgreeWithGreedyOnSmoothedObjective) {
  auto c = tariffed_config();
  Rng rng(33);
  for (int trial = 0; trial < 10; ++trial) {
    auto obs = obs_for(c, rng);
    PerSlotProblem problem(c, obs, params(rng.uniform(0.5, 4.0)));
    auto greedy = solve_per_slot_greedy(problem);
    auto pgd = solve_per_slot_pgd(problem);
    double scale = std::max(1.0, std::abs(problem.value(greedy)));
    EXPECT_NEAR(problem.value(greedy), problem.value(pgd), 6e-3 * scale)
        << "trial " << trial;
  }
}

TEST(TariffLp, IsRejected) {
  auto c = tariffed_config();
  Rng rng(35);
  auto obs = obs_for(c, rng);
  PerSlotProblem problem(c, obs, params(1.0));
  EXPECT_THROW(build_per_slot_lp(problem), ContractViolation);
}

TEST(TariffEngine, BillsThroughTheTariff) {
  // One DC, constant price, tariff doubling beyond E=2; Always processes
  // 4 work => energy 4 => bill = 0.5 * (2*1 + 2*2) = 3.
  ClusterConfig c;
  c.server_types = {{"std", 1.0, 1.0}};
  c.data_centers = {{"dc", {10}}};
  c.accounts = {{"a", 1.0}};
  c.job_types = {{"j", 1.0, {0}, 0}};
  c.tariffs = {TieredTariff({{2.0, 1.0}, {kInf, 2.0}})};
  auto prices = std::make_shared<ConstantPriceModel>(std::vector<double>{0.5});
  auto avail = std::make_shared<FullAvailability>(c.data_centers);
  auto arr = std::make_shared<ConstantArrivals>(std::vector<std::int64_t>{4});
  auto sched = std::make_shared<AlwaysScheduler>(c);
  SimulationEngine engine(c, prices, avail, arr, sched);
  engine.run(3);
  EXPECT_DOUBLE_EQ(engine.metrics().energy_cost.at(1), 3.0);
}

TEST(TariffEngine, GreFarSpreadsWorkToAvoidExpensiveTiers) {
  // Strongly tiered billing makes batching expensive: GreFar under the
  // tariff should pay less than the same GreFar ignoring the tier structure
  // would (i.e., tariff-aware decisions matter).
  ClusterConfig c;
  c.server_types = {{"std", 1.0, 1.0}};
  c.data_centers = {{"dc", {40}}};
  c.accounts = {{"a", 1.0}};
  c.job_types = {{"j", 1.0, {0}, 0}};
  c.tariffs = {TieredTariff({{8.0, 1.0}, {kInf, 4.0}})};

  auto prices = std::make_shared<TablePriceModel>(
      std::vector<std::vector<double>>{{0.6, 0.5, 0.4, 0.3, 0.4, 0.5}});
  auto avail = std::make_shared<FullAvailability>(c.data_centers);
  auto arr = std::make_shared<ConstantArrivals>(std::vector<std::int64_t>{6});

  GreFarParams p = params(6.0);
  auto run_cost = [&](const ClusterConfig& config) {
    auto sched = std::make_shared<GreFarScheduler>(config, p);
    // Bill both runs under the *tariffed* cluster (the real meter).
    SimulationEngine engine(c, prices, avail, arr, sched);
    engine.run(400);
    return engine.metrics().final_average_energy_cost();
  };
  ClusterConfig blind = c;
  blind.tariffs.clear();  // scheduler believes billing is linear
  double aware = run_cost(c);
  double unaware = run_cost(blind);
  EXPECT_LE(aware, unaware + 1e-9);
}

}  // namespace
}  // namespace grefar
