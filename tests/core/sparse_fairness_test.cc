// DESIGN.md §12: the compact (active-type) per-slot solve must be *bitwise*
// identical to the dense solve — same route and process matrices, down to
// the last ulp — across multi-slot runs with churning active sets, for both
// the exact greedy (beta = 0) and PGD (beta > 0, warm starts across slots
// remapping between coordinate systems). Two scheduler instances see the
// identical observation stream; one gets the active-type hint, the other
// does not.
#include <gtest/gtest.h>

#include <vector>

#include "core/drift_penalty.h"
#include "core/grefar.h"
#include "obs/counters.h"
#include "util/check.h"
#include "util/rng.h"

namespace grefar {
namespace {

ClusterConfig random_config(Rng& rng, std::size_t num_dcs, std::size_t num_types,
                            std::size_t num_accounts) {
  ClusterConfig c;
  c.server_types = {{"std", 1.0, 1.0}, {"eco", 0.75, 0.6}};
  for (std::size_t i = 0; i < num_dcs; ++i) {
    c.data_centers.push_back({"dc" + std::to_string(i), {12, 8}});
  }
  double gamma_sum = 0.0;
  std::vector<double> gammas(num_accounts);
  for (auto& g : gammas) {
    g = rng.uniform(0.1, 1.0);
    gamma_sum += g;
  }
  for (std::size_t m = 0; m < num_accounts; ++m) {
    c.accounts.push_back({"a" + std::to_string(m), gammas[m] / gamma_sum});
  }
  for (std::size_t j = 0; j < num_types; ++j) {
    JobType jt;
    jt.name = "t" + std::to_string(j);
    jt.work = rng.uniform(0.5, 2.0);
    for (std::size_t i = 0; i < num_dcs; ++i) {
      if (rng.bernoulli(0.7)) jt.eligible_dcs.push_back(i);
    }
    if (jt.eligible_dcs.empty()) {
      jt.eligible_dcs.push_back(rng.uniform_int(0, static_cast<std::int64_t>(num_dcs) - 1));
    }
    jt.account = static_cast<AccountId>(
        rng.uniform_int(0, static_cast<std::int64_t>(num_accounts) - 1));
    c.job_types.push_back(std::move(jt));
  }
  c.validate();
  return c;
}

/// Random queue state honoring the hint contract: a type not in the active
/// list is zero everywhere. p_active churns per call; listed-but-empty
/// types exercise the superset tolerance.
SlotObservation random_obs(Rng& rng, const ClusterConfig& c, std::int64_t slot,
                           double p_active) {
  const std::size_t N = c.num_data_centers();
  const std::size_t J = c.num_job_types();
  SlotObservation obs;
  obs.slot = slot;
  obs.prices.resize(N);
  for (auto& p : obs.prices) p = rng.uniform(0.2, 0.8);
  obs.availability = Matrix<std::int64_t>(N, c.num_server_types());
  for (std::size_t i = 0; i < N; ++i) {
    obs.availability(i, 0) = rng.uniform_int(6, 12);
    obs.availability(i, 1) = rng.uniform_int(4, 8);
  }
  obs.central_queue.assign(J, 0.0);
  obs.dc_queue = MatrixD(N, J);
  obs.dc_queue.fill(0.0);
  obs.active_types.clear();
  for (std::size_t j = 0; j < J; ++j) {
    if (rng.uniform() >= p_active) continue;
    obs.active_types.push_back(static_cast<std::uint32_t>(j));
    if (rng.bernoulli(0.1)) continue;  // listed but empty (superset hint)
    obs.central_queue[j] = static_cast<double>(rng.uniform_int(0, 6));
    for (std::size_t i = 0; i < N; ++i) {
      if (rng.bernoulli(0.5)) {
        obs.dc_queue(i, j) = rng.uniform(0.0, 4.0);
      }
    }
  }
  obs.active_types_valid = true;
  return obs;
}

void expect_actions_bitwise_equal(const SlotAction& sparse, const SlotAction& dense,
                                  std::int64_t slot) {
  ASSERT_EQ(sparse.route.rows(), dense.route.rows());
  ASSERT_EQ(sparse.route.cols(), dense.route.cols());
  for (std::size_t i = 0; i < sparse.route.rows(); ++i) {
    for (std::size_t j = 0; j < sparse.route.cols(); ++j) {
      // EXPECT_EQ on doubles is exact — the bitwise contract.
      EXPECT_EQ(sparse.route(i, j), dense.route(i, j))
          << "route mismatch at slot " << slot << " (" << i << ", " << j << ")";
      EXPECT_EQ(sparse.process(i, j), dense.process(i, j))
          << "process mismatch at slot " << slot << " (" << i << ", " << j << ")";
    }
  }
}

void run_sparse_vs_dense(GreFarParams params, PerSlotSolver solver,
                         std::uint64_t seed) {
  Rng rng(seed);
  ClusterConfig config = random_config(rng, 3, 48, 12);
  GreFarScheduler with_hint(config, params, solver);
  GreFarScheduler without_hint(config, params, solver);

  obs::CounterRegistry counters;
  SlotAction a_sparse;
  SlotAction a_dense;
  for (std::int64_t t = 0; t < 60; ++t) {
    // Churn the density: sparse slots, dense slots, idle slots.
    double p_active = 0.15;
    if (t % 7 == 3) p_active = 0.9;
    if (t % 11 == 5) p_active = 0.0;
    SlotObservation obs = random_obs(rng, config, t, p_active);
    {
      obs::CountersScope scope(&counters);
      with_hint.decide_into(obs, a_sparse);
    }
    SlotObservation dense_obs = obs;
    dense_obs.active_types_valid = false;  // same state, no hint
    dense_obs.active_types.clear();
    without_hint.decide_into(dense_obs, a_dense);
    expect_actions_bitwise_equal(a_sparse, a_dense, t);
  }
  // The hinted scheduler must actually have taken the compact path.
  EXPECT_GT(counters.counter("fairness.sparse_skips"), 0u);
}

TEST(SparseFairness, GreedyCompactMatchesDenseBitwise) {
  run_sparse_vs_dense(GreFarParams{}, PerSlotSolver::kGreedy, 0xA11CE);
}

TEST(SparseFairness, PgdCompactMatchesDenseBitwise) {
  GreFarParams p;
  p.V = 2.0;
  p.beta = 0.5;
  run_sparse_vs_dense(p, PerSlotSolver::kProjectedGradient, 0xB0B);
}

TEST(SparseFairness, PgdColdStartCompactMatchesDenseBitwise) {
  GreFarParams p;
  p.V = 1.0;
  p.beta = 1.5;
  p.warm_start_across_slots = false;  // greedy cold start every slot
  run_sparse_vs_dense(p, PerSlotSolver::kProjectedGradient, 0xC0FFEE);
}

TEST(SparseFairness, DenseSlotsInterleavedStayBitwise) {
  // Hint-less slots in the middle of a hinted run force compact -> dense ->
  // compact transitions (warm-start remaps, action-clear invariant resets).
  Rng rng(0xD15C0);
  ClusterConfig config = random_config(rng, 2, 32, 8);
  GreFarParams params;
  params.V = 2.0;
  params.beta = 0.8;
  GreFarScheduler mixed(config, params, PerSlotSolver::kProjectedGradient);
  GreFarScheduler dense(config, params, PerSlotSolver::kProjectedGradient);
  SlotAction a_mixed;
  SlotAction a_dense;
  for (std::int64_t t = 0; t < 40; ++t) {
    SlotObservation obs = random_obs(rng, config, t, 0.25);
    SlotObservation mixed_obs = obs;
    if (t % 3 == 1) {  // every third slot loses the hint
      mixed_obs.active_types_valid = false;
      mixed_obs.active_types.clear();
    }
    mixed.decide_into(mixed_obs, a_mixed);
    SlotObservation dense_obs = obs;
    dense_obs.active_types_valid = false;
    dense_obs.active_types.clear();
    dense.decide_into(dense_obs, a_dense);
    expect_actions_bitwise_equal(a_mixed, a_dense, t);
  }
}

TEST(SparseFairness, DriftPenaltyRejectsOutOfRangeAccount) {
  // Satellite (a): a job type referencing a missing account must fail fast
  // at problem construction with a pointed message, not corrupt the
  // fairness buffers at solve time.
  ClusterConfig c;
  c.server_types = {{"std", 1.0, 1.0}};
  c.data_centers = {{"dc0", {4}}};
  c.accounts = {{"only", 1.0}};
  c.job_types = {{"bad", 1.0, {0}, 1}};  // account 1 of a 1-account cluster
  SlotObservation obs;
  obs.slot = 0;
  obs.prices = {0.5};
  obs.availability = Matrix<std::int64_t>(1, 1);
  obs.availability(0, 0) = 4;
  obs.central_queue = {0.0};
  obs.dc_queue = MatrixD(1, 1);
  EXPECT_THROW(PerSlotProblem(c, obs, GreFarParams{}), ContractViolation);
}

}  // namespace
}  // namespace grefar
