#include "core/grefar.h"
#include <cmath>

#include <gtest/gtest.h>

#include "obs/trace_scope.h"
#include "sim/engine.h"
#include "util/check.h"

namespace grefar {
namespace {

ClusterConfig two_dc_config() {
  ClusterConfig c;
  c.server_types = {{"std", 1.0, 1.0}};
  c.data_centers = {{"dc1", {10}}, {"dc2", {10}}};
  c.accounts = {{"a", 1.0}};
  c.job_types = {{"j", 1.0, {0, 1}, 0}};
  return c;
}

SlotObservation obs_with(double Q, double q0, double q1, double price0 = 0.5,
                         double price1 = 0.5) {
  SlotObservation obs;
  obs.slot = 0;
  obs.prices = {price0, price1};
  obs.availability = Matrix<std::int64_t>(2, 1);
  obs.availability(0, 0) = 10;
  obs.availability(1, 0) = 10;
  obs.central_queue = {Q};
  obs.dc_queue = MatrixD(2, 1);
  obs.dc_queue(0, 0) = q0;
  obs.dc_queue(1, 0) = q1;
  return obs;
}

GreFarParams make_params(double V, double beta = 0.0) {
  GreFarParams p;
  p.V = V;
  p.beta = beta;
  p.r_max = 100.0;
  p.h_max = 100.0;
  return p;
}

TEST(GreFar, NameEncodesParameters) {
  GreFarScheduler s(two_dc_config(), make_params(7.5, 100.0),
                    PerSlotSolver::kFrankWolfe);
  EXPECT_EQ(s.name(), "GreFar(V=7.50, beta=100.0)");
}

TEST(GreFar, RoutesToShorterQueuesOnly) {
  GreFarScheduler s(two_dc_config(), make_params(1.0));
  // Q = 5; q0 = 2 (< Q, beneficial), q1 = 9 (> Q, not beneficial).
  auto action = s.decide(obs_with(5.0, 2.0, 9.0));
  EXPECT_GT(action.route(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(action.route(1, 0), 0.0);
}

TEST(GreFar, RoutingClampsToCentralQueue) {
  GreFarScheduler s(two_dc_config(), make_params(1.0));
  auto action = s.decide(obs_with(5.0, 0.0, 0.0));
  EXPECT_LE(action.route(0, 0) + action.route(1, 0), 5.0 + 1e-9);
}

TEST(GreFar, RoutingPrefersShortestDcQueue) {
  GreFarParams p = make_params(1.0);
  p.r_max = 3.0;  // forces spill-over to the second-best DC
  GreFarScheduler s(two_dc_config(), p);
  auto action = s.decide(obs_with(5.0, 1.0, 2.0));
  EXPECT_DOUBLE_EQ(action.route(0, 0), 3.0);  // shortest queue first, r_max cap
  EXPECT_DOUBLE_EQ(action.route(1, 0), 2.0);  // remainder
}

TEST(GreFar, NoRoutingWhenAllDcQueuesLonger) {
  GreFarScheduler s(two_dc_config(), make_params(1.0));
  auto action = s.decide(obs_with(1.0, 5.0, 7.0));
  EXPECT_DOUBLE_EQ(action.route(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(action.route(1, 0), 0.0);
}

TEST(GreFar, LiteralModeSaturatesAllBeneficialDestinations) {
  GreFarParams p = make_params(1.0);
  p.clamp_to_queue = false;
  p.r_max = 4.0;
  GreFarScheduler s(two_dc_config(), p);
  auto action = s.decide(obs_with(5.0, 1.0, 2.0));
  EXPECT_DOUBLE_EQ(action.route(0, 0), 4.0);
  EXPECT_DOUBLE_EQ(action.route(1, 0), 4.0);
}

TEST(GreFar, ProcessesWhenPriceLowRelativeToQueue) {
  GreFarScheduler s(two_dc_config(), make_params(4.0));
  // Threshold q > V * phi * (p/s) * d = 4 * 0.5 = 2.
  auto low = s.decide(obs_with(0.0, 3.0, 0.0));
  EXPECT_GT(low.process(0, 0), 0.0);
  auto high = s.decide(obs_with(0.0, 1.0, 0.0));
  EXPECT_DOUBLE_EQ(high.process(0, 0), 0.0);
}

TEST(GreFar, LargerVWaitsForCheaperPrices) {
  // Same queue, same price: V = 1 processes, V = 100 defers.
  GreFarScheduler eager(two_dc_config(), make_params(1.0));
  GreFarScheduler patient(two_dc_config(), make_params(100.0));
  auto obs = obs_with(0.0, 3.0, 0.0);
  EXPECT_GT(eager.decide(obs).process(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(patient.decide(obs).process(0, 0), 0.0);
}

TEST(GreFar, PriceDropTriggersProcessing) {
  GreFarScheduler s(two_dc_config(), make_params(10.0));
  // Threshold price: q/d / (V * p/s) = 3 / 10 = 0.3.
  EXPECT_DOUBLE_EQ(s.decide(obs_with(0.0, 3.0, 0.0, 0.45, 0.45)).process(0, 0), 0.0);
  EXPECT_GT(s.decide(obs_with(0.0, 3.0, 0.0, 0.25, 0.45)).process(0, 0), 0.0);
}

TEST(GreFar, ProcessingNeverExceedsQueueWhenClamped) {
  GreFarScheduler s(two_dc_config(), make_params(0.1));
  auto action = s.decide(obs_with(0.0, 4.0, 2.0));
  EXPECT_LE(action.process(0, 0), 4.0 + 1e-9);
  EXPECT_LE(action.process(1, 0), 2.0 + 1e-9);
}

TEST(GreFar, HonorsHMax) {
  GreFarParams p = make_params(0.0);
  p.h_max = 1.5;
  GreFarScheduler s(two_dc_config(), p);
  auto action = s.decide(obs_with(0.0, 4.0, 0.0));
  EXPECT_LE(action.process(0, 0), 1.5 + 1e-9);
}

TEST(GreFar, BetaRequiresConvexSolver) {
  EXPECT_THROW(
      GreFarScheduler(two_dc_config(), make_params(1.0, 10.0), PerSlotSolver::kGreedy),
      ContractViolation);
  EXPECT_THROW(
      GreFarScheduler(two_dc_config(), make_params(1.0, 10.0), PerSlotSolver::kLp),
      ContractViolation);
  // Default constructor auto-selects a fairness-capable solver.
  GreFarScheduler ok(two_dc_config(), make_params(1.0, 10.0));
  EXPECT_EQ(ok.solver(), PerSlotSolver::kProjectedGradient);
}

TEST(GreFar, DefaultSolverIsGreedyWithoutFairness) {
  GreFarScheduler s(two_dc_config(), make_params(1.0, 0.0));
  EXPECT_EQ(s.solver(), PerSlotSolver::kGreedy);
}

TEST(GreFar, RejectsNegativeParameters) {
  EXPECT_THROW(GreFarScheduler(two_dc_config(), make_params(-1.0)), ContractViolation);
}

TEST(GreFar, IneligibleDcNeverTouched) {
  ClusterConfig c = two_dc_config();
  c.job_types[0].eligible_dcs = {0};
  GreFarScheduler s(c, make_params(0.1));
  auto action = s.decide(obs_with(5.0, 1.0, 0.0));
  EXPECT_DOUBLE_EQ(action.route(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(action.process(1, 0), 0.0);
}

TEST(GreFar, TiedQueuesSplitProportionallyToCapacity) {
  // Both DC queues are 0 (tied): the batch splits by capacity share.
  ClusterConfig c = two_dc_config();
  c.data_centers[1].installed = {30};  // DC2 has 3x DC1's capacity
  GreFarScheduler s(c, make_params(1.0));
  SlotObservation obs = obs_with(40.0, 0.0, 0.0);
  obs.availability(1, 0) = 30;
  auto action = s.decide(obs);
  EXPECT_NEAR(action.route(0, 0), 10.0, 1.0);  // ~25% of 40
  EXPECT_NEAR(action.route(1, 0), 30.0, 1.0);  // ~75%
  EXPECT_DOUBLE_EQ(action.route(0, 0) + action.route(1, 0), 40.0);
}

TEST(GreFar, StrictlyShorterQueueStillWinsOutright) {
  GreFarScheduler s(two_dc_config(), make_params(1.0));
  // q0 = 0 strictly below q1 = 3: no tie, everything goes to DC1 first.
  auto action = s.decide(obs_with(5.0, 0.0, 3.0));
  EXPECT_DOUBLE_EQ(action.route(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(action.route(1, 0), 0.0);
}

TEST(GreFar, PostRoutingProcessingCoversFreshlyRoutedJobs) {
  // Queue empty at the DCs, 4 jobs central, low V: with the default
  // (process_after_routing) h covers the routed jobs in the same decision.
  GreFarScheduler with(two_dc_config(), make_params(0.1));
  auto action = with.decide(obs_with(4.0, 0.0, 0.0));
  EXPECT_NEAR(action.process(0, 0) + action.process(1, 0), 4.0, 1e-6);

  // With the literal ordering h sees only the (empty) pre-routing queues.
  GreFarParams literal = make_params(0.1);
  literal.process_after_routing = false;
  GreFarScheduler without(two_dc_config(), literal);
  auto literal_action = without.decide(obs_with(4.0, 0.0, 0.0));
  EXPECT_DOUBLE_EQ(literal_action.process(0, 0) + literal_action.process(1, 0), 0.0);
}

TEST(GreFar, RoutingIsIntegral) {
  GreFarScheduler s(two_dc_config(), make_params(1.0));
  auto action = s.decide(obs_with(5.7, 1.0, 2.0));
  double r = action.route(0, 0) + action.route(1, 0);
  EXPECT_DOUBLE_EQ(r, std::floor(r));
}

// -- zero-capacity / tie-split regression tests ------------------------------

ClusterConfig three_dc_config(std::vector<DataCenterId> eligible = {0, 1, 2}) {
  ClusterConfig c;
  c.server_types = {{"std", 1.0, 1.0}};
  c.data_centers = {{"dc1", {10}}, {"dc2", {10}}, {"dc3", {10}}};
  c.accounts = {{"a", 1.0}};
  c.job_types = {{"j", 1.0, std::move(eligible), 0}};
  return c;
}

SlotObservation three_dc_obs(double Q, std::vector<std::int64_t> avail) {
  SlotObservation obs;
  obs.slot = 0;
  obs.prices = {0.5, 0.5, 0.5};
  obs.availability = Matrix<std::int64_t>(3, 1);
  for (std::size_t i = 0; i < 3; ++i) obs.availability(i, 0) = avail[i];
  obs.central_queue = {Q};
  obs.dc_queue = MatrixD(3, 1);  // all tied at zero
  return obs;
}

TEST(GreFar, DeadTieGroupRoutesNothing) {
  // Every beneficial DC has zero capacity this slot. The old split fell back
  // to offering the *whole batch* to each member (total_cap == 0 branch), so
  // jobs were banked in DCs that could never serve them; now they stay
  // central.
  GreFarScheduler s(two_dc_config(), make_params(1.0));
  SlotObservation obs = obs_with(5.0, 0.0, 0.0);
  obs.availability(0, 0) = 0;
  obs.availability(1, 0) = 0;
  auto action = s.decide(obs);
  EXPECT_DOUBLE_EQ(action.route(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(action.route(1, 0), 0.0);
}

TEST(GreFar, DeadDcSkippedInsideTieGroup) {
  // DC1 is dead, DC2 alive, queues tied: the whole batch goes to DC2.
  GreFarScheduler s(two_dc_config(), make_params(1.0));
  SlotObservation obs = obs_with(5.0, 0.0, 0.0);
  obs.availability(0, 0) = 0;
  auto action = s.decide(obs);
  EXPECT_DOUBLE_EQ(action.route(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(action.route(1, 0), 5.0);
}

TEST(GreFar, DeadDcFallsThroughToWorseQueueGroup) {
  // The shortest-queue DC is dead; the batch should skip it and go to the
  // alive DC even though its queue is longer.
  GreFarScheduler s(two_dc_config(), make_params(1.0));
  SlotObservation obs = obs_with(10.0, 0.0, 2.0);
  obs.availability(0, 0) = 0;
  auto action = s.decide(obs);
  EXPECT_DOUBLE_EQ(action.route(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(action.route(1, 0), 10.0);
}

TEST(GreFar, EngineNeverRoutesToPermanentlyDeadDc) {
  // End-to-end: DC1 has zero servers every slot. Over a long run no job may
  // ever enter its queues.
  ClusterConfig config = two_dc_config();
  Matrix<std::int64_t> snapshot(2, 1);
  snapshot(0, 0) = 0;   // DC1 dead forever
  snapshot(1, 0) = 10;  // DC2 alive
  auto prices = std::make_shared<ConstantPriceModel>(std::vector<double>{0.5, 0.5});
  auto avail = std::make_shared<TableAvailability>(
      std::vector<Matrix<std::int64_t>>{snapshot});
  // Overload (15 jobs/slot vs capacity 10) so the alive DC's queue grows:
  // the dead DC then sits alone in the shortest-queue group every slot,
  // which is exactly the configuration the old split stranded jobs in.
  auto arrivals = std::make_shared<ConstantArrivals>(std::vector<std::int64_t>{15});
  auto sched = std::make_shared<GreFarScheduler>(config, make_params(1.0));
  SimulationEngine engine(config, prices, avail, arrivals, sched);
  for (int t = 0; t < 100; ++t) {
    engine.step();
    ASSERT_DOUBLE_EQ(engine.dc_queue_length(0, 0), 0.0) << "slot " << t;
  }
  EXPECT_DOUBLE_EQ(engine.metrics().dc_routed_jobs[0].sum(), 0.0);
  EXPECT_GT(engine.metrics().dc_routed_jobs[1].sum(), 0.0);
}

TEST(GreFar, TieSplitConservesUnderRMaxPressure) {
  // caps 10 vs 1, r_max = 3, Q = 5. The old ceil-based share gave DC2 only
  // ceil(5/11) = 1 after DC1 hit r_max, leaving a job stranded centrally
  // even though both DCs had r_max headroom. The largest-remainder split
  // pins DC1 at r_max and re-splits the rest: 3 + 2 = 5.
  GreFarParams p = make_params(1.0);
  p.r_max = 3.0;
  GreFarScheduler s(two_dc_config(), p);
  SlotObservation obs = obs_with(5.0, 0.0, 0.0);
  obs.availability(1, 0) = 1;
  auto action = s.decide(obs);
  EXPECT_DOUBLE_EQ(action.route(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(action.route(1, 0), 2.0);
}

TEST(GreFar, TieSplitConservesExactlyAcrossBatchSizes) {
  // Capacity weights 7 : 11 : 23 with ample r_max: every batch size must be
  // split exactly (no job lost, none invented) into integral per-DC counts.
  for (double Q = 1.0; Q <= 41.0; Q += 1.0) {
    GreFarScheduler s(three_dc_config(), make_params(1.0));
    SlotObservation obs = three_dc_obs(Q, {7, 11, 23});
    auto action = s.decide(obs);
    double total = 0.0;
    for (std::size_t i = 0; i < 3; ++i) {
      const double r = action.route(i, 0);
      EXPECT_DOUBLE_EQ(r, std::round(r));
      EXPECT_GE(r, 0.0);
      total += r;
    }
    EXPECT_DOUBLE_EQ(total, Q) << "Q=" << Q;
  }
}

TEST(GreFar, TieSplitIsOrderIndependent) {
  // Same cluster, eligible-DC list permuted: the split must not depend on
  // the order members entered the tie group.
  for (double Q = 1.0; Q <= 12.0; Q += 1.0) {
    GreFarScheduler fwd(three_dc_config({0, 1, 2}), make_params(1.0));
    GreFarScheduler rev(three_dc_config({2, 1, 0}), make_params(1.0));
    auto a = fwd.decide(three_dc_obs(Q, {10, 10, 10}));
    auto b = rev.decide(three_dc_obs(Q, {10, 10, 10}));
    for (std::size_t i = 0; i < 3; ++i) {
      EXPECT_DOUBLE_EQ(a.route(i, 0), b.route(i, 0)) << "Q=" << Q << " dc=" << i;
    }
  }
}

TEST(GreFar, TraceScopeRecordsTieSplitsAndDriftSigns) {
  GreFarScheduler s(two_dc_config(), make_params(1.0));
  SlotObservation obs = obs_with(5.0, 0.0, 0.0);
  obs.availability(0, 0) = 0;  // one dead member in the tie group
  SlotAction action;
  TraceScope scope;
  s.decide_into(obs, action, &scope);
  ASSERT_EQ(scope.tie_splits.size(), 1u);
  EXPECT_EQ(scope.tie_splits[0].job_type, 0u);
  EXPECT_EQ(scope.tie_splits[0].group_size, 2u);
  EXPECT_DOUBLE_EQ(scope.tie_splits[0].jobs, 5.0);
  EXPECT_EQ(scope.tie_splits[0].zero_capacity_skipped, 1u);
  // Both (i, j) pairs had q = 0 < Q = 5: negative drift weights.
  EXPECT_EQ(scope.drift_weights_negative, 2u);
  EXPECT_EQ(scope.drift_weights_nonnegative, 0u);
}

}  // namespace
}  // namespace grefar
