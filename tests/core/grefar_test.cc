#include "core/grefar.h"
#include <cmath>

#include <gtest/gtest.h>

#include "util/check.h"

namespace grefar {
namespace {

ClusterConfig two_dc_config() {
  ClusterConfig c;
  c.server_types = {{"std", 1.0, 1.0}};
  c.data_centers = {{"dc1", {10}}, {"dc2", {10}}};
  c.accounts = {{"a", 1.0}};
  c.job_types = {{"j", 1.0, {0, 1}, 0}};
  return c;
}

SlotObservation obs_with(double Q, double q0, double q1, double price0 = 0.5,
                         double price1 = 0.5) {
  SlotObservation obs;
  obs.slot = 0;
  obs.prices = {price0, price1};
  obs.availability = Matrix<std::int64_t>(2, 1);
  obs.availability(0, 0) = 10;
  obs.availability(1, 0) = 10;
  obs.central_queue = {Q};
  obs.dc_queue = MatrixD(2, 1);
  obs.dc_queue(0, 0) = q0;
  obs.dc_queue(1, 0) = q1;
  return obs;
}

GreFarParams make_params(double V, double beta = 0.0) {
  GreFarParams p;
  p.V = V;
  p.beta = beta;
  p.r_max = 100.0;
  p.h_max = 100.0;
  return p;
}

TEST(GreFar, NameEncodesParameters) {
  GreFarScheduler s(two_dc_config(), make_params(7.5, 100.0),
                    PerSlotSolver::kFrankWolfe);
  EXPECT_EQ(s.name(), "GreFar(V=7.50, beta=100.0)");
}

TEST(GreFar, RoutesToShorterQueuesOnly) {
  GreFarScheduler s(two_dc_config(), make_params(1.0));
  // Q = 5; q0 = 2 (< Q, beneficial), q1 = 9 (> Q, not beneficial).
  auto action = s.decide(obs_with(5.0, 2.0, 9.0));
  EXPECT_GT(action.route(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(action.route(1, 0), 0.0);
}

TEST(GreFar, RoutingClampsToCentralQueue) {
  GreFarScheduler s(two_dc_config(), make_params(1.0));
  auto action = s.decide(obs_with(5.0, 0.0, 0.0));
  EXPECT_LE(action.route(0, 0) + action.route(1, 0), 5.0 + 1e-9);
}

TEST(GreFar, RoutingPrefersShortestDcQueue) {
  GreFarParams p = make_params(1.0);
  p.r_max = 3.0;  // forces spill-over to the second-best DC
  GreFarScheduler s(two_dc_config(), p);
  auto action = s.decide(obs_with(5.0, 1.0, 2.0));
  EXPECT_DOUBLE_EQ(action.route(0, 0), 3.0);  // shortest queue first, r_max cap
  EXPECT_DOUBLE_EQ(action.route(1, 0), 2.0);  // remainder
}

TEST(GreFar, NoRoutingWhenAllDcQueuesLonger) {
  GreFarScheduler s(two_dc_config(), make_params(1.0));
  auto action = s.decide(obs_with(1.0, 5.0, 7.0));
  EXPECT_DOUBLE_EQ(action.route(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(action.route(1, 0), 0.0);
}

TEST(GreFar, LiteralModeSaturatesAllBeneficialDestinations) {
  GreFarParams p = make_params(1.0);
  p.clamp_to_queue = false;
  p.r_max = 4.0;
  GreFarScheduler s(two_dc_config(), p);
  auto action = s.decide(obs_with(5.0, 1.0, 2.0));
  EXPECT_DOUBLE_EQ(action.route(0, 0), 4.0);
  EXPECT_DOUBLE_EQ(action.route(1, 0), 4.0);
}

TEST(GreFar, ProcessesWhenPriceLowRelativeToQueue) {
  GreFarScheduler s(two_dc_config(), make_params(4.0));
  // Threshold q > V * phi * (p/s) * d = 4 * 0.5 = 2.
  auto low = s.decide(obs_with(0.0, 3.0, 0.0));
  EXPECT_GT(low.process(0, 0), 0.0);
  auto high = s.decide(obs_with(0.0, 1.0, 0.0));
  EXPECT_DOUBLE_EQ(high.process(0, 0), 0.0);
}

TEST(GreFar, LargerVWaitsForCheaperPrices) {
  // Same queue, same price: V = 1 processes, V = 100 defers.
  GreFarScheduler eager(two_dc_config(), make_params(1.0));
  GreFarScheduler patient(two_dc_config(), make_params(100.0));
  auto obs = obs_with(0.0, 3.0, 0.0);
  EXPECT_GT(eager.decide(obs).process(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(patient.decide(obs).process(0, 0), 0.0);
}

TEST(GreFar, PriceDropTriggersProcessing) {
  GreFarScheduler s(two_dc_config(), make_params(10.0));
  // Threshold price: q/d / (V * p/s) = 3 / 10 = 0.3.
  EXPECT_DOUBLE_EQ(s.decide(obs_with(0.0, 3.0, 0.0, 0.45, 0.45)).process(0, 0), 0.0);
  EXPECT_GT(s.decide(obs_with(0.0, 3.0, 0.0, 0.25, 0.45)).process(0, 0), 0.0);
}

TEST(GreFar, ProcessingNeverExceedsQueueWhenClamped) {
  GreFarScheduler s(two_dc_config(), make_params(0.1));
  auto action = s.decide(obs_with(0.0, 4.0, 2.0));
  EXPECT_LE(action.process(0, 0), 4.0 + 1e-9);
  EXPECT_LE(action.process(1, 0), 2.0 + 1e-9);
}

TEST(GreFar, HonorsHMax) {
  GreFarParams p = make_params(0.0);
  p.h_max = 1.5;
  GreFarScheduler s(two_dc_config(), p);
  auto action = s.decide(obs_with(0.0, 4.0, 0.0));
  EXPECT_LE(action.process(0, 0), 1.5 + 1e-9);
}

TEST(GreFar, BetaRequiresConvexSolver) {
  EXPECT_THROW(
      GreFarScheduler(two_dc_config(), make_params(1.0, 10.0), PerSlotSolver::kGreedy),
      ContractViolation);
  EXPECT_THROW(
      GreFarScheduler(two_dc_config(), make_params(1.0, 10.0), PerSlotSolver::kLp),
      ContractViolation);
  // Default constructor auto-selects a fairness-capable solver.
  GreFarScheduler ok(two_dc_config(), make_params(1.0, 10.0));
  EXPECT_EQ(ok.solver(), PerSlotSolver::kProjectedGradient);
}

TEST(GreFar, DefaultSolverIsGreedyWithoutFairness) {
  GreFarScheduler s(two_dc_config(), make_params(1.0, 0.0));
  EXPECT_EQ(s.solver(), PerSlotSolver::kGreedy);
}

TEST(GreFar, RejectsNegativeParameters) {
  EXPECT_THROW(GreFarScheduler(two_dc_config(), make_params(-1.0)), ContractViolation);
}

TEST(GreFar, IneligibleDcNeverTouched) {
  ClusterConfig c = two_dc_config();
  c.job_types[0].eligible_dcs = {0};
  GreFarScheduler s(c, make_params(0.1));
  auto action = s.decide(obs_with(5.0, 1.0, 0.0));
  EXPECT_DOUBLE_EQ(action.route(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(action.process(1, 0), 0.0);
}

TEST(GreFar, TiedQueuesSplitProportionallyToCapacity) {
  // Both DC queues are 0 (tied): the batch splits by capacity share.
  ClusterConfig c = two_dc_config();
  c.data_centers[1].installed = {30};  // DC2 has 3x DC1's capacity
  GreFarScheduler s(c, make_params(1.0));
  SlotObservation obs = obs_with(40.0, 0.0, 0.0);
  obs.availability(1, 0) = 30;
  auto action = s.decide(obs);
  EXPECT_NEAR(action.route(0, 0), 10.0, 1.0);  // ~25% of 40
  EXPECT_NEAR(action.route(1, 0), 30.0, 1.0);  // ~75%
  EXPECT_DOUBLE_EQ(action.route(0, 0) + action.route(1, 0), 40.0);
}

TEST(GreFar, StrictlyShorterQueueStillWinsOutright) {
  GreFarScheduler s(two_dc_config(), make_params(1.0));
  // q0 = 0 strictly below q1 = 3: no tie, everything goes to DC1 first.
  auto action = s.decide(obs_with(5.0, 0.0, 3.0));
  EXPECT_DOUBLE_EQ(action.route(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(action.route(1, 0), 0.0);
}

TEST(GreFar, PostRoutingProcessingCoversFreshlyRoutedJobs) {
  // Queue empty at the DCs, 4 jobs central, low V: with the default
  // (process_after_routing) h covers the routed jobs in the same decision.
  GreFarScheduler with(two_dc_config(), make_params(0.1));
  auto action = with.decide(obs_with(4.0, 0.0, 0.0));
  EXPECT_NEAR(action.process(0, 0) + action.process(1, 0), 4.0, 1e-6);

  // With the literal ordering h sees only the (empty) pre-routing queues.
  GreFarParams literal = make_params(0.1);
  literal.process_after_routing = false;
  GreFarScheduler without(two_dc_config(), literal);
  auto literal_action = without.decide(obs_with(4.0, 0.0, 0.0));
  EXPECT_DOUBLE_EQ(literal_action.process(0, 0) + literal_action.process(1, 0), 0.0);
}

TEST(GreFar, RoutingIsIntegral) {
  GreFarScheduler s(two_dc_config(), make_params(1.0));
  auto action = s.decide(obs_with(5.7, 1.0, 2.0));
  double r = action.route(0, 0) + action.route(1, 0);
  EXPECT_DOUBLE_EQ(r, std::floor(r));
}

}  // namespace
}  // namespace grefar
