// Tests for the parallel sweep subsystem: ThreadPool lifecycle guarantees
// and SimRunner's determinism contract (jobs = 1 and jobs = N must produce
// bit-identical metrics, because every leg owns its models end to end).
#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#if defined(__linux__)
#include <sched.h>
#endif

#include <gtest/gtest.h>

#include "baselines/baselines.h"
#include "core/grefar.h"
#include "parallel/sim_runner.h"
#include "parallel/thread_pool.h"
#include "scenario/paper_scenario.h"
#include "sim/engine.h"

namespace grefar {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTaskExactlyOnce) {
  std::atomic<int> counter{0};
  ThreadPool pool(4);
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
  EXPECT_EQ(pool.completed_tasks(), 100u);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 32; ++i) {
      pool.submit([&counter] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        counter.fetch_add(1, std::memory_order_relaxed);
      });
    }
    // No wait_idle(): the destructor must block until all 32 ran.
  }
  EXPECT_EQ(counter.load(), 32);
}

TEST(ThreadPoolTest, WaitIdleReturnsWithEmptyQueue) {
  ThreadPool pool(3);
  pool.wait_idle();  // no tasks submitted: must not hang
  std::atomic<int> counter{0};
  pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, SubmitBatchCoversEveryIndexExactlyOnce) {
  for (std::size_t chunk : {std::size_t{1}, std::size_t{7}, std::size_t{64},
                            std::size_t{200}}) {
    ThreadPool pool(4);
    constexpr std::size_t kCount = 100;
    std::vector<std::atomic<int>> hits(kCount);
    std::size_t tasks = pool.submit_batch(
        kCount, chunk, [&](std::size_t, std::size_t begin, std::size_t end) {
          ASSERT_LE(begin, end);
          ASSERT_LE(end, kCount);
          for (std::size_t i = begin; i < end; ++i) {
            hits[i].fetch_add(1, std::memory_order_relaxed);
          }
        });
    EXPECT_GE(tasks, 1u);
    EXPECT_LE(tasks, pool.num_threads());
    for (std::size_t i = 0; i < kCount; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "chunk " << chunk << " index " << i;
    }
  }
}

TEST(ThreadPoolTest, SubmitBatchHandlesEmptyAndOversizedChunks) {
  ThreadPool pool(2);
  int calls = 0;
  // count == 0: no ranges, returns without touching the body.
  pool.submit_batch(0, 4, [&](std::size_t, std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  // chunk > count: one range spanning everything, one loop task.
  std::vector<int> seen;
  std::size_t tasks = pool.submit_batch(
      3, 100, [&](std::size_t task, std::size_t begin, std::size_t end) {
        EXPECT_EQ(task, 0u);
        for (std::size_t i = begin; i < end; ++i) seen.push_back(static_cast<int>(i));
      });
  EXPECT_EQ(tasks, 1u);
  EXPECT_EQ(seen, (std::vector<int>{0, 1, 2}));
}

TEST(ThreadPoolTest, DefaultConcurrencyMatchesAffinityMask) {
  std::size_t n = ThreadPool::default_concurrency();
  EXPECT_GE(n, 1u);
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  ASSERT_EQ(sched_getaffinity(0, sizeof(set), &set), 0);
  EXPECT_EQ(n, static_cast<std::size_t>(CPU_COUNT(&set)));
#endif
}

TEST(SimRunnerTest, MapReturnsResultsInIndexOrder) {
  SimRunner runner(4);
  auto results = runner.map<std::size_t>(
      50, [](std::size_t i) { return i * i; });
  ASSERT_EQ(results.size(), 50u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i], i * i);
  }
}

TEST(SimRunnerTest, MapIsIdenticalAtAnyChunkSize) {
  SimRunner reference(1);
  auto expected = reference.map<std::size_t>(
      37, [](std::size_t i) { return i * 3 + 1; });
  for (std::size_t jobs : {std::size_t{4}, std::size_t{8}}) {
    for (std::size_t chunk : {std::size_t{1}, std::size_t{7}, std::size_t{64}}) {
      SimRunner runner(jobs);
      std::vector<std::size_t> got(37);
      runner.for_each_index(
          37, [&got](std::size_t i) { got[i] = i * 3 + 1; }, chunk);
      EXPECT_EQ(got, expected) << "jobs " << jobs << " chunk " << chunk;
    }
  }
}

// jobs == 1 is the historical serial contract: every index runs inline on
// the calling thread, in ascending order, with loop-task id 0 and no pool.
TEST(SimRunnerTest, SingleJobRunsInlineInOrder) {
  SimRunner runner(1);
  const auto caller = std::this_thread::get_id();
  std::vector<std::size_t> order;
  runner.for_each_index_tasked(
      20,
      [&](std::size_t task, std::size_t index) {
        EXPECT_EQ(task, 0u);
        EXPECT_EQ(std::this_thread::get_id(), caller);
        order.push_back(index);
      },
      /*chunk=*/7);
  ASSERT_EQ(order.size(), 20u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(SimRunnerTest, ForEachIndexTaskedRethrowsFirstFailureInIndexOrder) {
  SimRunner runner(4);
  try {
    runner.for_each_index_tasked(
        10,
        [](std::size_t, std::size_t index) {
          if (index == 3 || index == 7) {
            throw std::runtime_error("index " + std::to_string(index));
          }
        },
        /*chunk=*/2);
    FAIL() << "expected for_each_index_tasked to rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "index 3");
  }
}

TEST(SimRunnerTest, RethrowsFirstFailureInLegOrder) {
  SimRunner runner(4);
  std::vector<std::function<void()>> tasks;
  tasks.push_back([] {});
  tasks.push_back([] { throw std::runtime_error("leg 1 failed"); });
  tasks.push_back([] { throw std::runtime_error("leg 2 failed"); });
  try {
    runner.run(tasks);
    FAIL() << "expected runner.run to rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "leg 1 failed");
  }
}

// The headline contract: fanning legs over 4 workers yields metrics
// bit-identical to the serial run, because each leg rebuilds its scenario
// (and thus its RNG streams) from the same seed.
TEST(SimRunnerTest, ParallelRunMatchesSerialBitForBit) {
  constexpr std::int64_t kHorizon = 60;
  constexpr std::uint64_t kSeed = 42;
  const std::vector<double> v_values = {2.0, 7.5, 30.0};

  auto run_with_jobs = [&](std::size_t jobs) {
    SimRunner runner(jobs);
    std::vector<std::unique_ptr<SimulationEngine>> engines(v_values.size());
    std::vector<std::function<void()>> tasks;
    for (std::size_t leg = 0; leg < v_values.size(); ++leg) {
      tasks.push_back([&, leg] {
        PaperScenario scenario = make_paper_scenario(kSeed);
        auto scheduler = std::make_shared<GreFarScheduler>(
            scenario.config, paper_grefar_params(v_values[leg], 100.0));
        auto engine = make_scenario_engine(scenario, std::move(scheduler));
        engine->run(kHorizon);
        engines[leg] = std::move(engine);
      });
    }
    runner.run(tasks);
    return engines;
  };

  auto serial = run_with_jobs(1);
  auto parallel = run_with_jobs(4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t leg = 0; leg < serial.size(); ++leg) {
    const auto& ms = serial[leg]->metrics();
    const auto& mp = parallel[leg]->metrics();
    EXPECT_EQ(ms.final_average_energy_cost(), mp.final_average_energy_cost())
        << "leg " << leg;
    EXPECT_EQ(ms.final_average_fairness(), mp.final_average_fairness())
        << "leg " << leg;
    EXPECT_EQ(ms.mean_delay(), mp.mean_delay()) << "leg " << leg;
    EXPECT_EQ(ms.delay_p95(), mp.delay_p95()) << "leg " << leg;
  }
}

TEST(SimRunnerTest, RunEnginesPreservesMakerOrder) {
  constexpr std::int64_t kHorizon = 40;
  std::vector<std::function<std::unique_ptr<SimulationEngine>()>> makers;
  for (int leg = 0; leg < 2; ++leg) {
    makers.push_back([leg] {
      PaperScenario scenario = make_paper_scenario(7);
      std::shared_ptr<Scheduler> scheduler;
      if (leg == 0) {
        scheduler = std::make_shared<GreFarScheduler>(scenario.config,
                                                      paper_grefar_params(7.5, 0.0));
      } else {
        scheduler = std::make_shared<AlwaysScheduler>(scenario.config);
      }
      auto engine = make_scenario_engine(scenario, std::move(scheduler));
      engine->run(kHorizon);
      return engine;
    });
  }
  SimRunner runner(2);
  auto engines = runner.run_engines(std::move(makers));
  ASSERT_EQ(engines.size(), 2u);
  EXPECT_EQ(engines[0]->scheduler().name().rfind("GreFar", 0), 0u);
  EXPECT_EQ(engines[1]->scheduler().name(), "Always");
}

}  // namespace
}  // namespace grefar
