#include "price/price_model.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace grefar {
namespace {

TEST(ConstantPrice, ReturnsConfiguredValues) {
  ConstantPriceModel m({0.3, 0.5});
  EXPECT_EQ(m.num_data_centers(), 2u);
  EXPECT_DOUBLE_EQ(m.price(0, 0), 0.3);
  EXPECT_DOUBLE_EQ(m.price(1, 999), 0.5);
}

TEST(ConstantPrice, RejectsBadInputs) {
  EXPECT_THROW(ConstantPriceModel({}), ContractViolation);
  EXPECT_THROW(ConstantPriceModel({0.0}), ContractViolation);
  EXPECT_THROW(ConstantPriceModel({-1.0}), ContractViolation);
  ConstantPriceModel m({0.3});
  EXPECT_THROW(m.price(1, 0), ContractViolation);
  EXPECT_THROW(m.price(0, -1), ContractViolation);
}

DiurnalOuParams test_params(double mean) {
  DiurnalOuParams p;
  p.mean = mean;
  p.diurnal_amplitude = 0.1;
  p.peak_hour = 16.0;
  p.reversion = 0.3;
  p.volatility = 0.02;
  p.floor = 0.01;
  return p;
}

TEST(DiurnalOuPrice, DeterministicPerSeed) {
  DiurnalOuPriceModel a({test_params(0.4)}, 7);
  DiurnalOuPriceModel b({test_params(0.4)}, 7);
  for (std::int64_t t = 0; t < 200; ++t) EXPECT_DOUBLE_EQ(a.price(0, t), b.price(0, t));
}

TEST(DiurnalOuPrice, DifferentSeedsDiffer) {
  DiurnalOuPriceModel a({test_params(0.4)}, 7);
  DiurnalOuPriceModel b({test_params(0.4)}, 8);
  int same = 0;
  for (std::int64_t t = 0; t < 100; ++t) {
    if (a.price(0, t) == b.price(0, t)) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(DiurnalOuPrice, RandomAccessMatchesSequential) {
  DiurnalOuPriceModel a({test_params(0.4)}, 9);
  DiurnalOuPriceModel b({test_params(0.4)}, 9);
  double late_a = a.price(0, 500);  // jump directly
  for (std::int64_t t = 0; t < 500; ++t) b.price(0, t);
  EXPECT_DOUBLE_EQ(late_a, b.price(0, 500));
}

TEST(DiurnalOuPrice, LongRunMeanMatchesParameter) {
  DiurnalOuPriceModel m({test_params(0.45)}, 11);
  EXPECT_NEAR(average_price(m, 0, 20000), 0.45, 0.01);
}

TEST(DiurnalOuPrice, PricesStayAboveFloor) {
  auto p = test_params(0.1);
  p.volatility = 0.2;  // aggressive noise
  p.floor = 0.05;
  DiurnalOuPriceModel m({p}, 13);
  for (std::int64_t t = 0; t < 2000; ++t) EXPECT_GE(m.price(0, t), 0.05);
}

TEST(DiurnalOuPrice, DiurnalShapePeaksNearPeakHour) {
  auto p = test_params(0.5);
  p.volatility = 0.0;  // pure sinusoid
  p.diurnal_amplitude = 0.2;
  DiurnalOuPriceModel m({p}, 17);
  EXPECT_GT(m.price(0, 16), m.price(0, 4));  // peak hour 16, trough hour 4
  EXPECT_NEAR(m.price(0, 16), 0.6, 1e-9);
  EXPECT_NEAR(m.price(0, 4), 0.4, 1e-9);
}

TEST(DiurnalOuPrice, IndependentPerDataCenter) {
  DiurnalOuPriceModel m({test_params(0.4), test_params(0.4)}, 19);
  int same = 0;
  for (std::int64_t t = 0; t < 100; ++t) {
    if (m.price(0, t) == m.price(1, t)) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(SpikyPrice, MultiplierNeverBelowBase) {
  auto base = std::make_shared<ConstantPriceModel>(std::vector<double>{0.4});
  SpikyPriceModel m(base, 0.05, 3.0, 0.5, 23);
  for (std::int64_t t = 0; t < 2000; ++t) EXPECT_GE(m.price(0, t), 0.4 - 1e-12);
}

TEST(SpikyPrice, SpikesOccur) {
  auto base = std::make_shared<ConstantPriceModel>(std::vector<double>{0.4});
  SpikyPriceModel m(base, 0.05, 3.0, 0.5, 23);
  double max_seen = 0.0;
  for (std::int64_t t = 0; t < 2000; ++t) max_seen = std::max(max_seen, m.price(0, t));
  EXPECT_GT(max_seen, 0.4 * 2.5);
}

TEST(SpikyPrice, ZeroProbabilityMeansNoSpikes) {
  auto base = std::make_shared<ConstantPriceModel>(std::vector<double>{0.4});
  SpikyPriceModel m(base, 0.0, 3.0, 0.5, 29);
  for (std::int64_t t = 0; t < 500; ++t) EXPECT_DOUBLE_EQ(m.price(0, t), 0.4);
}

TEST(SpikyPrice, RejectsBadParams) {
  auto base = std::make_shared<ConstantPriceModel>(std::vector<double>{0.4});
  EXPECT_THROW(SpikyPriceModel(nullptr, 0.1, 2.0, 0.5, 1), ContractViolation);
  EXPECT_THROW(SpikyPriceModel(base, 1.5, 2.0, 0.5, 1), ContractViolation);
  EXPECT_THROW(SpikyPriceModel(base, 0.1, 0.5, 0.5, 1), ContractViolation);
  EXPECT_THROW(SpikyPriceModel(base, 0.1, 2.0, 1.0, 1), ContractViolation);
}

TEST(TablePrice, WrapsAround) {
  TablePriceModel m({{0.1, 0.2, 0.3}});
  EXPECT_DOUBLE_EQ(m.price(0, 0), 0.1);
  EXPECT_DOUBLE_EQ(m.price(0, 3), 0.1);
  EXPECT_DOUBLE_EQ(m.price(0, 5), 0.3);
}

TEST(TablePrice, RejectsBadSeries) {
  EXPECT_THROW(TablePriceModel(std::vector<std::vector<double>>{}), ContractViolation);
  EXPECT_THROW(TablePriceModel(std::vector<std::vector<double>>{{}}), ContractViolation);
  EXPECT_THROW(TablePriceModel(std::vector<std::vector<double>>{{0.0}}), ContractViolation);
}

TEST(PaperPriceModel, AveragesMatchTableOne) {
  auto m = make_paper_price_model(42);
  ASSERT_EQ(m->num_data_centers(), 3u);
  // Table I: 0.392 / 0.433 / 0.548.
  EXPECT_NEAR(average_price(*m, 0, 20000), 0.392, 0.012);
  EXPECT_NEAR(average_price(*m, 1, 20000), 0.433, 0.012);
  EXPECT_NEAR(average_price(*m, 2, 20000), 0.548, 0.015);
}

TEST(PaperPriceModel, OrderingUsuallyHolds) {
  auto m = make_paper_price_model(7);
  int dc3_highest = 0;
  const int horizon = 1000;
  for (std::int64_t t = 0; t < horizon; ++t) {
    if (m->price(2, t) > m->price(0, t)) ++dc3_highest;
  }
  EXPECT_GT(dc3_highest, horizon * 3 / 4);
}

TEST(AveragePrice, RequiresPositiveHorizon) {
  ConstantPriceModel m({0.4});
  EXPECT_THROW(average_price(m, 0, 0), ContractViolation);
}

}  // namespace
}  // namespace grefar
