#include "scenario/config_io.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "scenario/paper_scenario.h"

namespace grefar {
namespace {

const char* kMinimalConfig = R"({
  "server_types": [{"name": "std", "speed": 1.0, "busy_power": 0.9}],
  "data_centers": [{"name": "dc1", "installed": [10]},
                   {"name": "dc2", "installed": [20]}],
  "accounts": [{"name": "a", "gamma": 0.6}, {"name": "b", "gamma": 0.4}],
  "job_types": [{"name": "j0", "work": 2.0, "eligible_dcs": [0, 1], "account": 0},
                {"name": "j1", "work": 1.0, "eligible_dcs": [1], "account": 1}]
})";

TEST(ClusterConfigJson, ParsesMinimalConfig) {
  auto parsed = cluster_config_from_json(parse_json(kMinimalConfig).value());
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  const auto& config = parsed.value();
  EXPECT_EQ(config.num_server_types(), 1u);
  EXPECT_EQ(config.num_data_centers(), 2u);
  EXPECT_EQ(config.num_accounts(), 2u);
  EXPECT_EQ(config.num_job_types(), 2u);
  EXPECT_DOUBLE_EQ(config.server_types[0].busy_power, 0.9);
  EXPECT_EQ(config.data_centers[1].installed[0], 20);
  EXPECT_DOUBLE_EQ(config.accounts[0].gamma, 0.6);
  EXPECT_EQ(config.job_types[0].eligible_dcs, (std::vector<DataCenterId>{0, 1}));
  EXPECT_EQ(config.job_types[1].account, 1u);
}

TEST(ClusterConfigJson, RoundTripsPaperScenario) {
  auto original = make_paper_scenario(1).config;
  auto json = cluster_config_to_json(original);
  auto parsed = cluster_config_from_json(json);
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  const auto& config = parsed.value();
  ASSERT_EQ(config.num_job_types(), original.num_job_types());
  for (std::size_t j = 0; j < config.num_job_types(); ++j) {
    EXPECT_EQ(config.job_types[j].name, original.job_types[j].name);
    EXPECT_DOUBLE_EQ(config.job_types[j].work, original.job_types[j].work);
    EXPECT_EQ(config.job_types[j].eligible_dcs, original.job_types[j].eligible_dcs);
    EXPECT_EQ(config.job_types[j].account, original.job_types[j].account);
  }
  for (std::size_t i = 0; i < config.num_data_centers(); ++i) {
    EXPECT_EQ(config.data_centers[i].installed, original.data_centers[i].installed);
  }
}

TEST(ClusterConfigJson, RoundTripSurvivesTextForm) {
  auto original = make_paper_scenario(2).config;
  auto text = cluster_config_to_json(original).dump(2);
  auto parsed = cluster_config_from_json(parse_json(text).value());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().num_job_types(), original.num_job_types());
}

TEST(ClusterConfigJson, RejectsUnknownFields) {
  auto json = parse_json(kMinimalConfig).value();
  json.as_object()["typo_field"] = 1;
  auto parsed = cluster_config_from_json(json);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error().message.find("typo_field"), std::string::npos);
}

TEST(ClusterConfigJson, RejectsUnknownNestedFields) {
  auto json = parse_json(kMinimalConfig).value();
  json.as_object()["server_types"].as_array()[0].as_object()["speeed"] = 1.0;
  auto parsed = cluster_config_from_json(json);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error().message.find("speeed"), std::string::npos);
}

TEST(ClusterConfigJson, RejectsMissingFields) {
  auto json = parse_json(kMinimalConfig).value();
  json.as_object()["accounts"].as_array()[0].as_object().erase("gamma");
  EXPECT_FALSE(cluster_config_from_json(json).ok());
}

TEST(ClusterConfigJson, RejectsWrongTypes) {
  auto json = parse_json(kMinimalConfig).value();
  json.as_object()["server_types"].as_array()[0].as_object()["speed"] = "fast";
  EXPECT_FALSE(cluster_config_from_json(json).ok());
}

TEST(ClusterConfigJson, RejectsSemanticallyInvalidConfig) {
  auto json = parse_json(kMinimalConfig).value();
  // Job type referencing a nonexistent DC fails validation.
  json.as_object()["job_types"].as_array()[0].as_object()["eligible_dcs"] =
      JsonArray{JsonValue(7)};
  auto parsed = cluster_config_from_json(json);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error().message.find("invalid cluster config"), std::string::npos);
}

TEST(ClusterConfigJson, RejectsNonObject) {
  EXPECT_FALSE(cluster_config_from_json(JsonValue(JsonArray{})).ok());
  EXPECT_FALSE(cluster_config_from_json(JsonValue(1.0)).ok());
}

TEST(GreFarParamsJson, DefaultsApplyWhenOmitted) {
  auto parsed = grefar_params_from_json(parse_json("{}").value());
  ASSERT_TRUE(parsed.ok());
  GreFarParams defaults;
  EXPECT_DOUBLE_EQ(parsed.value().V, defaults.V);
  EXPECT_DOUBLE_EQ(parsed.value().beta, defaults.beta);
  EXPECT_EQ(parsed.value().clamp_to_queue, defaults.clamp_to_queue);
}

TEST(GreFarParamsJson, ParsesAllFields) {
  auto parsed = grefar_params_from_json(parse_json(
      R"({"V": 7.5, "beta": 100, "r_max": 50, "h_max": 60,
          "clamp_to_queue": false, "process_after_routing": false})")
                                            .value());
  ASSERT_TRUE(parsed.ok());
  EXPECT_DOUBLE_EQ(parsed.value().V, 7.5);
  EXPECT_DOUBLE_EQ(parsed.value().beta, 100.0);
  EXPECT_DOUBLE_EQ(parsed.value().r_max, 50.0);
  EXPECT_DOUBLE_EQ(parsed.value().h_max, 60.0);
  EXPECT_FALSE(parsed.value().clamp_to_queue);
  EXPECT_FALSE(parsed.value().process_after_routing);
}

TEST(GreFarParamsJson, RejectsNegativeAndUnknown) {
  EXPECT_FALSE(grefar_params_from_json(parse_json(R"({"V": -1})").value()).ok());
  EXPECT_FALSE(grefar_params_from_json(parse_json(R"({"vee": 1})").value()).ok());
}

TEST(GreFarParamsJson, RoundTrips) {
  GreFarParams params;
  params.V = 2.5;
  params.beta = 300.0;
  params.clamp_to_queue = false;
  auto parsed = grefar_params_from_json(grefar_params_to_json(params));
  ASSERT_TRUE(parsed.ok());
  EXPECT_DOUBLE_EQ(parsed.value().V, 2.5);
  EXPECT_DOUBLE_EQ(parsed.value().beta, 300.0);
  EXPECT_FALSE(parsed.value().clamp_to_queue);
}

TEST(ExperimentConfig, FileRoundTrip) {
  ExperimentConfig config;
  config.cluster = make_paper_scenario(3).config;
  config.grefar = paper_grefar_params(7.5, 100.0);
  std::string path = ::testing::TempDir() + "/grefar_experiment.json";
  ASSERT_TRUE(save_experiment_config(path, config).ok());
  auto loaded = load_experiment_config(path);
  ASSERT_TRUE(loaded.ok()) << loaded.error().message;
  EXPECT_EQ(loaded.value().cluster.num_job_types(), config.cluster.num_job_types());
  EXPECT_DOUBLE_EQ(loaded.value().grefar.V, 7.5);
  EXPECT_DOUBLE_EQ(loaded.value().grefar.beta, 100.0);
  std::remove(path.c_str());
}

TEST(ExperimentConfig, GrefarSectionIsOptional) {
  std::string doc = std::string("{\"cluster\": ") + kMinimalConfig + "}";
  auto parsed = experiment_config_from_json(parse_json(doc).value());
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  GreFarParams defaults;
  EXPECT_DOUBLE_EQ(parsed.value().grefar.V, defaults.V);
}

TEST(ExperimentConfig, MissingClusterFails) {
  EXPECT_FALSE(experiment_config_from_json(parse_json("{}").value()).ok());
}

TEST(ExperimentConfig, MissingFileFails) {
  EXPECT_FALSE(load_experiment_config("/no/such/config.json").ok());
}

// Every malformed-file case must come back as a clean Result error — never
// an exception, crash, or partially populated config.
class ExperimentConfigBadFile : public ::testing::Test {
 protected:
  std::string write_config(const std::string& name, const std::string& content) {
    std::string path = ::testing::TempDir() + "/" + name;
    std::FILE* f = std::fopen(path.c_str(), "wb");
    EXPECT_NE(f, nullptr);
    if (!content.empty()) {
      EXPECT_EQ(std::fwrite(content.data(), 1, content.size(), f), content.size());
    }
    std::fclose(f);
    paths_.push_back(path);
    return path;
  }

  void TearDown() override {
    for (const auto& p : paths_) std::remove(p.c_str());
  }

  std::vector<std::string> paths_;
};

TEST_F(ExperimentConfigBadFile, EmptyFileFails) {
  auto loaded = load_experiment_config(write_config("empty.json", ""));
  ASSERT_FALSE(loaded.ok());
  EXPECT_FALSE(loaded.error().message.empty());
}

TEST_F(ExperimentConfigBadFile, TruncatedDocumentFails) {
  // A valid document cut off mid-stream, as a partial download or an
  // interrupted save would leave it.
  std::string full = cluster_config_to_json(make_paper_scenario(4).config).dump(2);
  std::string doc = std::string("{\"cluster\": ") + full + "}";
  for (std::size_t cut : {doc.size() / 4, doc.size() / 2, doc.size() - 2}) {
    auto path = write_config("truncated.json", doc.substr(0, cut));
    auto loaded = load_experiment_config(path);
    ASSERT_FALSE(loaded.ok()) << "cut at " << cut << " parsed successfully";
    EXPECT_FALSE(loaded.error().message.empty());
  }
}

TEST_F(ExperimentConfigBadFile, BinaryGarbageFails) {
  std::string garbage = "\x00\xff\x13\x37PK\x03\x04 not json at all";
  garbage[0] = '\0';
  auto loaded = load_experiment_config(write_config("garbage.json", garbage));
  ASSERT_FALSE(loaded.ok());
}

TEST_F(ExperimentConfigBadFile, UnterminatedStringFails) {
  auto loaded = load_experiment_config(
      write_config("unterminated.json", R"({"cluster": {"server_types": ["oops})"));
  ASSERT_FALSE(loaded.ok());
}

TEST_F(ExperimentConfigBadFile, WrongRootTypeFails) {
  EXPECT_FALSE(load_experiment_config(write_config("array.json", "[1, 2, 3]")).ok());
  EXPECT_FALSE(load_experiment_config(write_config("scalar.json", "42")).ok());
}

TEST_F(ExperimentConfigBadFile, WrongSectionTypeFails) {
  auto loaded = load_experiment_config(
      write_config("bad_section.json", R"({"cluster": "not an object"})"));
  ASSERT_FALSE(loaded.ok());
  auto loaded2 = load_experiment_config(write_config(
      "bad_grefar.json",
      std::string("{\"cluster\": ") + kMinimalConfig + ", \"grefar\": [1]}"));
  ASSERT_FALSE(loaded2.ok());
}

TEST_F(ExperimentConfigBadFile, DirectoryPathFails) {
  EXPECT_FALSE(load_experiment_config(::testing::TempDir()).ok());
}

TEST(ExperimentConfig, LoadedConfigDrivesScheduler) {
  // The loaded config must be directly usable to build a scheduler.
  auto json = parse_json(std::string("{\"cluster\": ") + kMinimalConfig +
                         ", \"grefar\": {\"V\": 3.0}}")
                  .value();
  auto config = experiment_config_from_json(json);
  ASSERT_TRUE(config.ok());
  GreFarScheduler scheduler(config.value().cluster, config.value().grefar);
  EXPECT_EQ(scheduler.name(), "GreFar(V=3.00, beta=0.0)");
}

}  // namespace
}  // namespace grefar
