// The scale-out scenario at test-friendly sizes: the same factory the 1M
// smoke uses (bench/large_scale_smoke.cc), shrunk so every property runs in
// milliseconds. Determinism across intra-slot shard counts is the key
// invariant: the sparse per-slot path must produce bit-identical runs at
// any intra_slot_jobs (DESIGN.md §11-§12).
#include "scenario/large_scale.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "check/invariant_auditor.h"
#include "core/grefar.h"
#include "sim/engine.h"
#include "util/check.h"

namespace grefar {
namespace {

LargeScaleOptions small_options() {
  LargeScaleOptions o;
  o.branching = {4, 5, 10};  // 200 leaves
  o.account_level = 2;
  o.num_dcs = 2;
  o.draws_per_slot = 24;
  o.seed = 77;
  return o;
}

TEST(LargeScale, ScenarioShapesAndConsistency) {
  LargeScaleScenario s = make_large_scale_scenario(small_options());
  EXPECT_EQ(s.config->num_job_types(), 200u);
  EXPECT_EQ(s.config->num_accounts(), 200u);
  EXPECT_EQ(s.config->num_data_centers(), 2u);
  EXPECT_EQ(s.arrivals->num_job_types(), 200u);
  // One job type per leaf, account = its ancestor at the chosen level.
  for (std::size_t j = 0; j < 200; ++j) {
    EXPECT_EQ(s.config->job_types[j].account, s.tree.ancestor_of_leaf(j, 2));
  }
}

TEST(LargeScale, AccountsCanComeFromCoarserLevel) {
  LargeScaleOptions o = small_options();
  o.account_level = 1;  // teams, not users
  LargeScaleScenario s = make_large_scale_scenario(o);
  EXPECT_EQ(s.config->num_accounts(), 20u);
  for (std::size_t j = 0; j < s.config->num_job_types(); ++j) {
    EXPECT_LT(s.config->job_types[j].account, 20u);
  }
}

TEST(LargeScale, ZipfArrivalsAreDeterministicAndRandomAccess) {
  ZipfArrivals a(500, 40, 1.1, 9);
  ZipfArrivals b(500, 40, 1.1, 9);
  // Out-of-order access must replay byte-identically.
  auto a7 = a.arrivals(7);
  auto a3 = a.arrivals(3);
  EXPECT_EQ(b.arrivals(3), a3);
  EXPECT_EQ(b.arrivals(7), a7);
  std::int64_t total = 0;
  for (auto n : a7) total += n;
  EXPECT_EQ(total, 40);  // every draw lands on some type
}

TEST(LargeScale, ZipfSampleBoundaries) {
  ZipfArrivals a(5, 10, 1.0, 1);
  // u = 0 lands strictly inside the first (most popular) type: the inverse
  // CDF is "smallest j with cumulative_[j] > 0", which is type 0.
  EXPECT_EQ(a.sample(0.0), 0u);
  // u just below 1 must hit the last type, and the upper_bound-end decrement
  // must keep u == 1.0 (never produced by Rng::uniform, but reachable
  // through accumulated rounding in u * total) in range instead of walking
  // one past the end.
  EXPECT_EQ(a.sample(std::nextafter(1.0, 0.0)), 4u);
  EXPECT_EQ(a.sample(1.0), 4u);
  // Single-type degenerate case: everything maps to type 0.
  ZipfArrivals one(1, 3, 2.0, 1);
  EXPECT_EQ(one.sample(0.0), 0u);
  EXPECT_EQ(one.sample(1.0), 0u);
}

TEST(LargeScale, ZipfMaxArrivalsBoundsEverySlot) {
  ZipfArrivals a(64, 17, 1.1, 5);
  for (std::size_t j = 0; j < 64; ++j) {
    EXPECT_EQ(a.max_arrivals(j), 17);
  }
  for (std::int64_t t = 0; t < 50; ++t) {
    for (auto n : a.arrivals(t)) {
      EXPECT_LE(n, a.max_arrivals(0));
    }
  }
}

TEST(LargeScale, ZipfArrivalsIntoReplaysOutOfOrder) {
  ZipfArrivals a(100, 25, 1.3, 42);
  ZipfArrivals b(100, 25, 1.3, 42);
  // Interleaved, reversed, and repeated slot access through the reusing
  // _into API must all replay byte-identically (pure function of (seed, t)).
  std::vector<std::int64_t> out_a;
  std::vector<std::int64_t> out_b;
  const std::vector<std::int64_t> order_a = {9, 2, 5, 2, 0, 9};
  const std::vector<std::int64_t> order_b = {0, 9, 5, 9, 2, 2};
  std::vector<std::vector<std::int64_t>> seen_a(10);
  std::vector<std::vector<std::int64_t>> seen_b(10);
  for (std::int64_t t : order_a) {
    a.arrivals_into(t, out_a);
    seen_a[static_cast<std::size_t>(t)] = out_a;
  }
  for (std::int64_t t : order_b) {
    b.arrivals_into(t, out_b);
    seen_b[static_cast<std::size_t>(t)] = out_b;
  }
  for (std::int64_t t : {0, 2, 5, 9}) {
    EXPECT_EQ(seen_a[static_cast<std::size_t>(t)],
              seen_b[static_cast<std::size_t>(t)])
        << "slot " << t;
  }
}

TEST(LargeScale, ZipfHeadIsHeavierThanTail) {
  ZipfArrivals a(1000, 50, 1.2, 123);
  std::int64_t head = 0;
  std::int64_t tail = 0;
  for (std::int64_t t = 0; t < 200; ++t) {
    auto counts = a.arrivals(t);
    for (std::size_t j = 0; j < 10; ++j) head += counts[j];
    for (std::size_t j = 990; j < 1000; ++j) tail += counts[j];
  }
  EXPECT_GT(head, 10 * (tail + 1));
}

std::unique_ptr<SimulationEngine> make_engine(const LargeScaleScenario& s,
                                              GreFarParams params,
                                              PerSlotSolver solver,
                                              bool audit) {
  auto scheduler = std::make_shared<GreFarScheduler>(s.config, params, solver);
  auto engine = std::make_unique<SimulationEngine>(s.config, s.prices,
                                                   s.availability, s.arrivals,
                                                   std::move(scheduler));
  if (audit) {
    InvariantAuditorOptions opts;
    opts.throw_on_violation = true;
    opts.expect_queue_bounded_ask = true;
    opts.r_max = params.r_max;
    opts.h_max = params.h_max;
    engine->set_inspector(std::make_shared<InvariantAuditor>(s.config, opts));
  }
  return engine;
}

TEST(LargeScale, AuditedGreedyRunIsClean) {
  LargeScaleScenario s = make_large_scale_scenario(small_options());
  auto engine = make_engine(s, large_scale_grefar_params(2.0, 0.0),
                            PerSlotSolver::kGreedy, /*audit=*/true);
  engine->run(40);  // throw_on_violation aborts on any invariant break
  EXPECT_GT(engine->metrics().delay_stats.count(), 0);
}

TEST(LargeScale, AuditedPgdRunIsClean) {
  LargeScaleScenario s = make_large_scale_scenario(small_options());
  auto engine = make_engine(s, large_scale_grefar_params(2.0, 0.5),
                            PerSlotSolver::kProjectedGradient, /*audit=*/true);
  engine->run(40);
  EXPECT_GT(engine->metrics().delay_stats.count(), 0);
}

void expect_runs_bitwise_equal(const SimMetrics& a, const SimMetrics& b) {
  ASSERT_EQ(a.slots(), b.slots());
  for (std::size_t t = 0; t < a.slots(); ++t) {
    EXPECT_EQ(a.energy_cost.values()[t], b.energy_cost.values()[t]) << "slot " << t;
    EXPECT_EQ(a.fairness.values()[t], b.fairness.values()[t]) << "slot " << t;
    EXPECT_EQ(a.total_queue_jobs.values()[t], b.total_queue_jobs.values()[t])
        << "slot " << t;
  }
  for (std::size_t i = 0; i < a.num_data_centers(); ++i) {
    EXPECT_EQ(a.dc_routed_jobs[i].sum(), b.dc_routed_jobs[i].sum());
    EXPECT_EQ(a.dc_work[i].sum(), b.dc_work[i].sum());
  }
  ASSERT_EQ(a.account_work_total.size(), b.account_work_total.size());
  for (std::size_t m = 0; m < a.account_work_total.size(); ++m) {
    EXPECT_EQ(a.account_work_total[m], b.account_work_total[m]) << "account " << m;
  }
}

TEST(LargeScale, RunsAreBitIdenticalAcrossShardCounts) {
  LargeScaleScenario s = make_large_scale_scenario(small_options());
  GreFarParams base = large_scale_grefar_params(2.0, 0.5);
  base.intra_slot_min_vars = 1;  // engage the pool even at test sizes

  std::unique_ptr<SimulationEngine> reference;
  for (std::size_t jobs : {std::size_t{1}, std::size_t{4}, std::size_t{8}}) {
    GreFarParams p = base;
    p.intra_slot_jobs = jobs;
    auto engine = make_engine(s, p, PerSlotSolver::kProjectedGradient,
                              /*audit=*/false);
    engine->run(30);
    if (reference == nullptr) {
      reference = std::move(engine);
    } else {
      expect_runs_bitwise_equal(reference->metrics(), engine->metrics());
    }
  }
}

}  // namespace
}  // namespace grefar
