// The overloaded valued scenario end-to-end: audited (throw-mode) runs for
// every admission policy, the realized-value ordering the ablation bench
// gates on, and bit-identical replay — the PR-9 acceptance criteria in
// test form.
#include "scenario/admission_scenario.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/grefar.h"
#include "sim/engine.h"

namespace grefar {
namespace {

constexpr std::int64_t kHorizon = 120;

std::unique_ptr<SimulationEngine> run_policy(std::uint64_t seed,
                                             AdmissionPolicyKind kind) {
  PaperScenario s = make_admission_scenario(seed, kind);
  auto scheduler = std::make_shared<GreFarScheduler>(
      s.config, paper_grefar_params(7.5, 10.0),
      PerSlotSolver::kProjectedGradient);
  // kThrow: every slot is machine-checked, including the new admission
  // accounting, deadline-feasibility and value-conservation invariants.
  return run_scenario(s, std::move(scheduler), kHorizon, {}, AuditMode::kThrow);
}

TEST(AdmissionScenario, ScenarioShape) {
  PaperScenario s = make_admission_scenario(7);
  EXPECT_EQ(s.config.num_data_centers(), 2u);
  EXPECT_EQ(s.config.num_job_types(), 4u);
  EXPECT_TRUE(s.arrivals->has_valued_arrivals());
  EXPECT_EQ(s.admission, nullptr);
  // Every type decays and expires — the overload has to cost value.
  for (const auto& jt : s.config.job_types) {
    EXPECT_NE(jt.decay, DecayKind::kNone);
    EXPECT_NE(jt.deadline, kNoDeadline);
  }
  PaperScenario with_policy =
      make_admission_scenario(7, AdmissionPolicyKind::kThreshold);
  ASSERT_NE(with_policy.admission, nullptr);
  EXPECT_EQ(with_policy.admission->name(), "threshold");
}

TEST(AdmissionScenario, ArrivalTableIsDeterministicAndOverloaded) {
  PaperScenario a = make_admission_scenario(3);
  PaperScenario b = make_admission_scenario(3);
  std::vector<ArrivalBatch> batches_a;
  std::vector<ArrivalBatch> batches_b;
  double offered_work = 0.0;
  for (std::int64_t t = 0; t < kAdmissionScenarioSlots; ++t) {
    a.arrivals->valued_arrivals_into(t, batches_a);
    b.arrivals->valued_arrivals_into(t, batches_b);
    ASSERT_EQ(batches_a.size(), batches_b.size()) << "slot " << t;
    for (std::size_t k = 0; k < batches_a.size(); ++k) {
      EXPECT_EQ(batches_a[k].type, batches_b[k].type);
      EXPECT_EQ(batches_a[k].count, batches_b[k].count);
      EXPECT_EQ(batches_a[k].value, batches_b[k].value);
      EXPECT_EQ(batches_a[k].deadline, batches_b[k].deadline);
      offered_work += static_cast<double>(batches_a[k].count) *
                      a.config.job_types[batches_a[k].type].work;
    }
  }
  // Mean offered work must clearly exceed the 22.5/slot installed capacity.
  const double mean_work =
      offered_work / static_cast<double>(kAdmissionScenarioSlots);
  EXPECT_GT(mean_work, 1.4 * 22.5);
}

TEST(AdmissionScenario, AuditedRunsAreCleanForEveryPolicy) {
  for (AdmissionPolicyKind kind :
       {AdmissionPolicyKind::kAdmitAll, AdmissionPolicyKind::kThreshold,
        AdmissionPolicyKind::kRandomized}) {
    auto engine = run_policy(20260807, kind);  // throws on any violation
    EXPECT_GT(engine->metrics().offered_jobs.sum(), 0.0);
  }
}

TEST(AdmissionScenario, ThresholdPoliciesBeatAdmitAllOnRealizedValue) {
  auto admit_all = run_policy(20260807, AdmissionPolicyKind::kAdmitAll);
  auto threshold = run_policy(20260807, AdmissionPolicyKind::kThreshold);
  auto randomized = run_policy(20260807, AdmissionPolicyKind::kRandomized);
  const double base = admit_all->metrics().total_realized_value();
  EXPECT_GT(threshold->metrics().total_realized_value(), base);
  EXPECT_GT(randomized->metrics().total_realized_value(), base);
  // Admit-all never rejects; the thresholds must actually reject something.
  EXPECT_DOUBLE_EQ(admit_all->metrics().rejected_jobs.sum(), 0.0);
  EXPECT_GT(threshold->metrics().rejected_jobs.sum(), 0.0);
  EXPECT_GT(randomized->metrics().rejected_jobs.sum(), 0.0);
}

TEST(AdmissionScenario, RunsReplayBitIdentically) {
  auto a = run_policy(11, AdmissionPolicyKind::kRandomized);
  auto b = run_policy(11, AdmissionPolicyKind::kRandomized);
  const SimMetrics& ma = a->metrics();
  const SimMetrics& mb = b->metrics();
  ASSERT_EQ(ma.slots(), mb.slots());
  for (std::size_t t = 0; t < ma.slots(); ++t) {
    EXPECT_EQ(ma.realized_value.values()[t], mb.realized_value.values()[t]);
    EXPECT_EQ(ma.abandoned_jobs.values()[t], mb.abandoned_jobs.values()[t]);
    EXPECT_EQ(ma.rejected_jobs.values()[t], mb.rejected_jobs.values()[t]);
    EXPECT_EQ(ma.energy_cost.values()[t], mb.energy_cost.values()[t]);
  }
}

}  // namespace
}  // namespace grefar
