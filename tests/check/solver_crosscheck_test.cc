#include "check/solver_crosscheck.h"

#include <gtest/gtest.h>

#include <limits>

#include "util/rng.h"

namespace grefar {
namespace {

ClusterConfig small_config() {
  ClusterConfig c;
  c.server_types = {{"fast", 1.0, 1.0}, {"eff", 0.5, 0.3}};
  c.data_centers = {{"dc1", {4, 4}}, {"dc2", {2, 8}}};
  c.accounts = {{"a", 0.6}, {"b", 0.4}};
  c.job_types = {{"j0", 1.0, {0, 1}, 0}, {"j1", 2.0, {0}, 1}};
  return c;
}

SlotObservation random_obs(const ClusterConfig& c, Rng& rng) {
  SlotObservation obs;
  obs.slot = 0;
  for (std::size_t i = 0; i < c.num_data_centers(); ++i) {
    obs.prices.push_back(rng.uniform(0.2, 0.8));
  }
  obs.availability = Matrix<std::int64_t>(c.num_data_centers(), c.num_server_types());
  for (std::size_t i = 0; i < c.num_data_centers(); ++i) {
    for (std::size_t k = 0; k < c.num_server_types(); ++k) {
      obs.availability(i, k) = rng.uniform_int(1, c.data_centers[i].installed[k]);
    }
  }
  obs.central_queue.assign(c.num_job_types(), 0.0);
  obs.dc_queue = MatrixD(c.num_data_centers(), c.num_job_types());
  for (std::size_t i = 0; i < c.num_data_centers(); ++i) {
    for (std::size_t j = 0; j < c.num_job_types(); ++j) {
      if (c.job_types[j].eligible(i)) obs.dc_queue(i, j) = rng.uniform(0.0, 5.0);
    }
  }
  return obs;
}

GreFarParams params(double V, double beta) {
  GreFarParams p;
  p.V = V;
  p.beta = beta;
  p.h_max = 100.0;
  p.r_max = 100.0;
  return p;
}

TEST(SolverCrosscheck, ExactSolversPassOnRandomSmallInstances) {
  auto config = small_config();
  Rng rng(42);
  for (int trial = 0; trial < 8; ++trial) {
    auto obs = random_obs(config, rng);
    PerSlotProblem problem(config, obs, params(rng.uniform(0.5, 10.0), 0.0));
    for (PerSlotSolver solver : {PerSlotSolver::kGreedy, PerSlotSolver::kLp}) {
      SolverCrosscheckOptions options;
      options.points_per_dim = 5;
      options.objective_tol = 1e-4;
      auto violations = crosscheck_per_slot_solver(problem, solver, options);
      EXPECT_TRUE(violations.empty())
          << "trial " << trial << ": " << violations[0].to_string();
    }
  }
}

TEST(SolverCrosscheck, FirstOrderSolversPassWithinConvergenceTolerance) {
  auto config = small_config();
  Rng rng(7);
  for (int trial = 0; trial < 4; ++trial) {
    auto obs = random_obs(config, rng);
    PerSlotProblem problem(config, obs, params(2.0, 50.0));
    for (PerSlotSolver solver :
         {PerSlotSolver::kFrankWolfe, PerSlotSolver::kProjectedGradient}) {
      SolverCrosscheckOptions options;
      options.points_per_dim = 5;
      options.objective_tol = 1e-2;  // FW/PGD stop at their own tolerance
      auto violations = crosscheck_per_slot_solver(problem, solver, options);
      EXPECT_TRUE(violations.empty())
          << "trial " << trial << ": " << violations[0].to_string();
    }
  }
}

TEST(SolverCrosscheck, BrokenSolverIsCaughtWithDescriptiveRecord) {
  // A "solver" that refuses to process anything: with queued work and cheap
  // energy, the true optimum is negative, so doing nothing is suboptimal.
  auto config = small_config();
  Rng rng(3);
  auto obs = random_obs(config, rng);
  for (std::size_t i = 0; i < config.num_data_centers(); ++i) {
    for (std::size_t j = 0; j < config.num_job_types(); ++j) {
      if (config.job_types[j].eligible(i)) obs.dc_queue(i, j) = 30.0;
    }
  }
  PerSlotProblem problem(config, obs, params(0.1, 0.0));
  const std::vector<double> lazy(problem.num_vars(), 0.0);
  auto violations = crosscheck_solution(problem, lazy, "broken-lazy");
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].kind, InvariantKind::kSolverOptimality);
  const std::string text = violations[0].to_string();
  EXPECT_NE(text.find("broken-lazy"), std::string::npos) << text;
  EXPECT_NE(text.find("brute-force"), std::string::npos) << text;
}

TEST(SolverCrosscheck, InfeasibleSolutionIsCaught) {
  auto config = small_config();
  Rng rng(5);
  auto obs = random_obs(config, rng);
  PerSlotProblem problem(config, obs, params(1.0, 0.0));

  std::vector<double> outside(problem.num_vars(), 0.0);
  outside[0] = 1e9;  // far beyond ub and the capacity cap
  auto violations = crosscheck_solution(problem, outside, "broken-box");
  ASSERT_FALSE(violations.empty());
  EXPECT_EQ(violations[0].kind, InvariantKind::kCapacityChain);

  std::vector<double> wrong_size(problem.num_vars() + 1, 0.0);
  violations = crosscheck_solution(problem, wrong_size, "broken-shape");
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].kind, InvariantKind::kActionShape);

  std::vector<double> poisoned(problem.num_vars(), 0.0);
  poisoned[1] = std::numeric_limits<double>::quiet_NaN();
  violations = crosscheck_solution(problem, poisoned, "broken-nan");
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].kind, InvariantKind::kNonFinite);
}

}  // namespace
}  // namespace grefar
