#include "check/invariant_auditor.h"

#include <gtest/gtest.h>

#include <memory>

#include "baselines/baselines.h"
#include "core/grefar.h"
#include "scenario/paper_scenario.h"
#include "sim/engine.h"
#include "util/check.h"

namespace grefar {
namespace {

// -- end-to-end: the auditor must run clean over correct schedulers ----------

TEST(InvariantAuditor, CleanOverGreFarOnSmallScenario) {
  auto scenario = make_small_scenario(7);
  auto engine = make_scenario_engine(
      scenario,
      std::make_shared<GreFarScheduler>(scenario.config, paper_grefar_params(7.5, 0.0)),
      {}, AuditMode::kRecord);
  engine->run(300);
  const auto* auditor = dynamic_cast<const InvariantAuditor*>(engine->inspector());
  ASSERT_NE(auditor, nullptr);
  EXPECT_EQ(auditor->slots_audited(), 300);
  EXPECT_TRUE(auditor->ok()) << auditor->report();
  EXPECT_NE(auditor->report().find("clean"), std::string::npos);
}

TEST(InvariantAuditor, CleanOverGreFarWithFairnessOnPaperScenario) {
  auto scenario = make_paper_scenario(11);
  auto engine = make_scenario_engine(
      scenario,
      std::make_shared<GreFarScheduler>(scenario.config, paper_grefar_params(7.5, 100.0),
                                        PerSlotSolver::kProjectedGradient),
      {}, AuditMode::kRecord);
  engine->run(150);
  const auto* auditor = dynamic_cast<const InvariantAuditor*>(engine->inspector());
  ASSERT_NE(auditor, nullptr);
  EXPECT_TRUE(auditor->ok()) << auditor->report();
}

TEST(InvariantAuditor, CleanOverBaselinesAndLiteralDynamics) {
  auto scenario = make_small_scenario(13);
  EngineOptions literal;
  literal.serve_routed_same_slot = false;  // the literal eq. (13) ordering
  for (const auto& options : {EngineOptions{}, literal}) {
    auto engine = make_scenario_engine(
        scenario, std::make_shared<AlwaysScheduler>(scenario.config), options,
        AuditMode::kRecord);
    engine->run(200);
    const auto* auditor = dynamic_cast<const InvariantAuditor*>(engine->inspector());
    ASSERT_NE(auditor, nullptr);
    EXPECT_TRUE(auditor->ok()) << auditor->report();
  }
}

// -- unit: hand-built records with deliberate violations ---------------------

/// A 1-DC / 1-type / 1-account world where records are easy to fabricate.
ClusterConfig tiny_config() {
  ClusterConfig c;
  c.server_types = {{"srv", 1.0, 1.0}};
  c.data_centers = {{"dc", {10}}};
  c.accounts = {{"acct", 1.0}};
  c.job_types = {{"job", 2.0, {0}, 0}};
  return c;
}

/// Owns every buffer a SlotRecord points into; starts from a slot that obeys
/// all invariants (route 1 job, serve 2 work units = 1 job, 1 arrival).
struct RecordFixture {
  SlotObservation obs;
  SlotAction action;
  MatrixD routed{1, 1};
  MatrixD served{1, 1};
  std::vector<double> dc_capacity{10.0};
  std::vector<double> dc_energy{0.0};
  std::vector<double> account_work{2.0};
  std::vector<std::int64_t> arrivals{1};
  std::vector<double> central_after;
  MatrixD dc_after{1, 1};
  double fairness = 0.0;

  RecordFixture() {
    obs.slot = 0;
    obs.prices = {0.5};
    obs.availability = Matrix<std::int64_t>(1, 1);
    obs.availability(0, 0) = 10;
    obs.central_queue = {3.0};
    obs.dc_queue = MatrixD(1, 1);
    obs.dc_queue(0, 0) = 2.0;
    action.route = MatrixD(1, 1);
    action.process = MatrixD(1, 1);
    action.route(0, 0) = 1.0;
    action.process(0, 0) = 1.0;
    routed(0, 0) = 1.0;
    served(0, 0) = 2.0;  // one job's worth (d = 2)
    // energy: curve fills the single type, energy_per_work = 1, flat tariff.
    dc_energy[0] = 0.5 * 2.0;
    central_after = {3.0};        // max(3 - 1, 0) + 1
    dc_after(0, 0) = 2.0;         // max(2 + 1 - 2/2, 0)
    // fairness: r = 2, R = 10, gamma = 1 -> -(0.2 - 1)^2
    fairness = -(2.0 / 10.0 - 1.0) * (2.0 / 10.0 - 1.0);
  }

  SlotRecord record() const {
    SlotRecord r;
    r.slot = 0;
    r.obs = &obs;
    r.action = &action;
    r.routed = &routed;
    r.served_work = &served;
    r.dc_capacity = &dc_capacity;
    r.dc_energy_cost = &dc_energy;
    r.account_work = &account_work;
    r.fairness = fairness;
    r.arrivals = &arrivals;
    r.central_after = &central_after;
    r.dc_after = &dc_after;
    return r;
  }
};

TEST(InvariantAuditor, AcceptsAConsistentRecord) {
  InvariantAuditor auditor(tiny_config());
  RecordFixture fx;
  auditor.inspect(fx.record());
  EXPECT_TRUE(auditor.ok()) << auditor.report();
}

TEST(InvariantAuditor, CatchesOverRouting) {
  InvariantAuditor auditor(tiny_config());
  RecordFixture fx;
  fx.action.route(0, 0) = 5.0;
  fx.routed(0, 0) = 5.0;  // central queue only holds 3
  auditor.inspect(fx.record());
  ASSERT_FALSE(auditor.ok());
  EXPECT_EQ(auditor.violations()[0].kind, InvariantKind::kRoutingBound);
  EXPECT_NE(auditor.violations()[0].to_string().find("central queue"),
            std::string::npos);
}

TEST(InvariantAuditor, CatchesCapacityChainViolation) {
  InvariantAuditor auditor(tiny_config());
  RecordFixture fx;
  fx.served(0, 0) = 25.0;  // capacity is 10 servers x speed 1
  auditor.inspect(fx.record());
  ASSERT_FALSE(auditor.ok());
  bool found = false;
  for (const auto& v : auditor.violations()) {
    if (v.kind == InvariantKind::kCapacityChain) {
      found = true;
      EXPECT_EQ(v.dc, 0u);
      EXPECT_NEAR(v.observed, 25.0, 1e-9);
      EXPECT_NEAR(v.bound, 10.0, 1e-9);
    }
  }
  EXPECT_TRUE(found) << auditor.report();
}

TEST(InvariantAuditor, CatchesQueueRecurrenceDrift) {
  InvariantAuditor auditor(tiny_config());
  RecordFixture fx;
  fx.central_after[0] = 2.5;  // should be exactly 3.0
  auditor.inspect(fx.record());
  ASSERT_FALSE(auditor.ok());
  EXPECT_EQ(auditor.violations()[0].kind, InvariantKind::kQueueRecurrence);
}

TEST(InvariantAuditor, CatchesNegativeQueueAndEligibility) {
  auto config = tiny_config();
  config.data_centers.push_back({"dc2", {5}});
  config.job_types[0].eligible_dcs = {0};  // DC 1 is ineligible
  InvariantAuditor auditor(config);

  // Build a 2-DC record with work on the ineligible DC and a negative queue.
  RecordFixture fx;
  fx.obs.prices = {0.5, 0.5};
  fx.obs.availability = Matrix<std::int64_t>(2, 1);
  fx.obs.availability(0, 0) = 10;
  fx.obs.availability(1, 0) = 5;
  fx.obs.dc_queue = MatrixD(2, 1);
  fx.obs.dc_queue(0, 0) = 2.0;
  fx.action.route = MatrixD(2, 1);
  fx.action.process = MatrixD(2, 1);
  fx.action.process(1, 0) = 1.0;  // ineligible ask
  fx.routed = MatrixD(2, 1);
  fx.served = MatrixD(2, 1);
  fx.dc_capacity = {10.0, 5.0};
  fx.dc_energy = {0.0, 0.0};
  fx.account_work = {0.0};
  fx.arrivals = {0};
  fx.central_after = {-1.0};  // impossible
  fx.dc_after = MatrixD(2, 1);
  fx.dc_after(0, 0) = 2.0;
  fx.fairness = -1.0;  // r=0, R=15, gamma=1
  auditor.inspect(fx.record());
  ASSERT_FALSE(auditor.ok());
  bool eligibility = false, negative = false;
  for (const auto& v : auditor.violations()) {
    eligibility |= v.kind == InvariantKind::kEligibility;
    negative |= v.kind == InvariantKind::kNegativeQueue;
  }
  EXPECT_TRUE(eligibility) << auditor.report();
  EXPECT_TRUE(negative) << auditor.report();
}

TEST(InvariantAuditor, CatchesEnergyAndConservationDrift) {
  InvariantAuditor auditor(tiny_config());
  RecordFixture fx;
  fx.dc_energy[0] = 0.01;     // billed too little for 2 units of work
  fx.account_work[0] = 1.0;   // does not sum to the 2 units served
  auditor.inspect(fx.record());
  ASSERT_FALSE(auditor.ok());
  bool energy = false, conservation = false;
  for (const auto& v : auditor.violations()) {
    energy |= v.kind == InvariantKind::kEnergyAccounting;
    conservation |= v.kind == InvariantKind::kWorkConservation;
  }
  EXPECT_TRUE(energy) << auditor.report();
  EXPECT_TRUE(conservation) << auditor.report();
}

TEST(InvariantAuditor, ThrowModeAbortsWithDescriptiveMessage) {
  InvariantAuditorOptions options;
  options.throw_on_violation = true;
  InvariantAuditor auditor(tiny_config(), options);
  RecordFixture fx;
  fx.central_after[0] = 99.0;
  try {
    auditor.inspect(fx.record());
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& violation) {
    EXPECT_NE(std::string(violation.what()).find("queue-recurrence"),
              std::string::npos)
        << violation.what();
  }
}

TEST(InvariantAuditor, StrictModeCatchesOverAsk) {
  // The engine clamps an oversized ask, so only the strict contract checks
  // can see it: a scheduler that promises clamped decisions but asks for
  // more processing than is queued must be flagged.
  InvariantAuditorOptions options;
  options.expect_queue_bounded_ask = true;
  options.r_max = 2.0;
  InvariantAuditor auditor(tiny_config(), options);
  RecordFixture fx;
  fx.action.route(0, 0) = 3.0;    // > r_max = 2 (still within Q = 3)
  fx.action.process(0, 0) = 50.0;  // far beyond q + r = 3
  fx.routed(0, 0) = 3.0;
  fx.central_after[0] = 1.0;  // max(3 - 3, 0) + 1
  fx.dc_after(0, 0) = 4.0;    // max(2 + 3 - 1, 0)
  auditor.inspect(fx.record());
  ASSERT_FALSE(auditor.ok());
  std::size_t contract = 0;
  for (const auto& v : auditor.violations()) {
    if (v.kind == InvariantKind::kSchedulerContract) ++contract;
  }
  EXPECT_EQ(contract, 2u) << auditor.report();
}

TEST(InvariantAuditor, ResetClearsLedgerAndViolations) {
  InvariantAuditor auditor(tiny_config());
  RecordFixture fx;
  fx.central_after[0] = 99.0;
  auditor.inspect(fx.record());
  ASSERT_FALSE(auditor.ok());
  auditor.reset();
  EXPECT_TRUE(auditor.ok());
  EXPECT_EQ(auditor.slots_audited(), 0);
  auditor.inspect(RecordFixture().record());
  EXPECT_TRUE(auditor.ok()) << auditor.report();
}

// -- G. admission / deadline / value accounting (the PR-9 invariants) --------

TEST(InvariantAuditor, CatchesAdmittedExceedingOffered) {
  // Rejected work must never enter a queue: an arrivals vector larger than
  // the offered vector means the engine queued jobs the policy never saw.
  InvariantAuditor auditor(tiny_config());
  RecordFixture fx;
  std::vector<std::int64_t> offered{0};  // arrivals stay {1}
  SlotRecord rec = fx.record();
  rec.offered = &offered;
  rec.admission_active = true;
  auditor.inspect(rec);
  ASSERT_FALSE(auditor.ok());
  EXPECT_EQ(auditor.violations()[0].kind, InvariantKind::kAdmissionAccounting);
  EXPECT_NE(auditor.violations()[0].to_string().find(
                "admitted arrivals exceed offered arrivals"),
            std::string::npos);
}

TEST(InvariantAuditor, CatchesMisshapenOrNegativeOfferedVector) {
  InvariantAuditor auditor(tiny_config());
  RecordFixture fx;
  std::vector<std::int64_t> offered{1, 1};  // config has one job type
  SlotRecord rec = fx.record();
  rec.offered = &offered;
  auditor.inspect(rec);
  ASSERT_FALSE(auditor.ok());
  EXPECT_EQ(auditor.violations()[0].kind, InvariantKind::kAdmissionAccounting);

  InvariantAuditor auditor2(tiny_config());
  std::vector<std::int64_t> negative{-1};
  rec.offered = &negative;
  auditor2.inspect(rec);
  ASSERT_FALSE(auditor2.ok());
  EXPECT_EQ(auditor2.violations()[0].kind,
            InvariantKind::kAdmissionAccounting);
  EXPECT_NE(auditor2.violations()[0].to_string().find(
                "negative offered arrival count"),
            std::string::npos);
}

TEST(InvariantAuditor, CatchesDeadlineViolations) {
  // Invariant G: a job past its deadline must be abandoned at the start of
  // the slot, never processed — any nonzero count is a violation.
  InvariantAuditor auditor(tiny_config());
  RecordFixture fx;
  SlotRecord rec = fx.record();
  rec.deadline_violations = 2;
  auditor.inspect(rec);
  ASSERT_FALSE(auditor.ok());
  EXPECT_EQ(auditor.violations()[0].kind,
            InvariantKind::kDeadlineFeasibility);
  EXPECT_NE(auditor.violations()[0].to_string().find(
                "completed after their deadline"),
            std::string::npos);
}

TEST(InvariantAuditor, CatchesValueLedgerDrift) {
  // Slot 0 initializes the ledger; slot 1 claims admitted value that never
  // shows up queued, realized, or abandoned — conservation must flag it.
  InvariantAuditor auditor(tiny_config());
  RecordFixture fx;
  auditor.inspect(fx.record());
  ASSERT_TRUE(auditor.ok()) << auditor.report();
  SlotRecord rec = fx.record();
  rec.admitted_value = 5.0;  // queued_value_after stays 0: 5 units vanished
  auditor.inspect(rec);
  ASSERT_FALSE(auditor.ok());
  EXPECT_EQ(auditor.violations()[0].kind, InvariantKind::kValueConservation);
  EXPECT_NE(auditor.violations()[0].to_string().find(
                "queued value != previous + admitted - completed - abandoned"),
            std::string::npos);
}

TEST(InvariantAuditor, CatchesNonFiniteAndNegativeValueScalars) {
  InvariantAuditor auditor(tiny_config());
  RecordFixture fx;
  SlotRecord rec = fx.record();
  rec.realized_value = std::numeric_limits<double>::quiet_NaN();
  auditor.inspect(rec);
  ASSERT_FALSE(auditor.ok());
  EXPECT_EQ(auditor.violations()[0].kind, InvariantKind::kValueConservation);

  InvariantAuditor auditor2(tiny_config());
  SlotRecord rec2 = fx.record();
  rec2.abandoned_value = -1.0;
  auditor2.inspect(rec2);
  ASSERT_FALSE(auditor2.ok());
  EXPECT_EQ(auditor2.violations()[0].kind,
            InvariantKind::kValueConservation);
  EXPECT_NE(auditor2.violations()[0].to_string().find(
                "negative value/abandonment scalar"),
            std::string::npos);
}

TEST(InvariantAuditor, MaxViolationsCapsRecordingNotCounting) {
  InvariantAuditorOptions options;
  options.max_violations = 2;
  InvariantAuditor auditor(tiny_config(), options);
  RecordFixture fx;
  fx.central_after[0] = 99.0;
  for (int t = 0; t < 5; ++t) auditor.inspect(fx.record());
  EXPECT_EQ(auditor.violations().size(), 2u);
  EXPECT_GE(auditor.total_violations(), 5u);
  EXPECT_NE(auditor.report().find("more"), std::string::npos);
}

}  // namespace
}  // namespace grefar
