// Allocation-regression guard for the simulation hot path.
//
// PR "per-slot hot-path allocation elimination" brought the steady-state
// cost of one engine step down to a handful of allocations (amortized
// vector growth in the lazily extended price/arrival caches); this test
// locks those numbers in. It overrides global operator new with a counting
// hook, runs the paper scenario past its warm-up transient, measures
// allocations per slot over a long window, and fails if the measurement
// exceeds the checked-in baseline (BENCH_baseline.json, "allocs_per_slot")
// by more than 10%. The run is deterministic per seed, so the measured
// value is bit-stable — a failure means a real hot-path regression.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>

#include "core/grefar.h"
#include "scenario/paper_scenario.h"
#include "sweep/sweep_engine.h"
#include "util/json.h"

namespace {

std::atomic<bool> g_counting{false};
std::atomic<std::uint64_t> g_allocations{0};

}  // namespace

// Throwing forms only: the default nothrow/aligned forms forward here, and
// nothing in the measured path uses over-aligned types.
void* operator new(std::size_t size) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace grefar {
namespace {

constexpr std::int64_t kWarmupSlots = 300;
constexpr std::int64_t kMeasuredSlots = 500;

/// Steady-state allocations per engine slot for a GreFar run on the paper
/// scenario. The auditor is explicitly off: it exists for Debug/CI
/// correctness runs and pays for its bookkeeping; this test guards the
/// bare Release hot path.
double measure_allocs_per_slot(PerSlotSolver solver, double beta) {
  PaperScenario scenario = make_paper_scenario(/*seed=*/42);
  auto scheduler = std::make_shared<GreFarScheduler>(
      scenario.config, paper_grefar_params(/*V=*/7.5, beta), solver);
  auto engine =
      make_scenario_engine(scenario, std::move(scheduler), {}, AuditMode::kOff);
  engine->run(kWarmupSlots);
  g_allocations.store(0, std::memory_order_relaxed);
  g_counting.store(true, std::memory_order_relaxed);
  engine->run(kMeasuredSlots);
  g_counting.store(false, std::memory_order_relaxed);
  return static_cast<double>(g_allocations.load(std::memory_order_relaxed)) /
         static_cast<double>(kMeasuredSlots);
}

double baseline(const char* key) {
  auto doc = parse_json_file(GREFAR_BENCH_BASELINE);
  if (!doc.ok()) {
    ADD_FAILURE() << "cannot read " << GREFAR_BENCH_BASELINE << ": "
                  << doc.error().message;
    return 0.0;
  }
  const JsonValue* section = doc.value().find("allocs_per_slot");
  if (section == nullptr) {
    ADD_FAILURE() << "BENCH_baseline.json has no allocs_per_slot section";
    return 0.0;
  }
  const JsonValue* entry = section->find(key);
  if (entry == nullptr || !entry->is_number()) {
    ADD_FAILURE() << "allocs_per_slot has no numeric entry '" << key << "'";
    return 0.0;
  }
  return entry->as_number();
}

TEST(AllocRegression, GreedySteadyStateStaysWithinBaseline) {
  const double limit = baseline("grefar_greedy") * 1.1;
  ASSERT_GT(limit, 0.0);
  const double measured = measure_allocs_per_slot(PerSlotSolver::kGreedy, 0.0);
  EXPECT_LE(measured, limit)
      << "greedy hot path now allocates " << measured
      << " times per slot (baseline allows " << limit
      << "); find the new allocation or re-baseline BENCH_baseline.json";
}

TEST(AllocRegression, PgdSteadyStateStaysWithinBaseline) {
  const double limit = baseline("grefar_pgd") * 1.1;
  ASSERT_GT(limit, 0.0);
  const double measured =
      measure_allocs_per_slot(PerSlotSolver::kProjectedGradient, 100.0);
  EXPECT_LE(measured, limit)
      << "PGD hot path now allocates " << measured
      << " times per slot (baseline allows " << limit
      << "); find the new allocation or re-baseline BENCH_baseline.json";
}

TEST(AllocRegression, LpSteadyStateStaysWithinBaseline) {
  const double limit = baseline("grefar_lp") * 1.1;
  ASSERT_GT(limit, 0.0);
  const double measured = measure_allocs_per_slot(PerSlotSolver::kLp, 0.0);
  EXPECT_LE(measured, limit)
      << "LP hot path now allocates " << measured
      << " times per slot (baseline allows " << limit
      << "); find the new allocation or re-baseline BENCH_baseline.json";
}

/// Steady-state allocations per sweep leg on a reused SweepEngine: run the
/// spec once to grow every arena and materialize the scenario, then measure
/// a second identical run. What remains per leg is plan resolution (a few
/// strings/closures) plus whatever the engine-reuse path still allocates —
/// the quantity DESIGN.md §16's allocation-free-steady-state claim is about.
double measure_allocs_per_leg() {
  constexpr std::int64_t kHorizon = 32;
  constexpr std::size_t kLegs = 32;
  sweep::SweepSpec spec;
  spec.axes = {{.name = "V", .values = std::vector<double>(kLegs, 0.0)}};
  for (std::size_t i = 0; i < kLegs; ++i) {
    spec.axes[0].values[i] = 0.5 + static_cast<double>(i);
  }
  spec.horizon = kHorizon;
  spec.scenario = [](const sweep::SweepPoint&) { return make_paper_scenario(42); };
  spec.plan = [](const sweep::SweepPoint& p) {
    sweep::LegPlan plan;
    plan.scenario_key = "paper/seed=42";
    plan.grefar = sweep::GreFarLegSpec{paper_grefar_params(p.value(0), 0.0), {}};
    return plan;
  };
  sweep::SweepOptions options;
  options.jobs = 1;
  options.audit = AuditMode::kOff;
  sweep::SweepEngine engine(options);
  auto noop = [](std::size_t, SimulationEngine&) {};
  engine.run(spec, noop);  // warm-up: grows arenas, fills the artifact cache
  g_allocations.store(0, std::memory_order_relaxed);
  g_counting.store(true, std::memory_order_relaxed);
  engine.run(spec, noop);
  g_counting.store(false, std::memory_order_relaxed);
  return static_cast<double>(g_allocations.load(std::memory_order_relaxed)) /
         static_cast<double>(kLegs);
}

TEST(AllocRegression, SweepSteadyStateAllocsPerLegStaysWithinBaseline) {
  auto doc = parse_json_file(GREFAR_BENCH_BASELINE);
  ASSERT_TRUE(doc.ok());
  const JsonValue* section = doc.value().find("allocs_per_leg");
  ASSERT_NE(section, nullptr)
      << "BENCH_baseline.json has no allocs_per_leg section";
  const JsonValue* entry = section->find("sweep_grefar_greedy");
  ASSERT_TRUE(entry != nullptr && entry->is_number());
  const double limit = entry->as_number() * 1.1;
  ASSERT_GT(limit, 0.0);
  const double measured = measure_allocs_per_leg();
  EXPECT_LE(measured, limit)
      << "sweep steady state now allocates " << measured
      << " times per leg (baseline allows " << limit
      << "); find the new allocation or re-baseline BENCH_baseline.json";
}

}  // namespace
}  // namespace grefar
