#include "sim/scalar_engine.h"

#include <gtest/gtest.h>

#include <functional>

#include "price/price_model.h"
#include "util/check.h"

namespace grefar {
namespace {

class LambdaScheduler final : public Scheduler {
 public:
  using Fn = std::function<SlotAction(const SlotObservation&)>;
  explicit LambdaScheduler(Fn fn) : fn_(std::move(fn)) {}

  SlotAction decide(const SlotObservation& obs) override { return fn_(obs); }
  std::string name() const override { return "lambda"; }

 private:
  Fn fn_;
};

ClusterConfig simple_config() {
  ClusterConfig c;
  c.server_types = {{"std", 1.0, 1.0}};
  c.data_centers = {{"dc1", {10}}, {"dc2", {10}}};
  c.accounts = {{"acct", 1.0}};
  c.job_types = {{"job", 1.0, {0, 1}, 0}};
  return c;
}

SlotAction idle_action(const SlotObservation& obs) {
  SlotAction a;
  a.route = MatrixD(obs.dc_queue.rows(), obs.dc_queue.cols());
  a.process = MatrixD(obs.dc_queue.rows(), obs.dc_queue.cols());
  return a;
}

std::unique_ptr<ScalarQueueSimulator> make_sim(LambdaScheduler::Fn fn,
                                               std::vector<std::int64_t> arrivals = {2},
                                               ClusterConfig config = simple_config()) {
  auto prices = std::make_shared<ConstantPriceModel>(
      std::vector<double>(config.num_data_centers(), 0.5));
  auto avail = std::make_shared<FullAvailability>(config.data_centers);
  auto arr = std::make_shared<ConstantArrivals>(std::move(arrivals));
  auto sched = std::make_shared<LambdaScheduler>(std::move(fn));
  return std::make_unique<ScalarQueueSimulator>(std::move(config), prices, avail, arr,
                                                std::move(sched));
}

TEST(ScalarEngine, LiteralCentralQueueUpdate) {
  // Q(t+1) = max[Q - sum_i r, 0] + a: routing 5 from an empty queue is legal
  // ("null jobs") and queues stay at the arrival level.
  auto sim = make_sim([](const SlotObservation& obs) {
    auto a = idle_action(obs);
    a.route(0, 0) = 5.0;
    return a;
  });
  sim->step();
  EXPECT_DOUBLE_EQ(sim->central_queue(0), 2.0);  // max[0-5,0]+2
  // But the DC queue received the full (phantom) routing per eq. (13).
  EXPECT_DOUBLE_EQ(sim->dc_queue(0, 0), 5.0);
  sim->step();
  EXPECT_DOUBLE_EQ(sim->central_queue(0), 2.0);  // max[2-5,0]+2
  EXPECT_DOUBLE_EQ(sim->dc_queue(0, 0), 10.0);
}

TEST(ScalarEngine, LiteralDcQueueUpdate) {
  // q(t+1) = max[q - h, 0] + r with h applied to the pre-routing queue.
  auto sim = make_sim([](const SlotObservation& obs) {
    auto a = idle_action(obs);
    a.route(0, 0) = 2.0;
    a.process(0, 0) = 3.0;
    return a;
  });
  sim->step();
  EXPECT_DOUBLE_EQ(sim->dc_queue(0, 0), 2.0);  // max[0-3,0]+2
  sim->step();
  EXPECT_DOUBLE_EQ(sim->dc_queue(0, 0), 2.0);  // max[2-3,0]+2
}

TEST(ScalarEngine, EnergyChargedOnDecidedWork) {
  auto sim = make_sim([](const SlotObservation& obs) {
    auto a = idle_action(obs);
    a.process(0, 0) = 4.0;  // 4 jobs of work 1 on speed-1/power-1 servers
    return a;
  });
  sim->step();
  // price 0.5 * energy 4 = 2, even though the queue was empty (phantom work
  // costs energy under the literal dynamics).
  EXPECT_DOUBLE_EQ(sim->energy_cost().at(0), 2.0);
}

TEST(ScalarEngine, CapacityViolationIsContractViolation) {
  auto sim = make_sim([](const SlotObservation& obs) {
    auto a = idle_action(obs);
    a.process(0, 0) = 11.0;  // capacity is 10
    return a;
  });
  EXPECT_THROW(sim->step(), ContractViolation);
}

TEST(ScalarEngine, MaxQueueObservedTracksPeak) {
  auto sim = make_sim(idle_action);
  sim->run(5);
  EXPECT_DOUBLE_EQ(sim->max_queue_observed(), 10.0);  // 2 per slot, 5 slots
}

TEST(ScalarEngine, FairnessRecorded) {
  auto sim = make_sim([](const SlotObservation& obs) {
    auto a = idle_action(obs);
    a.process(0, 0) = 20.0 * 1.0;  // exactly gamma * R... R=20, gamma=1
    return a;
  });
  // 20 > capacity 10 of dc1 -> violates (11); use both DCs instead.
  auto sim2 = make_sim([](const SlotObservation& obs) {
    auto a = idle_action(obs);
    a.process(0, 0) = 10.0;
    a.process(1, 0) = 10.0;
    return a;
  });
  sim2->step();
  EXPECT_DOUBLE_EQ(sim2->fairness().at(0), 0.0);  // perfect share
  (void)sim;
}

TEST(ScalarEngine, AverageCostCombinesEnergyAndFairness) {
  auto sim = make_sim(idle_action);
  sim->run(4);
  // Idle: energy 0, fairness -(0/20 - 1)^2 = -1 every slot.
  EXPECT_DOUBLE_EQ(sim->average_cost(0.0), 0.0);
  EXPECT_DOUBLE_EQ(sim->average_cost(2.0), 2.0);
}

TEST(ScalarEngine, SlotCounterAdvances) {
  auto sim = make_sim(idle_action);
  EXPECT_EQ(sim->slot(), 0);
  sim->run(3);
  EXPECT_EQ(sim->slot(), 3);
}

}  // namespace
}  // namespace grefar
