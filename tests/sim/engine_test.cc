#include "sim/engine.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/grefar.h"
#include "price/price_model.h"
#include "scenario/paper_scenario.h"
#include "util/check.h"

namespace grefar {
namespace {

/// Test scheduler driven by a lambda.
class LambdaScheduler final : public Scheduler {
 public:
  using Fn = std::function<SlotAction(const SlotObservation&)>;
  explicit LambdaScheduler(Fn fn) : fn_(std::move(fn)) {}

  SlotAction decide(const SlotObservation& obs) override { return fn_(obs); }
  std::string name() const override { return "lambda"; }

 private:
  Fn fn_;
};

ClusterConfig simple_config() {
  ClusterConfig c;
  c.server_types = {{"std", 1.0, 1.0}};
  c.data_centers = {{"dc1", {10}}, {"dc2", {10}}};
  c.accounts = {{"acct", 1.0}};
  c.job_types = {{"job", 1.0, {0, 1}, 0}};
  return c;
}

SlotAction idle_action(const SlotObservation& obs) {
  SlotAction a;
  a.route = MatrixD(obs.dc_queue.rows(), obs.dc_queue.cols());
  a.process = MatrixD(obs.dc_queue.rows(), obs.dc_queue.cols());
  return a;
}

std::unique_ptr<SimulationEngine> make_engine(
    LambdaScheduler::Fn fn, std::vector<std::int64_t> arrivals = {2},
    ClusterConfig config = simple_config(), EngineOptions options = {}) {
  auto prices = std::make_shared<ConstantPriceModel>(
      std::vector<double>(config.num_data_centers(), 0.5));
  auto avail = std::make_shared<FullAvailability>(config.data_centers);
  auto arr = std::make_shared<ConstantArrivals>(std::move(arrivals));
  auto sched = std::make_shared<LambdaScheduler>(std::move(fn));
  return std::make_unique<SimulationEngine>(std::move(config), prices, avail, arr,
                                            sched, options);
}

TEST(Engine, ArrivalsEnterCentralQueue) {
  auto engine = make_engine(idle_action);
  engine->step();
  EXPECT_DOUBLE_EQ(engine->central_queue_length(0), 2.0);
  engine->step();
  EXPECT_DOUBLE_EQ(engine->central_queue_length(0), 4.0);
  EXPECT_EQ(engine->slot(), 2);
}

TEST(Engine, ObservationReflectsState) {
  auto engine = make_engine(idle_action);
  engine->step();
  auto obs = engine->observe();
  EXPECT_EQ(obs.slot, 1);
  EXPECT_DOUBLE_EQ(obs.central_queue[0], 2.0);
  EXPECT_DOUBLE_EQ(obs.prices[0], 0.5);
  EXPECT_EQ(obs.availability(0, 0), 10);
  EXPECT_DOUBLE_EQ(obs.dc_queue(0, 0), 0.0);
}

TEST(Engine, RoutingMovesJobsClampedByQueue) {
  auto engine = make_engine([](const SlotObservation& obs) {
    auto a = idle_action(obs);
    a.route(0, 0) = 100.0;  // want far more than queued
    return a;
  });
  engine->step();  // queue empty: nothing to route
  EXPECT_DOUBLE_EQ(engine->dc_queue_length(0, 0), 0.0);
  engine->step();  // 2 queued jobs move
  EXPECT_DOUBLE_EQ(engine->dc_queue_length(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(engine->central_queue_length(0), 2.0);  // fresh arrivals
}

TEST(Engine, RoutingSplitsAcrossDataCenters) {
  auto engine = make_engine([](const SlotObservation& obs) {
    auto a = idle_action(obs);
    a.route(0, 0) = 1.0;
    a.route(1, 0) = 1.0;
    return a;
  });
  engine->run(2);
  EXPECT_DOUBLE_EQ(engine->dc_queue_length(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(engine->dc_queue_length(1, 0), 1.0);
}

TEST(Engine, FractionalRoutingAskIsContractViolation) {
  // Integer-routing contract (sim/scheduler.h): a scheduler emitting an
  // unrounded relaxation value must fail loudly, not be silently floored.
  auto engine = make_engine([](const SlotObservation& obs) {
    auto a = idle_action(obs);
    a.route(0, 0) = 2.4;
    return a;
  });
  EXPECT_THROW(engine->step(), ContractViolation);
}

TEST(Engine, NearIntegralRoutingAskIsAccepted) {
  // Floating-point noise up to 1e-6 rounds to the nearest integer.
  auto engine = make_engine([](const SlotObservation& obs) {
    auto a = idle_action(obs);
    a.route(0, 0) = 2.0 + 5e-7;
    return a;
  });
  engine->step();  // queue empty
  engine->step();  // routes the 2 queued jobs
  EXPECT_DOUBLE_EQ(engine->dc_queue_length(0, 0), 2.0);
}

TEST(Engine, IneligibleRoutingIsContractViolation) {
  ClusterConfig config = simple_config();
  config.job_types[0].eligible_dcs = {0};  // DC2 not allowed
  auto engine = make_engine(
      [](const SlotObservation& obs) {
        auto a = idle_action(obs);
        a.route(1, 0) = 1.0;
        return a;
      },
      {2}, config);
  EXPECT_THROW(engine->step(), ContractViolation);
}

TEST(Engine, IneligibleProcessingIsContractViolation) {
  ClusterConfig config = simple_config();
  config.job_types[0].eligible_dcs = {0};
  auto engine = make_engine(
      [](const SlotObservation& obs) {
        auto a = idle_action(obs);
        a.process(1, 0) = 1.0;
        return a;
      },
      {2}, config);
  EXPECT_THROW(engine->step(), ContractViolation);
}

TEST(Engine, ServiceCompletesJobsAndChargesEnergy) {
  auto engine = make_engine([](const SlotObservation& obs) {
    auto a = idle_action(obs);
    a.route(0, 0) = obs.central_queue[0];
    a.process(0, 0) = obs.dc_queue(0, 0) + obs.central_queue[0];
    return a;
  });
  engine->run(3);
  const auto& m = engine->metrics();
  // Slot 0: nothing to do. Slots 1, 2: 2 jobs routed+served each.
  EXPECT_DOUBLE_EQ(m.energy_cost.at(0), 0.0);
  // speed 1, power 1, price 0.5 => energy cost = 0.5 * work.
  EXPECT_DOUBLE_EQ(m.energy_cost.at(1), 1.0);
  EXPECT_DOUBLE_EQ(m.energy_cost.at(2), 1.0);
  EXPECT_DOUBLE_EQ(m.dc_completions[0].at(1), 2.0);
  // Jobs arrived at slot 0, completed at slot 1: delay 1 each.
  EXPECT_DOUBLE_EQ(m.dc_delay_sum[0].at(1), 2.0);
}

TEST(Engine, LiteralOrderingDelaysServiceOneSlot) {
  EngineOptions options;
  options.serve_routed_same_slot = false;
  auto engine = make_engine(
      [](const SlotObservation& obs) {
        auto a = idle_action(obs);
        a.route(0, 0) = obs.central_queue[0];
        a.process(0, 0) = 100.0;  // serve whatever is in the DC queue
        return a;
      },
      {2}, simple_config(), options);
  engine->run(3);
  const auto& m = engine->metrics();
  // Jobs routed at slot 1 are only servable at slot 2 => delay 2.
  EXPECT_DOUBLE_EQ(m.dc_completions[0].at(1), 0.0);
  EXPECT_DOUBLE_EQ(m.dc_completions[0].at(2), 2.0);
  EXPECT_DOUBLE_EQ(m.dc_delay_sum[0].at(2), 4.0);
}

TEST(Engine, ProcessingIsClampedToCapacity) {
  // Capacity is 10 work/slot; demand 30 queued jobs of work 1.
  auto engine = make_engine(
      [](const SlotObservation& obs) {
        auto a = idle_action(obs);
        a.route(0, 0) = obs.central_queue[0];
        a.process(0, 0) = obs.dc_queue(0, 0) + obs.central_queue[0];
        return a;
      },
      {30});
  engine->run(2);
  const auto& m = engine->metrics();
  EXPECT_DOUBLE_EQ(m.dc_work[0].at(1), 10.0);  // capped
  EXPECT_DOUBLE_EQ(engine->dc_queue_length(0, 0), 20.0);
}

TEST(Engine, FairnessRecordedAgainstTotalResource) {
  auto engine = make_engine([](const SlotObservation& obs) {
    auto a = idle_action(obs);
    a.route(0, 0) = obs.central_queue[0];
    a.process(0, 0) = 100.0;
    return a;
  });
  engine->run(2);
  const auto& m = engine->metrics();
  // Slot 1: 2 units of work for the only account, R = 20; gamma = 1.
  double expected = -(2.0 / 20.0 - 1.0) * (2.0 / 20.0 - 1.0);
  EXPECT_NEAR(m.fairness.at(1), expected, 1e-12);
}

TEST(Engine, MetricsSeriesHaveOneEntryPerSlot) {
  auto engine = make_engine(idle_action);
  engine->run(7);
  const auto& m = engine->metrics();
  EXPECT_EQ(m.slots(), 7u);
  EXPECT_EQ(m.energy_cost.size(), 7u);
  EXPECT_EQ(m.fairness.size(), 7u);
  EXPECT_EQ(m.arrived_jobs.size(), 7u);
  EXPECT_EQ(m.dc_work[0].size(), 7u);
  EXPECT_EQ(m.dc_price[1].size(), 7u);
  EXPECT_EQ(m.account_work[0].size(), 7u);
  EXPECT_DOUBLE_EQ(m.arrived_jobs.at(3), 2.0);
  EXPECT_DOUBLE_EQ(m.arrived_work.at(3), 2.0);
}

TEST(Engine, QueueTelemetryTracksBacklog) {
  auto engine = make_engine(idle_action);
  engine->run(5);
  const auto& m = engine->metrics();
  // After service at slot t (no service here), queues hold 2*t jobs.
  EXPECT_DOUBLE_EQ(m.total_queue_jobs.at(4), 8.0);  // before slot-4 arrivals
  EXPECT_DOUBLE_EQ(m.max_queue_jobs.at(4), 8.0);
}

TEST(Engine, RoutedJobsMetricCountsActualMoves) {
  auto engine = make_engine([](const SlotObservation& obs) {
    auto a = idle_action(obs);
    a.route(0, 0) = 100.0;  // desire far more than available
    return a;
  });
  engine->run(3);
  const auto& m = engine->metrics();
  EXPECT_DOUBLE_EQ(m.dc_routed_jobs[0].at(0), 0.0);  // nothing queued yet
  EXPECT_DOUBLE_EQ(m.dc_routed_jobs[0].at(1), 2.0);  // the slot-0 arrivals
  EXPECT_DOUBLE_EQ(m.dc_routed_jobs[0].at(2), 2.0);
  EXPECT_DOUBLE_EQ(m.dc_routed_jobs[1].at(1), 0.0);
}

TEST(Engine, RoutedJobsKeepArrivalSlotAndGainDcEntrySlot) {
  // Route at slot 1, serve at slot 3: total delay 3, dc delay 2.
  int slot_counter = 0;
  auto engine = make_engine([&](const SlotObservation& obs) {
    auto a = idle_action(obs);
    if (obs.slot == 1) a.route(0, 0) = 10.0;
    if (obs.slot == 3) a.process(0, 0) = 10.0;
    ++slot_counter;
    return a;
  });
  engine->run(4);
  const auto& m = engine->metrics();
  EXPECT_DOUBLE_EQ(m.dc_completions[0].at(3), 2.0);
  EXPECT_DOUBLE_EQ(m.dc_delay_sum[0].at(3), 6.0);  // 2 jobs x (3 - 0)
}

TEST(Engine, PartialServiceLeavesFractionalQueue) {
  ClusterConfig config = simple_config();
  config.job_types[0].work = 4.0;
  auto engine = make_engine(
      [](const SlotObservation& obs) {
        auto a = idle_action(obs);
        a.route(0, 0) = obs.central_queue[0];
        a.process(0, 0) = 0.5;  // half a job per slot
        return a;
      },
      {1}, config);
  engine->run(2);
  // One job routed and half-served at slot 1: queue length 1.5 jobs total
  // (0.5 remaining of the first + the freshly arrived slot-1 job still
  // central). DC queue alone holds 0.5.
  EXPECT_NEAR(engine->dc_queue_length(0, 0), 0.5, 1e-9);
}

TEST(Engine, WrongActionShapeIsContractViolation) {
  auto engine = make_engine([](const SlotObservation&) {
    SlotAction a;
    a.route = MatrixD(1, 1);
    a.process = MatrixD(1, 1);
    return a;
  });
  EXPECT_THROW(engine->step(), ContractViolation);
}

TEST(Engine, MismatchedModelsAreRejected) {
  auto config = simple_config();
  auto prices = std::make_shared<ConstantPriceModel>(std::vector<double>{0.5});  // 1 DC
  auto avail = std::make_shared<FullAvailability>(config.data_centers);
  auto arr = std::make_shared<ConstantArrivals>(std::vector<std::int64_t>{1});
  auto sched = std::make_shared<LambdaScheduler>(idle_action);
  EXPECT_THROW(SimulationEngine(config, prices, avail, arr, sched),
               ContractViolation);
}

TEST(Engine, NegativeDecisionsAreContractViolations) {
  auto engine = make_engine([](const SlotObservation& obs) {
    auto a = idle_action(obs);
    a.process(0, 0) = -1.0;
    return a;
  });
  EXPECT_THROW(engine->step(), ContractViolation);
}

// The sweep-arena contract: after reset() a used engine is observably a
// fresh engine — a full GreFar run on the reset engine must be bitwise
// identical to the same run on a newly constructed one.
TEST(Engine, ResetMatchesFreshEngineBitwise) {
  constexpr std::int64_t kSlots = 50;
  auto scenario_a = make_paper_scenario(/*seed=*/42);
  auto scenario_b = make_paper_scenario(/*seed=*/43);
  auto make_grefar = [](const PaperScenario& s) {
    return std::make_shared<GreFarScheduler>(
        s.config, paper_grefar_params(/*V=*/7.5, /*beta=*/100.0));
  };

  // Dirty an engine on scenario A, then reset it onto scenario B.
  auto reused = make_scenario_engine(scenario_a, make_grefar(scenario_a));
  reused->run(kSlots);
  auto config_b = std::make_shared<const ClusterConfig>(scenario_b.config);
  reused->reset(config_b, scenario_b.prices, scenario_b.availability,
                scenario_b.arrivals, make_grefar(scenario_b));
  reused->run(kSlots);

  // Reference: a brand-new engine on scenario B (fresh models — the lazy
  // caches are deterministic per seed, so regenerating is equivalent).
  auto scenario_b2 = make_paper_scenario(/*seed=*/43);
  auto fresh = make_scenario_engine(scenario_b2, make_grefar(scenario_b2));
  fresh->run(kSlots);

  const auto& mr = reused->metrics();
  const auto& mf = fresh->metrics();
  ASSERT_EQ(mr.slots(), mf.slots());
  for (std::size_t t = 0; t < mr.slots(); ++t) {
    EXPECT_EQ(mr.energy_cost.at(t), mf.energy_cost.at(t)) << "slot " << t;
    EXPECT_EQ(mr.fairness.at(t), mf.fairness.at(t)) << "slot " << t;
    EXPECT_EQ(mr.arrived_jobs.at(t), mf.arrived_jobs.at(t)) << "slot " << t;
  }
  EXPECT_EQ(mr.account_work_total, mf.account_work_total);
  EXPECT_EQ(mr.mean_delay(), mf.mean_delay());
  EXPECT_EQ(mr.delay_p50(), mf.delay_p50());
  EXPECT_EQ(mr.delay_p99(), mf.delay_p99());
  EXPECT_EQ(mr.delay_stats.max(), mf.delay_stats.max());
}

// Re-running after a reset to the *same* scenario (same config pointer, the
// skip-revalidation fast path) reproduces the original run.
TEST(Engine, ResetToSameScenarioReplaysRun) {
  constexpr std::int64_t kSlots = 40;
  auto scenario = make_paper_scenario(/*seed=*/42);
  auto config = std::make_shared<const ClusterConfig>(scenario.config);
  auto make_grefar = [&] {
    return std::make_shared<GreFarScheduler>(config,
                                             paper_grefar_params(7.5, 0.0));
  };
  SimulationEngine engine(config, scenario.prices, scenario.availability,
                          scenario.arrivals, make_grefar());
  engine.run(kSlots);
  const std::vector<double> first = engine.metrics().energy_cost.values();
  engine.reset(config, scenario.prices, scenario.availability, scenario.arrivals,
               make_grefar());
  engine.run(kSlots);
  EXPECT_EQ(engine.metrics().energy_cost.values(), first);
}

}  // namespace
}  // namespace grefar
