// Engine-level value/deadline/admission semantics (the PR-9 job-model
// extension): deadline expiry ahead of observation, decayed value
// realization on completion, admission accounting, and the sentinel
// resolution of per-batch trace annotations — all under the throw-mode
// InvariantAuditor so the value ledger and deadline-feasibility invariants
// (invariant G) are machine-checked on every slot.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <memory>
#include <vector>

#include "check/invariant_auditor.h"
#include "core/admission.h"
#include "price/price_model.h"
#include "sim/engine.h"
#include "util/check.h"

namespace grefar {
namespace {

class LambdaScheduler final : public Scheduler {
 public:
  using Fn = std::function<SlotAction(const SlotObservation&)>;
  explicit LambdaScheduler(Fn fn) : fn_(std::move(fn)) {}
  SlotAction decide(const SlotObservation& obs) override { return fn_(obs); }
  std::string name() const override { return "lambda"; }

 private:
  Fn fn_;
};

SlotAction idle_action(const SlotObservation& obs) {
  SlotAction a;
  a.route = MatrixD(obs.dc_queue.rows(), obs.dc_queue.cols());
  a.process = MatrixD(obs.dc_queue.rows(), obs.dc_queue.cols());
  return a;
}

SlotAction eager_action(const SlotObservation& obs) {
  // Route whatever is queued to DC 0 and ask for ample service; the engine
  // clamps both to the queue / capacity.
  SlotAction a = idle_action(obs);
  for (std::size_t j = 0; j < obs.dc_queue.cols(); ++j) {
    a.route(0, j) = obs.central_queue[j];
    a.process(0, j) = 100.0;
  }
  return a;
}

ClusterConfig valued_config(DecayKind decay, double decay_rate,
                            std::int64_t deadline, double value = 2.0) {
  ClusterConfig c;
  c.server_types = {{"std", 1.0, 1.0}};
  c.data_centers = {{"dc1", {10}}, {"dc2", {10}}};
  c.accounts = {{"acct", 1.0}};
  JobType jt;
  jt.name = "job";
  jt.work = 1.0;
  jt.eligible_dcs = {0, 1};
  jt.account = 0;
  jt.value = value;
  jt.decay = decay;
  jt.decay_rate = decay_rate;
  jt.deadline = deadline;
  c.job_types = {jt};
  return c;
}

std::unique_ptr<SimulationEngine> make_engine(
    LambdaScheduler::Fn fn, ClusterConfig config,
    std::shared_ptr<const ArrivalProcess> arrivals,
    std::shared_ptr<AdmissionPolicy> admission = nullptr) {
  auto prices = std::make_shared<ConstantPriceModel>(
      std::vector<double>(config.num_data_centers(), 0.5));
  auto avail = std::make_shared<FullAvailability>(config.data_centers);
  auto sched = std::make_shared<LambdaScheduler>(std::move(fn));
  auto engine = std::make_unique<SimulationEngine>(
      config, prices, avail, std::move(arrivals), sched, EngineOptions{});
  if (admission != nullptr) engine->set_admission_policy(std::move(admission));
  InvariantAuditorOptions opts;
  opts.throw_on_violation = true;
  engine->set_inspector(std::make_shared<InvariantAuditor>(config, opts));
  return engine;
}

TEST(DeadlineEngine, IdleRunAbandonsExpiredJobs) {
  // Deadline 2: a job arriving during slot t may complete through slot t+2
  // and is abandoned at the start of slot t+3. Idle scheduler: every job
  // expires, none is served, and the audited value ledger still balances.
  auto engine = make_engine(idle_action,
                            valued_config(DecayKind::kNone, 0.0, /*deadline=*/2),
                            std::make_shared<ConstantArrivals>(
                                std::vector<std::int64_t>{2}));
  engine->run(6);
  const SimMetrics& m = engine->metrics();
  // Slots 3, 4, 5 each abandon the 2 jobs admitted three slots earlier.
  EXPECT_DOUBLE_EQ(m.abandoned_jobs.sum(), 6.0);
  EXPECT_DOUBLE_EQ(m.abandoned_work.sum(), 6.0);
  EXPECT_DOUBLE_EQ(m.total_abandoned_value(), 12.0);  // base value 2 each
  EXPECT_DOUBLE_EQ(m.total_realized_value(), 0.0);
  // 12 admitted - 6 abandoned still queued.
  EXPECT_DOUBLE_EQ(engine->central_queue_length(0), 6.0);
}

TEST(DeadlineEngine, CompletionsRealizeDecayedValue) {
  // Linear decay 0.1/slot, value 2: jobs arrive during slot t, are routed
  // and fully served during slot t+1 (delay 1) -> factor 0.9, realized 1.8.
  auto engine = make_engine(
      eager_action, valued_config(DecayKind::kLinear, 0.1, kNoDeadline),
      std::make_shared<ConstantArrivals>(std::vector<std::int64_t>{2}));
  engine->run(4);
  const SimMetrics& m = engine->metrics();
  // Arrivals of slots 0..2 complete at slots 1..3: 6 completions.
  EXPECT_NEAR(m.total_realized_value(), 6 * 1.8, 1e-9);
  EXPECT_NEAR(m.decay_loss.sum(), 6 * 0.2, 1e-9);
  EXPECT_DOUBLE_EQ(m.abandoned_jobs.sum(), 0.0);
}

TEST(DeadlineEngine, ServedWithinDeadlineNothingAbandons) {
  auto engine = make_engine(
      eager_action, valued_config(DecayKind::kExponential, 0.5, /*deadline=*/1),
      std::make_shared<ConstantArrivals>(std::vector<std::int64_t>{2}));
  engine->run(5);  // audited: no deadline violations, ledger balances
  const SimMetrics& m = engine->metrics();
  EXPECT_DOUBLE_EQ(m.abandoned_jobs.sum(), 0.0);
  // Every completion at delay 1: value 2 * exp(-0.5).
  EXPECT_NEAR(m.total_realized_value(), 8 * 2 * std::exp(-0.5), 1e-9);
}

TEST(DeadlineEngine, AdmissionPolicyRejectsAtTheDoor) {
  // Type value density = 2.0 / 1.0; theta = 3 rejects every batch. Rejected
  // work must never enter any queue (audited).
  auto engine = make_engine(
      idle_action, valued_config(DecayKind::kNone, 0.0, kNoDeadline),
      std::make_shared<ConstantArrivals>(std::vector<std::int64_t>{3}),
      std::make_shared<ThresholdAdmission>(3.0));
  engine->run(4);
  const SimMetrics& m = engine->metrics();
  EXPECT_DOUBLE_EQ(m.offered_jobs.sum(), 12.0);
  EXPECT_DOUBLE_EQ(m.arrived_jobs.sum(), 0.0);
  EXPECT_DOUBLE_EQ(m.rejected_jobs.sum(), 12.0);
  EXPECT_DOUBLE_EQ(m.total_rejected_value(), 24.0);
  EXPECT_DOUBLE_EQ(engine->central_queue_length(0), 0.0);
}

TEST(DeadlineEngine, BatchAnnotationsOverrideTypeDefaults) {
  // Two batches per slot: one defers to the type (value 2), one overrides
  // value and deadline. A density threshold of 1.5 then splits them.
  std::vector<std::vector<ArrivalBatch>> slots(1);
  ArrivalBatch deferred;
  deferred.type = 0;
  deferred.count = 1;  // resolved value 2 -> density 2: admitted
  ArrivalBatch overridden;
  overridden.type = 0;
  overridden.count = 2;
  overridden.value = 1.0;  // density 1: rejected
  overridden.deadline = 3;
  slots[0] = {deferred, overridden};
  auto engine = make_engine(
      eager_action, valued_config(DecayKind::kNone, 0.0, kNoDeadline),
      std::make_shared<ValuedTableArrivals>(std::move(slots), 1),
      std::make_shared<ThresholdAdmission>(1.5));
  engine->run(3);  // the 1-slot table wraps: same batches every slot
  const SimMetrics& m = engine->metrics();
  EXPECT_DOUBLE_EQ(m.offered_jobs.sum(), 9.0);
  EXPECT_DOUBLE_EQ(m.arrived_jobs.sum(), 3.0);
  EXPECT_DOUBLE_EQ(m.rejected_jobs.sum(), 6.0);
  EXPECT_DOUBLE_EQ(m.total_rejected_value(), 6.0);   // 6 jobs x value 1
  EXPECT_DOUBLE_EQ(m.admitted_value.sum(), 6.0);     // 3 jobs x value 2
}

TEST(DeadlineEngine, MalformedBatchAnnotationsAreContractViolations) {
  std::vector<std::vector<ArrivalBatch>> slots(1);
  ArrivalBatch bad;
  bad.type = 0;
  bad.count = 1;
  bad.value = -1.0;
  slots[0] = {bad};
  auto engine = make_engine(
      idle_action, valued_config(DecayKind::kNone, 0.0, kNoDeadline),
      std::make_shared<ValuedTableArrivals>(std::move(slots), 1));
  EXPECT_THROW(engine->step(), ContractViolation);

  std::vector<std::vector<ArrivalBatch>> slots2(1);
  ArrivalBatch bad_deadline;
  bad_deadline.type = 0;
  bad_deadline.count = 1;
  bad_deadline.deadline = -7;  // neither kNoDeadline nor >= 0
  slots2[0] = {bad_deadline};
  auto engine2 = make_engine(
      idle_action, valued_config(DecayKind::kNone, 0.0, kNoDeadline),
      std::make_shared<ValuedTableArrivals>(std::move(slots2), 1));
  EXPECT_THROW(engine2->step(), ContractViolation);
}

}  // namespace
}  // namespace grefar
