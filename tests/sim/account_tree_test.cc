#include "sim/account_tree.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "util/check.h"

namespace grefar {
namespace {

TEST(AccountTree, BalancedShapes) {
  AccountTree t = AccountTree::balanced({3, 4, 5}, 7);
  EXPECT_EQ(t.num_levels(), 3u);
  EXPECT_EQ(t.num_nodes(0), 3u);
  EXPECT_EQ(t.num_nodes(1), 12u);
  EXPECT_EQ(t.num_nodes(2), 60u);
  EXPECT_EQ(t.num_leaves(), 60u);
}

TEST(AccountTree, WeightsSumDownToParents) {
  AccountTree t = AccountTree::balanced({4, 3, 6}, 42, 2.5);
  for (std::size_t level = 1; level < t.num_levels(); ++level) {
    std::vector<double> child_sum(t.num_nodes(level - 1), 0.0);
    for (std::size_t i = 0; i < t.num_nodes(level); ++i) {
      child_sum[t.parent(level, i)] += t.weight(level, i);
    }
    for (std::size_t p = 0; p < child_sum.size(); ++p) {
      EXPECT_NEAR(child_sum[p], t.weight(level - 1, p), 1e-12)
          << "level " << level << " parent " << p;
    }
  }
}

TEST(AccountTree, GammaAtEveryLevelSumsToOne) {
  AccountTree t = AccountTree::balanced({5, 7, 4}, 3);
  for (std::size_t level = 0; level < t.num_levels(); ++level) {
    std::vector<double> g = t.gamma_at_level(level);
    double sum = std::accumulate(g.begin(), g.end(), 0.0);
    EXPECT_NEAR(sum, 1.0, 1e-9) << "level " << level;
    for (double v : g) EXPECT_GE(v, 0.0);
  }
}

TEST(AccountTree, AncestorChainIsConsistent) {
  AccountTree t = AccountTree::balanced({3, 4, 5}, 11);
  for (std::size_t leaf = 0; leaf < t.num_leaves(); ++leaf) {
    EXPECT_EQ(t.ancestor_of_leaf(leaf, 2), leaf);
    const std::uint32_t team = t.ancestor_of_leaf(leaf, 1);
    EXPECT_EQ(team, t.parent(2, leaf));
    EXPECT_EQ(t.ancestor_of_leaf(leaf, 0), t.parent(1, team));
  }
}

TEST(AccountTree, AggregateToLevelSumsSubtrees) {
  AccountTree t = AccountTree::balanced({2, 3, 4}, 5);
  std::vector<double> leaf_values(t.num_leaves());
  for (std::size_t i = 0; i < leaf_values.size(); ++i) {
    leaf_values[i] = static_cast<double>(i + 1);
  }
  std::vector<double> by_team;
  t.aggregate_to_level(leaf_values, 1, by_team);
  ASSERT_EQ(by_team.size(), t.num_nodes(1));
  double from_teams = std::accumulate(by_team.begin(), by_team.end(), 0.0);
  double from_leaves = std::accumulate(leaf_values.begin(), leaf_values.end(), 0.0);
  EXPECT_DOUBLE_EQ(from_teams, from_leaves);

  std::vector<double> by_org;
  t.aggregate_to_level(leaf_values, 0, by_org);
  ASSERT_EQ(by_org.size(), 2u);
  // Spot-check one subtree by brute force.
  double org0 = 0.0;
  for (std::size_t leaf = 0; leaf < t.num_leaves(); ++leaf) {
    if (t.ancestor_of_leaf(leaf, 0) == 0) org0 += leaf_values[leaf];
  }
  EXPECT_DOUBLE_EQ(by_org[0], org0);
}

TEST(AccountTree, AggregatedGammasRefineUpward) {
  // The level-l shares aggregated to level l-1 must reproduce the
  // level-(l-1) shares: that is what makes solving fairness at any level
  // consistent with the levels above.
  AccountTree t = AccountTree::balanced({4, 5, 6}, 99, 3.0);
  for (std::size_t level = t.num_levels() - 1; level > 0; --level) {
    std::vector<double> fine = t.gamma_at_level(t.num_levels() - 1);
    std::vector<double> folded;
    t.aggregate_to_level(fine, level - 1, folded);
    std::vector<double> coarse = t.gamma_at_level(level - 1);
    ASSERT_EQ(folded.size(), coarse.size());
    for (std::size_t i = 0; i < coarse.size(); ++i) {
      EXPECT_NEAR(folded[i], coarse[i], 1e-12);
    }
  }
}

TEST(AccountTree, AccountsAtLevelFeedClusterConfig) {
  AccountTree t = AccountTree::balanced({2, 2, 3}, 1);
  std::vector<Account> accounts = t.accounts_at_level(1);
  ASSERT_EQ(accounts.size(), 4u);
  for (std::size_t i = 0; i < accounts.size(); ++i) {
    EXPECT_EQ(accounts[i].name, "L1:" + std::to_string(i));
    EXPECT_DOUBLE_EQ(accounts[i].gamma, t.gamma_at_level(1)[i]);
  }
}

TEST(AccountTree, DeterministicPerSeed) {
  AccountTree a = AccountTree::balanced({3, 3, 3}, 123);
  AccountTree b = AccountTree::balanced({3, 3, 3}, 123);
  AccountTree c = AccountTree::balanced({3, 3, 3}, 124);
  bool any_differs = false;
  for (std::size_t i = 0; i < a.num_leaves(); ++i) {
    EXPECT_EQ(a.weight(2, i), b.weight(2, i));
    if (a.weight(2, i) != c.weight(2, i)) any_differs = true;
  }
  EXPECT_TRUE(any_differs);
}

TEST(AccountTree, RejectsMalformedTrees) {
  EXPECT_THROW(AccountTree::balanced({}, 1), ContractViolation);
  EXPECT_THROW(AccountTree::balanced({3, 0}, 1), ContractViolation);
  // Children summing to the wrong parent weight.
  EXPECT_THROW(AccountTree({{}, {0, 0}}, {{1.0}, {0.4, 0.7}}), ContractViolation);
  // Bad parent index.
  EXPECT_THROW(AccountTree({{}, {2}}, {{1.0}, {1.0}}), ContractViolation);
}

}  // namespace
}  // namespace grefar
