#include "sim/availability.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace grefar {
namespace {

std::vector<DataCenterConfig> two_dcs() {
  return {{"a", {10, 20}}, {"b", {5, 0}}};
}

TEST(FullAvailability, AlwaysEverything) {
  FullAvailability m(two_dcs());
  EXPECT_EQ(m.num_data_centers(), 2u);
  EXPECT_EQ(m.num_server_types(), 2u);
  for (std::int64_t t : {0, 100, 99999}) {
    auto a = m.availability(t);
    EXPECT_EQ(a(0, 0), 10);
    EXPECT_EQ(a(0, 1), 20);
    EXPECT_EQ(a(1, 0), 5);
    EXPECT_EQ(a(1, 1), 0);
  }
}

TEST(FullAvailability, RejectsNegativeSlot) {
  FullAvailability m(two_dcs());
  EXPECT_THROW(m.availability(-1), ContractViolation);
}

TEST(RandomFraction, StaysWithinBounds) {
  RandomFractionAvailability m(two_dcs(), 0.6, 42);
  for (std::int64_t t = 0; t < 500; ++t) {
    auto a = m.availability(t);
    EXPECT_GE(a(0, 0), static_cast<std::int64_t>(0.6 * 10) - 1);
    EXPECT_LE(a(0, 0), 10);
    EXPECT_GE(a(0, 1), static_cast<std::int64_t>(0.6 * 20) - 1);
    EXPECT_LE(a(0, 1), 20);
    EXPECT_EQ(a(1, 1), 0);  // nothing installed stays nothing
  }
}

TEST(RandomFraction, DeterministicPerSeed) {
  RandomFractionAvailability a(two_dcs(), 0.5, 7);
  RandomFractionAvailability b(two_dcs(), 0.5, 7);
  for (std::int64_t t = 0; t < 100; ++t) {
    EXPECT_TRUE(a.availability(t) == b.availability(t));
  }
}

TEST(RandomFraction, RandomAccessMatchesSequential) {
  RandomFractionAvailability a(two_dcs(), 0.5, 9);
  RandomFractionAvailability b(two_dcs(), 0.5, 9);
  auto late = a.availability(200);
  for (std::int64_t t = 0; t < 200; ++t) b.availability(t);
  EXPECT_TRUE(late == b.availability(200));
}

TEST(RandomFraction, ActuallyVaries) {
  RandomFractionAvailability m(two_dcs(), 0.5, 11);
  bool varied = false;
  auto first = m.availability(0);
  for (std::int64_t t = 1; t < 50 && !varied; ++t) {
    varied = !(m.availability(t) == first);
  }
  EXPECT_TRUE(varied);
}

TEST(RandomFraction, FractionOneIsFullAvailability) {
  RandomFractionAvailability m(two_dcs(), 1.0, 13);
  auto a = m.availability(0);
  EXPECT_EQ(a(0, 0), 10);
  EXPECT_EQ(a(0, 1), 20);
}

TEST(RandomFraction, RejectsBadFraction) {
  EXPECT_THROW(RandomFractionAvailability(two_dcs(), -0.1, 1), ContractViolation);
  EXPECT_THROW(RandomFractionAvailability(two_dcs(), 1.1, 1), ContractViolation);
}

TEST(Availability, RejectsRaggedFleets) {
  std::vector<DataCenterConfig> ragged{{"a", {1, 2}}, {"b", {3}}};
  EXPECT_THROW(FullAvailability{ragged}, ContractViolation);
}

Matrix<std::int64_t> snapshot(std::int64_t a, std::int64_t b) {
  Matrix<std::int64_t> m(1, 2);
  m(0, 0) = a;
  m(0, 1) = b;
  return m;
}

TEST(TableAvailability, ReplaysAndWraps) {
  TableAvailability m({snapshot(5, 3), snapshot(2, 0)});
  EXPECT_EQ(m.num_data_centers(), 1u);
  EXPECT_EQ(m.num_server_types(), 2u);
  EXPECT_EQ(m.availability(0)(0, 0), 5);
  EXPECT_EQ(m.availability(1)(0, 1), 0);
  EXPECT_EQ(m.availability(2)(0, 0), 5);  // wrap
  EXPECT_EQ(m.availability(7)(0, 0), 2);
}

TEST(TableAvailability, RejectsBadTables) {
  EXPECT_THROW(TableAvailability({}), ContractViolation);
  Matrix<std::int64_t> wrong_shape(2, 2);
  EXPECT_THROW(TableAvailability({snapshot(1, 1), wrong_shape}), ContractViolation);
  Matrix<std::int64_t> negative(1, 2);
  negative(0, 0) = -1;
  EXPECT_THROW(TableAvailability({negative}), ContractViolation);
  TableAvailability ok({snapshot(1, 1)});
  EXPECT_THROW(ok.availability(-1), ContractViolation);
}

TEST(TableAvailability, DrivesFromMaterializedRandomModel) {
  // Record a random model's availability, replay it, get identical values.
  std::vector<DataCenterConfig> dcs{{"a", {10, 20}}, {"b", {5, 0}}};
  RandomFractionAvailability original(dcs, 0.5, 77);
  std::vector<Matrix<std::int64_t>> recorded;
  for (std::int64_t t = 0; t < 50; ++t) recorded.push_back(original.availability(t));
  TableAvailability replayed(recorded);
  for (std::int64_t t = 0; t < 50; ++t) {
    EXPECT_TRUE(replayed.availability(t) == original.availability(t));
  }
}

}  // namespace
}  // namespace grefar
