#include "sim/queue.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace grefar {
namespace {

Job make_job(std::uint64_t id, double remaining, std::int64_t arrival = 0,
             std::int64_t dc_entry = 0) {
  Job j;
  j.id = id;
  j.type = 0;
  j.arrival_slot = arrival;
  j.dc_entry_slot = dc_entry;
  j.remaining = remaining;
  return j;
}

TEST(FifoJobQueue, StartsEmpty) {
  FifoJobQueue q(2.0);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.job_count(), 0u);
  EXPECT_DOUBLE_EQ(q.length_jobs(), 0.0);
  EXPECT_DOUBLE_EQ(q.remaining_work(), 0.0);
}

TEST(FifoJobQueue, LengthTracksFractionalJobs) {
  FifoJobQueue q(2.0);
  q.push(make_job(1, 2.0));
  q.push(make_job(2, 2.0));
  EXPECT_DOUBLE_EQ(q.length_jobs(), 2.0);
  double consumed = 0.0;
  q.serve(1.0, 0, &consumed);  // half a job
  EXPECT_DOUBLE_EQ(consumed, 1.0);
  EXPECT_DOUBLE_EQ(q.length_jobs(), 1.5);
  EXPECT_EQ(q.job_count(), 2u);  // partially-served head still present
}

TEST(FifoJobQueue, ServeCompletesInFifoOrder) {
  FifoJobQueue q(1.0);
  q.push(make_job(1, 1.0));
  q.push(make_job(2, 1.0));
  q.push(make_job(3, 1.0));
  double consumed = 0.0;
  auto completions = q.serve(2.0, 5, &consumed);
  ASSERT_EQ(completions.size(), 2u);
  EXPECT_EQ(completions[0].job.id, 1u);
  EXPECT_EQ(completions[1].job.id, 2u);
  EXPECT_EQ(completions[0].completion_slot, 5);
  EXPECT_DOUBLE_EQ(consumed, 2.0);
  EXPECT_EQ(q.job_count(), 1u);
}

TEST(FifoJobQueue, PartialServiceAccumulatesAcrossSlots) {
  FifoJobQueue q(3.0);
  q.push(make_job(1, 3.0, /*arrival=*/2, /*dc_entry=*/3));
  EXPECT_TRUE(q.serve(1.0, 4, nullptr).empty());
  EXPECT_TRUE(q.serve(1.0, 5, nullptr).empty());
  auto completions = q.serve(1.0, 6, nullptr);
  ASSERT_EQ(completions.size(), 1u);
  EXPECT_EQ(completions[0].total_delay(), 4);  // 6 - 2
  EXPECT_EQ(completions[0].dc_delay(), 3);     // 6 - 3
}

TEST(FifoJobQueue, ServeMoreThanQueueDrainsEverything) {
  FifoJobQueue q(1.0);
  q.push(make_job(1, 1.0));
  double consumed = 0.0;
  auto completions = q.serve(100.0, 0, &consumed);
  EXPECT_EQ(completions.size(), 1u);
  EXPECT_DOUBLE_EQ(consumed, 1.0);
  EXPECT_TRUE(q.empty());
  EXPECT_DOUBLE_EQ(q.remaining_work(), 0.0);
}

TEST(FifoJobQueue, ZeroServiceIsNoOp) {
  FifoJobQueue q(1.0);
  q.push(make_job(1, 1.0));
  EXPECT_TRUE(q.serve(0.0, 0, nullptr).empty());
  EXPECT_DOUBLE_EQ(q.length_jobs(), 1.0);
}

TEST(FifoJobQueue, PopFrontReturnsWholeJob) {
  FifoJobQueue q(2.0);
  q.push(make_job(7, 2.0));
  q.push(make_job(8, 2.0));
  Job j = q.pop_front();
  EXPECT_EQ(j.id, 7u);
  EXPECT_DOUBLE_EQ(j.remaining, 2.0);
  EXPECT_DOUBLE_EQ(q.remaining_work(), 2.0);
}

TEST(FifoJobQueue, PopFrontOnEmptyIsContractViolation) {
  FifoJobQueue q(1.0);
  EXPECT_THROW(q.pop_front(), ContractViolation);
}

TEST(FifoJobQueue, RejectsBadInputs) {
  EXPECT_THROW(FifoJobQueue(0.0), ContractViolation);
  EXPECT_THROW(FifoJobQueue(-1.0), ContractViolation);
  FifoJobQueue q(1.0);
  EXPECT_THROW(q.push(make_job(1, 0.0)), ContractViolation);
  EXPECT_THROW(q.serve(-1.0, 0, nullptr), ContractViolation);
}

TEST(FifoJobQueue, ClampedDynamicsMatchScalarUpdate) {
  // q(t+1) = max[q + r - h, 0] with r routed before service.
  FifoJobQueue q(1.0);
  double scalar_q = 0.0;
  std::uint64_t next_id = 1;
  const double arrivals[] = {3, 0, 2, 5, 0, 0, 1};
  const double service[] = {1, 1, 4, 2, 2, 2, 2};
  for (int t = 0; t < 7; ++t) {
    for (int n = 0; n < arrivals[t]; ++n) q.push(make_job(next_id++, 1.0, t, t));
    scalar_q = std::max(scalar_q + arrivals[t] - service[t], 0.0);
    q.serve(service[t], t, nullptr);
    EXPECT_NEAR(q.length_jobs(), scalar_q, 1e-9) << "slot " << t;
  }
}

TEST(FifoJobQueue, PerJobCapLimitsEachJob) {
  FifoJobQueue q(4.0);
  q.push(make_job(1, 4.0));
  q.push(make_job(2, 4.0));
  double consumed = 0.0;
  // Budget 6 but each job can take at most 1 this slot.
  auto completions = q.serve(6.0, 0, &consumed, /*per_job_cap=*/1.0);
  EXPECT_TRUE(completions.empty());
  EXPECT_DOUBLE_EQ(consumed, 2.0);  // 1 to each job
  EXPECT_DOUBLE_EQ(q.remaining_work(), 6.0);
}

TEST(FifoJobQueue, CapLetsSmallLaterJobsFinishFirst) {
  FifoJobQueue q(1.0);
  q.push(make_job(1, 10.0));  // big head
  q.push(make_job(2, 0.5));   // small follower
  auto completions = q.serve(5.0, 3, nullptr, /*per_job_cap=*/2.0);
  ASSERT_EQ(completions.size(), 1u);
  EXPECT_EQ(completions[0].job.id, 2u);
  EXPECT_EQ(q.job_count(), 1u);
  EXPECT_DOUBLE_EQ(q.remaining_work(), 8.0);  // head got its 2-unit cap
}

TEST(FifoJobQueue, InfiniteCapMatchesUncappedBehaviour) {
  FifoJobQueue a(1.0), b(1.0);
  for (int n = 0; n < 5; ++n) {
    a.push(make_job(n + 1, 1.0));
    b.push(make_job(n + 1, 1.0));
  }
  double used_a = 0.0, used_b = 0.0;
  auto ca = a.serve(3.5, 0, &used_a);
  auto cb = b.serve(3.5, 0, &used_b,
                    std::numeric_limits<double>::infinity());
  EXPECT_EQ(ca.size(), cb.size());
  EXPECT_DOUBLE_EQ(used_a, used_b);
  EXPECT_DOUBLE_EQ(a.remaining_work(), b.remaining_work());
}

TEST(FifoJobQueue, RejectsNonPositiveCap) {
  FifoJobQueue q(1.0);
  q.push(make_job(1, 1.0));
  EXPECT_THROW(q.serve(1.0, 0, nullptr, 0.0), ContractViolation);
}

TEST(FifoJobQueue, CappedJobTakesMultipleSlots) {
  // One job of work 4 with cap 1: completes at slot 3 (slots 0..3).
  FifoJobQueue q(4.0);
  q.push(make_job(1, 4.0, /*arrival=*/0, /*dc_entry=*/0));
  for (int t = 0; t < 3; ++t) {
    EXPECT_TRUE(q.serve(10.0, t, nullptr, 1.0).empty());
  }
  auto completions = q.serve(10.0, 3, nullptr, 1.0);
  ASSERT_EQ(completions.size(), 1u);
  EXPECT_EQ(completions[0].total_delay(), 3);
}

TEST(FifoJobQueue, DelayAccountingForBatchArrival) {
  // Three unit jobs arrive at slot 0; serve one per slot from slot 1:
  // delays 1, 2, 3.
  FifoJobQueue q(1.0);
  for (int n = 0; n < 3; ++n) q.push(make_job(n + 1, 1.0, 0, 0));
  double total_delay = 0.0;
  for (int t = 1; t <= 3; ++t) {
    auto completions = q.serve(1.0, t, nullptr);
    for (const auto& c : completions) total_delay += static_cast<double>(c.total_delay());
  }
  EXPECT_DOUBLE_EQ(total_delay, 6.0);
}

}  // namespace
}  // namespace grefar
