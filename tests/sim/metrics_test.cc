#include "sim/metrics.h"

#include <gtest/gtest.h>

#include <cmath>

namespace grefar {
namespace {

SimMetrics populated_metrics() {
  SimMetrics m(2, 3);
  for (int t = 0; t < 4; ++t) {
    m.energy_cost.add(10.0 + t);
    m.fairness.add(1.0);
    m.arrived_jobs.add(5.0);
    m.arrived_work.add(5.0);
    m.total_queue_jobs.add(2.0);
    m.max_queue_jobs.add(1.0);
    for (std::size_t i = 0; i < 2; ++i) {
      m.dc_energy_cost[i].add(5.0);
      m.dc_work[i].add(3.0);
      m.dc_routed_jobs[i].add(2.0);
      m.dc_delay_sum[i].add(4.0);
      m.dc_completions[i].add(2.0);
      m.dc_price[i].add(1.0);
    }
    for (std::size_t a = 0; a < 3; ++a) m.account_work[a].add(2.0);
  }
  return m;
}

TEST(SimMetrics, SummaryJsonReportsPercentiles) {
  SimMetrics m = populated_metrics();
  m.record_completion_delay(1.0);
  m.record_completion_delay(2.0);
  m.record_completion_delay(3.0);

  const JsonValue s = m.summary_json();
  ASSERT_TRUE(s.is_object());
  EXPECT_DOUBLE_EQ(s.find("slots")->as_number(), 4.0);
  EXPECT_DOUBLE_EQ(s.find("completions")->as_number(), 3.0);
  const JsonValue* p50 = s.find("delay_p50");
  ASSERT_NE(p50, nullptr);
  ASSERT_TRUE(p50->is_number());
  EXPECT_DOUBLE_EQ(p50->as_number(), 2.0);
  EXPECT_TRUE(s.find("delay_p95")->is_number());
  EXPECT_TRUE(s.find("delay_p99")->is_number());
  ASSERT_TRUE(s.find("data_centers")->is_array());
  EXPECT_EQ(s.find("data_centers")->as_array().size(), 2u);
  ASSERT_TRUE(s.find("account_work")->is_array());
  EXPECT_EQ(s.find("account_work")->as_array().size(), 3u);
  // dump() must not throw — the serializer rejects NaN/Inf outright, so
  // every number in the summary has to be finite.
  EXPECT_FALSE(s.dump().empty());
}

TEST(SimMetrics, SummaryJsonNullPercentilesWhenNoCompletions) {
  // A run where no job ever finishes: the P2 estimators return NaN, which
  // must surface as JSON null — not as a fake zero-delay percentile.
  SimMetrics m = populated_metrics();
  EXPECT_TRUE(std::isnan(m.delay_p50()));

  const JsonValue s = m.summary_json();
  ASSERT_TRUE(s.is_object());
  EXPECT_TRUE(s.find("delay_p50")->is_null());
  EXPECT_TRUE(s.find("delay_p95")->is_null());
  EXPECT_TRUE(s.find("delay_p99")->is_null());
  EXPECT_DOUBLE_EQ(s.find("completions")->as_number(), 0.0);
  const std::string text = s.dump();
  EXPECT_NE(text.find("\"delay_p50\":null"), std::string::npos);
}

}  // namespace
}  // namespace grefar
