#include "sim/fairness.h"

#include <gtest/gtest.h>

#include "util/check.h"
#include "util/rng.h"

namespace grefar {
namespace {

TEST(Fairness, PerfectAllocationScoresZero) {
  FairnessFunction f({0.4, 0.3, 0.15, 0.15});
  double R = 100.0;
  // Zero up to rounding: the sparse-exact kernel evaluates r * (1/R) -
  // gamma (hoisted reciprocal, see sim/fairness.h), so a mathematically
  // perfect allocation can sit an ulp or two off exact zero.
  EXPECT_NEAR(f.score({40.0, 30.0, 15.0, 15.0}, R), 0.0, 1e-14);
}

TEST(Fairness, ScoreIsNeverPositive) {
  FairnessFunction f({0.5, 0.5});
  EXPECT_LE(f.score({10.0, 0.0}, 10.0), 0.0);
  EXPECT_LE(f.score({0.0, 0.0}, 10.0), 0.0);
  EXPECT_LE(f.score({5.0, 5.0}, 10.0), -0.0);
}

TEST(Fairness, KnownValue) {
  // r/R = (1, 0), gamma = (0.5, 0.5): penalty = 0.25 + 0.25 = 0.5.
  FairnessFunction f({0.5, 0.5});
  EXPECT_DOUBLE_EQ(f.score({10.0, 0.0}, 10.0), -0.5);
}

TEST(Fairness, IdleSystemIsPenalized) {
  // The paper notes f encourages resource use: all-idle scores
  // -sum gamma_m^2 < 0.
  FairnessFunction f({0.4, 0.3, 0.15, 0.15});
  double expected = -(0.16 + 0.09 + 0.0225 + 0.0225);
  EXPECT_DOUBLE_EQ(f.score({0.0, 0.0, 0.0, 0.0}, 50.0), expected);
}

TEST(Fairness, MoreBalancedBeatsLessBalanced) {
  FairnessFunction f({0.5, 0.5});
  double balanced = f.score({5.0, 5.0}, 10.0);
  double skewed = f.score({8.0, 2.0}, 10.0);
  EXPECT_GT(balanced, skewed);
}

TEST(Fairness, ScoreGradientMatchesFiniteDifference) {
  FairnessFunction f({0.4, 0.6});
  double R = 50.0;
  std::vector<double> r{12.0, 20.0};
  const double eps = 1e-6;
  for (std::size_t m = 0; m < 2; ++m) {
    auto r_hi = r;
    r_hi[m] += eps;
    auto r_lo = r;
    r_lo[m] -= eps;
    double numeric = (f.score(r_hi, R) - f.score(r_lo, R)) / (2 * eps);
    EXPECT_NEAR(f.score_gradient(r[m], m, R), numeric, 1e-6);
  }
}

TEST(Fairness, GradientSignPushesTowardTarget) {
  FairnessFunction f({0.5, 0.5});
  double R = 10.0;
  // Below target: increasing r_m improves the score (positive gradient).
  EXPECT_GT(f.score_gradient(2.0, 0, R), 0.0);
  // Above target: decreasing improves.
  EXPECT_LT(f.score_gradient(8.0, 0, R), 0.0);
  // At target: zero.
  EXPECT_NEAR(f.score_gradient(5.0, 0, R), 0.0, 1e-12);
}

TEST(Fairness, RejectsBadInputs) {
  EXPECT_THROW(FairnessFunction({}), ContractViolation);
  EXPECT_THROW(FairnessFunction({0.5, -0.1}), ContractViolation);
  FairnessFunction f({0.5, 0.5});
  EXPECT_THROW(f.score({1.0}, 10.0), ContractViolation);
  EXPECT_THROW(f.score({1.0, 2.0}, 0.0), ContractViolation);
  EXPECT_THROW(f.score_gradient(1.0, 2, 10.0), ContractViolation);
  EXPECT_THROW(f.score_gradient(1.0, 0, -1.0), ContractViolation);
}

TEST(Fairness, ExposesGamma) {
  FairnessFunction f({0.4, 0.6});
  EXPECT_EQ(f.num_accounts(), 2u);
  EXPECT_DOUBLE_EQ(f.gamma()[1], 0.6);
}

TEST(Fairness, InvTotalGuardsNonPositiveResource) {
  FairnessFunction f({0.5, 0.5});
  EXPECT_DOUBLE_EQ(f.inv_total(4.0), 0.25);
  EXPECT_THROW(f.inv_total(0.0), ContractViolation);
  EXPECT_THROW(f.inv_total(-2.0), ContractViolation);
  const std::uint32_t ids[] = {0};
  const double r[] = {1.0};
  EXPECT_THROW(f.score_active(ids, r, 1, 0.0), ContractViolation);
  EXPECT_THROW(f.score_active(ids, r, 1, -1.0), ContractViolation);
}

TEST(Fairness, ScoreActiveRejectsOutOfRangeIds) {
  FairnessFunction f({0.5, 0.5});
  const std::uint32_t ids[] = {2};
  const double r[] = {1.0};
  EXPECT_THROW(f.score_active(ids, r, 1, 10.0), ContractViolation);
}

TEST(Fairness, GammaSqTotalIsAscendingSquareSum) {
  FairnessFunction f({0.4, 0.3, 0.15, 0.15});
  double expected = 0.0;
  for (double g : {0.4, 0.3, 0.15, 0.15}) expected += g * g;
  EXPECT_EQ(f.gamma_sq_total(), expected);
}

// The DESIGN.md §12 contract: evaluating only the accounts that received
// work gives the *bitwise identical* score to the dense sum over all M
// accounts, because an idle account's factored term is an exact float zero
// and adding zero never changes the accumulator bits. Exercised over many
// random gammas, allocations and active masks, up to M = 10^4.
TEST(Fairness, SparseScoreMatchesDenseBitwise) {
  Rng rng(20260807);
  for (std::size_t m_exp = 0; m_exp < 5; ++m_exp) {
    const std::size_t M = std::size_t{10} << (2 * m_exp);  // 10 .. 2560
    std::vector<double> gamma(M);
    for (double& g : gamma) g = rng.uniform(0.0, 1.0);
    FairnessFunction f(gamma);
    for (int trial = 0; trial < 8; ++trial) {
      const double R = rng.uniform(1.0, 1000.0);
      const double p_active = trial % 2 == 0 ? 0.05 : 0.5;
      std::vector<double> dense(M, 0.0);
      std::vector<std::uint32_t> ids;
      std::vector<double> r_active;
      for (std::size_t m = 0; m < M; ++m) {
        if (rng.uniform() < p_active) {
          dense[m] = rng.uniform(0.0, R);
          ids.push_back(static_cast<std::uint32_t>(m));
          r_active.push_back(dense[m]);
        }
      }
      const double sparse_score =
          f.score_active(ids.data(), r_active.data(), ids.size(), R);
      // EXPECT_EQ on doubles is exact equality — the whole point.
      EXPECT_EQ(f.score(dense, R), sparse_score)
          << "M=" << M << " trial=" << trial;
    }
  }
  // The 10^4 end of the satellite: one big instance, sparse mask.
  const std::size_t M = 10000;
  std::vector<double> gamma(M);
  for (double& g : gamma) g = rng.uniform(0.0, 1.0);
  FairnessFunction f(gamma);
  std::vector<double> dense(M, 0.0);
  std::vector<std::uint32_t> ids;
  std::vector<double> r_active;
  for (std::size_t m = 0; m < M; ++m) {
    if (rng.uniform() < 0.01) {
      dense[m] = rng.uniform(0.0, 500.0);
      ids.push_back(static_cast<std::uint32_t>(m));
      r_active.push_back(dense[m]);
    }
  }
  EXPECT_EQ(f.score(dense, 500.0),
            f.score_active(ids.data(), r_active.data(), ids.size(), 500.0));
}

}  // namespace
}  // namespace grefar
