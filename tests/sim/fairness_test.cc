#include "sim/fairness.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace grefar {
namespace {

TEST(Fairness, PerfectAllocationScoresZero) {
  FairnessFunction f({0.4, 0.3, 0.15, 0.15});
  double R = 100.0;
  EXPECT_DOUBLE_EQ(f.score({40.0, 30.0, 15.0, 15.0}, R), 0.0);
}

TEST(Fairness, ScoreIsNeverPositive) {
  FairnessFunction f({0.5, 0.5});
  EXPECT_LE(f.score({10.0, 0.0}, 10.0), 0.0);
  EXPECT_LE(f.score({0.0, 0.0}, 10.0), 0.0);
  EXPECT_LE(f.score({5.0, 5.0}, 10.0), -0.0);
}

TEST(Fairness, KnownValue) {
  // r/R = (1, 0), gamma = (0.5, 0.5): penalty = 0.25 + 0.25 = 0.5.
  FairnessFunction f({0.5, 0.5});
  EXPECT_DOUBLE_EQ(f.score({10.0, 0.0}, 10.0), -0.5);
}

TEST(Fairness, IdleSystemIsPenalized) {
  // The paper notes f encourages resource use: all-idle scores
  // -sum gamma_m^2 < 0.
  FairnessFunction f({0.4, 0.3, 0.15, 0.15});
  double expected = -(0.16 + 0.09 + 0.0225 + 0.0225);
  EXPECT_DOUBLE_EQ(f.score({0.0, 0.0, 0.0, 0.0}, 50.0), expected);
}

TEST(Fairness, MoreBalancedBeatsLessBalanced) {
  FairnessFunction f({0.5, 0.5});
  double balanced = f.score({5.0, 5.0}, 10.0);
  double skewed = f.score({8.0, 2.0}, 10.0);
  EXPECT_GT(balanced, skewed);
}

TEST(Fairness, ScoreGradientMatchesFiniteDifference) {
  FairnessFunction f({0.4, 0.6});
  double R = 50.0;
  std::vector<double> r{12.0, 20.0};
  const double eps = 1e-6;
  for (std::size_t m = 0; m < 2; ++m) {
    auto r_hi = r;
    r_hi[m] += eps;
    auto r_lo = r;
    r_lo[m] -= eps;
    double numeric = (f.score(r_hi, R) - f.score(r_lo, R)) / (2 * eps);
    EXPECT_NEAR(f.score_gradient(r[m], m, R), numeric, 1e-6);
  }
}

TEST(Fairness, GradientSignPushesTowardTarget) {
  FairnessFunction f({0.5, 0.5});
  double R = 10.0;
  // Below target: increasing r_m improves the score (positive gradient).
  EXPECT_GT(f.score_gradient(2.0, 0, R), 0.0);
  // Above target: decreasing improves.
  EXPECT_LT(f.score_gradient(8.0, 0, R), 0.0);
  // At target: zero.
  EXPECT_NEAR(f.score_gradient(5.0, 0, R), 0.0, 1e-12);
}

TEST(Fairness, RejectsBadInputs) {
  EXPECT_THROW(FairnessFunction({}), ContractViolation);
  EXPECT_THROW(FairnessFunction({0.5, -0.1}), ContractViolation);
  FairnessFunction f({0.5, 0.5});
  EXPECT_THROW(f.score({1.0}, 10.0), ContractViolation);
  EXPECT_THROW(f.score({1.0, 2.0}, 0.0), ContractViolation);
  EXPECT_THROW(f.score_gradient(1.0, 2, 10.0), ContractViolation);
  EXPECT_THROW(f.score_gradient(1.0, 0, -1.0), ContractViolation);
}

TEST(Fairness, ExposesGamma) {
  FairnessFunction f({0.4, 0.6});
  EXPECT_EQ(f.num_accounts(), 2u);
  EXPECT_DOUBLE_EQ(f.gamma()[1], 0.6);
}

}  // namespace
}  // namespace grefar
