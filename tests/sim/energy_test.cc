#include "sim/energy.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace grefar {
namespace {

std::vector<ServerType> table_one_types() {
  return {{"gen-a", 1.00, 1.00}, {"gen-b", 0.75, 0.60}, {"gen-c", 1.15, 1.20}};
}

TEST(EnergyCurve, CapacitySumsAvailableServers) {
  EnergyCostCurve curve(table_one_types(), {10, 20, 0});
  EXPECT_DOUBLE_EQ(curve.capacity(), 10 * 1.0 + 20 * 0.75);
}

TEST(EnergyCurve, ZeroWorkZeroEnergy) {
  EnergyCostCurve curve(table_one_types(), {10, 10, 10});
  EXPECT_DOUBLE_EQ(curve.energy_for_work(0.0), 0.0);
}

TEST(EnergyCurve, FillsCheapestServersFirst) {
  // Energy-per-work: gen-a 1.0, gen-b 0.8, gen-c ~1.043 — gen-b first.
  EnergyCostCurve curve(table_one_types(), {10, 10, 10});
  // 5 work fits entirely on gen-b (capacity 7.5): energy = 5 * 0.8 = 4.
  EXPECT_NEAR(curve.energy_for_work(5.0), 4.0, 1e-9);
  // 10 work: 7.5 on gen-b + 2.5 on gen-a = 6 + 2.5 = 8.5.
  EXPECT_NEAR(curve.energy_for_work(10.0), 8.5, 1e-9);
}

TEST(EnergyCurve, FullLoadUsesEverything) {
  EnergyCostCurve curve(table_one_types(), {10, 10, 10});
  double cap = curve.capacity();
  // 7.5*0.8 + 10*1.0 + 11.5*(1.2/1.15) = 6 + 10 + 12 = 28.
  EXPECT_NEAR(curve.energy_for_work(cap), 28.0, 1e-9);
  // Beyond capacity clamps.
  EXPECT_NEAR(curve.energy_for_work(cap + 100.0), 28.0, 1e-9);
}

TEST(EnergyCurve, IsConvexAndIncreasing) {
  EnergyCostCurve curve(table_one_types(), {5, 5, 5});
  double prev_e = 0.0;
  double prev_slope = 0.0;
  for (double w = 1.0; w <= curve.capacity(); w += 1.0) {
    double e = curve.energy_for_work(w);
    double slope = e - prev_e;
    EXPECT_GE(e, prev_e);              // increasing
    EXPECT_GE(slope + 1e-12, prev_slope);  // convex
    prev_e = e;
    prev_slope = slope;
  }
}

TEST(EnergyCurve, MarginalMatchesSegmentSlopes) {
  EnergyCostCurve curve(table_one_types(), {10, 10, 10});
  EXPECT_NEAR(curve.marginal_energy(0.0), 0.8, 1e-12);    // gen-b segment
  EXPECT_NEAR(curve.marginal_energy(7.4), 0.8, 1e-12);
  EXPECT_NEAR(curve.marginal_energy(7.6), 1.0, 1e-12);    // gen-a segment
  EXPECT_NEAR(curve.marginal_energy(18.0), 1.2 / 1.15, 1e-12);  // gen-c
  EXPECT_NEAR(curve.marginal_energy(1000.0), 1.2 / 1.15, 1e-12);  // clamped
}

TEST(EnergyCurve, BusyServersAchieveTheWork) {
  auto types = table_one_types();
  EnergyCostCurve curve(types, {10, 10, 10});
  double work = 12.0;
  auto b = curve.busy_servers(work);
  ASSERT_EQ(b.size(), 3u);
  double served = 0.0, energy = 0.0;
  for (std::size_t k = 0; k < 3; ++k) {
    EXPECT_GE(b[k], 0.0);
    EXPECT_LE(b[k], 10.0 + 1e-9);
    served += b[k] * types[k].speed;
    energy += b[k] * types[k].busy_power;
  }
  EXPECT_NEAR(served, work, 1e-9);
  EXPECT_NEAR(energy, curve.energy_for_work(work), 1e-9);
}

TEST(EnergyCurve, UnavailableTypesAreSkipped) {
  EnergyCostCurve curve(table_one_types(), {0, 10, 0});
  EXPECT_DOUBLE_EQ(curve.capacity(), 7.5);
  auto b = curve.busy_servers(3.0);
  EXPECT_DOUBLE_EQ(b[0], 0.0);
  EXPECT_DOUBLE_EQ(b[2], 0.0);
  EXPECT_NEAR(b[1] * 0.75, 3.0, 1e-9);
}

TEST(EnergyCurve, EmptyFleetHasZeroCapacity) {
  EnergyCostCurve curve(table_one_types(), {0, 0, 0});
  EXPECT_DOUBLE_EQ(curve.capacity(), 0.0);
  EXPECT_DOUBLE_EQ(curve.energy_for_work(0.0), 0.0);
  EXPECT_DOUBLE_EQ(curve.marginal_energy(1.0), 0.0);
}

TEST(EnergyCurve, RejectsBadInputs) {
  EXPECT_THROW(EnergyCostCurve({}, {}), ContractViolation);
  EXPECT_THROW(EnergyCostCurve(table_one_types(), {1, 2}), ContractViolation);
  EXPECT_THROW(EnergyCostCurve(table_one_types(), {-1, 0, 0}), ContractViolation);
  EnergyCostCurve curve(table_one_types(), {1, 1, 1});
  EXPECT_THROW(curve.energy_for_work(-1.0), ContractViolation);
  EXPECT_THROW(curve.marginal_energy(-1.0), ContractViolation);
}

TEST(EnergyCurve, SegmentsSortedByEnergyPerWork) {
  EnergyCostCurve curve(table_one_types(), {10, 10, 10});
  const auto& segs = curve.segments();
  ASSERT_EQ(segs.size(), 3u);
  for (std::size_t s = 1; s < segs.size(); ++s) {
    EXPECT_LE(segs[s - 1].energy_per_work, segs[s].energy_per_work);
  }
  EXPECT_EQ(segs[0].type, 1u);  // gen-b is cheapest
}

TEST(EnergyCurve, TableOneCostPerUnitWork) {
  // Table I's "Avg. Energy Cost per Unit Work" column: price * p / s.
  const double prices[3] = {0.392, 0.433, 0.548};
  const double expected[3] = {0.392, 0.346, 0.572};
  auto types = table_one_types();
  for (int dc = 0; dc < 3; ++dc) {
    std::vector<std::int64_t> avail(3, 0);
    avail[dc] = 100;
    EnergyCostCurve curve(types, avail);
    double cost_per_work = prices[dc] * curve.marginal_energy(0.0);
    EXPECT_NEAR(cost_per_work, expected[dc], 5e-4) << "DC " << dc + 1;
  }
}

}  // namespace
}  // namespace grefar
