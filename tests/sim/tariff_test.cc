#include "sim/tariff.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/check.h"
#include "util/rng.h"

namespace grefar {
namespace {

TieredTariff two_tier() {
  return TieredTariff({{10.0, 1.0}, {std::numeric_limits<double>::infinity(), 2.0}});
}

TieredTariff three_tier() {
  return TieredTariff({{5.0, 1.0},
                       {20.0, 1.5},
                       {std::numeric_limits<double>::infinity(), 3.0}});
}

TEST(Tariff, DefaultIsFlat) {
  TieredTariff t;
  EXPECT_TRUE(t.is_flat());
  EXPECT_DOUBLE_EQ(t.cost(7.5), 7.5);
  EXPECT_DOUBLE_EQ(t.marginal(123.0), 1.0);
}

TEST(Tariff, TieredCostPiecewise) {
  auto t = two_tier();
  EXPECT_FALSE(t.is_flat());
  EXPECT_DOUBLE_EQ(t.cost(0.0), 0.0);
  EXPECT_DOUBLE_EQ(t.cost(4.0), 4.0);
  EXPECT_DOUBLE_EQ(t.cost(10.0), 10.0);
  EXPECT_DOUBLE_EQ(t.cost(15.0), 10.0 + 5.0 * 2.0);
}

TEST(Tariff, ThreeTierCost) {
  auto t = three_tier();
  // 5*1 + 15*1.5 + 5*3 = 5 + 22.5 + 15 = 42.5.
  EXPECT_DOUBLE_EQ(t.cost(25.0), 42.5);
}

TEST(Tariff, MarginalIsRightContinuous) {
  auto t = two_tier();
  EXPECT_DOUBLE_EQ(t.marginal(9.99), 1.0);
  EXPECT_DOUBLE_EQ(t.marginal(10.0), 2.0);
  EXPECT_DOUBLE_EQ(t.marginal(100.0), 2.0);
}

TEST(Tariff, CostIsConvexAndIncreasing) {
  auto t = three_tier();
  double prev = -1.0;
  double prev_slope = 0.0;
  for (double e = 0.0; e <= 40.0; e += 0.5) {
    double c = t.cost(e);
    EXPECT_GT(c, prev);
    if (e > 0.0) {
      double slope = c - t.cost(e - 0.5);
      EXPECT_GE(slope + 1e-12, prev_slope);
      prev_slope = slope;
    }
    prev = c;
  }
}

TEST(Tariff, SmoothedMatchesExactAwayFromBoundaries) {
  auto t = three_tier();
  for (double e : {1.0, 10.0, 30.0}) {
    EXPECT_NEAR(t.smoothed_cost(e, 0.5), t.cost(e), 0.2);
    EXPECT_DOUBLE_EQ(t.smoothed_marginal(e, 0.5), t.marginal(e));
  }
}

TEST(Tariff, SmoothedMarginalIsContinuous) {
  auto t = two_tier();
  double band = 1.0;
  double prev = t.smoothed_marginal(8.0, band);
  for (double e = 8.0; e <= 12.0; e += 0.01) {
    double m = t.smoothed_marginal(e, band);
    EXPECT_LE(std::abs(m - prev), 0.02);  // no jumps
    EXPECT_GE(m + 1e-12, prev);           // non-decreasing
    prev = m;
  }
  EXPECT_NEAR(t.smoothed_marginal(9.0, band), 1.0, 1e-12);
  EXPECT_NEAR(t.smoothed_marginal(10.0, band), 1.5, 1e-12);  // midpoint of blend
  EXPECT_NEAR(t.smoothed_marginal(11.0, band), 2.0, 1e-12);
}

TEST(Tariff, SmoothedCostDerivativeMatchesSmoothedMarginal) {
  auto t = three_tier();
  const double band = 0.8;
  const double eps = 1e-6;
  for (double e = 0.5; e < 30.0; e += 0.7) {
    double numeric =
        (t.smoothed_cost(e + eps, band) - t.smoothed_cost(e - eps, band)) / (2 * eps);
    EXPECT_NEAR(numeric, t.smoothed_marginal(e, band), 1e-4) << "e=" << e;
  }
}

TEST(Tariff, ZeroBandSmoothedEqualsExact) {
  auto t = three_tier();
  for (double e = 0.0; e < 30.0; e += 1.3) {
    EXPECT_NEAR(t.smoothed_cost(e, 0.0), t.cost(e), 1e-12);
  }
}

TEST(Tariff, RejectsInvalidTiers) {
  using Tier = TieredTariff::Tier;
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_THROW(TieredTariff(std::vector<Tier>{}), ContractViolation);
  // Last tier must be infinite.
  EXPECT_THROW(TieredTariff({Tier{10.0, 1.0}}), ContractViolation);
  // Decreasing rates violate convexity.
  EXPECT_THROW(TieredTariff({Tier{10.0, 2.0}, Tier{inf, 1.0}}), ContractViolation);
  // Non-increasing boundaries.
  EXPECT_THROW(TieredTariff({Tier{10.0, 1.0}, Tier{5.0, 2.0}, Tier{inf, 3.0}}),
               ContractViolation);
  // Non-positive rate.
  EXPECT_THROW(TieredTariff({Tier{inf, 0.0}}), ContractViolation);
  // Negative energy.
  TieredTariff ok = two_tier();
  EXPECT_THROW(ok.cost(-1.0), ContractViolation);
  EXPECT_THROW(ok.marginal(-1.0), ContractViolation);
}

// Property sweep over random tiered tariffs: for every tariff and band,
//   (a) smoothed_cost(e, 0) == cost(e) exactly,
//   (b) smoothed_cost is non-decreasing in e,
//   (c) |smoothed_cost(e, band) - cost(e)| <= band * max_rate_jump — the
//       blend zone around each boundary has half-width <= band and marginal
//       error <= the rate jump there, and the error cancels past the zone.
TEST(Tariff, SmoothingPropertiesOnRandomTariffs) {
  Rng rng(20260805);
  for (int trial = 0; trial < 50; ++trial) {
    const int num_tiers = 2 + static_cast<int>(rng.uniform() * 4.0);  // 2..5
    std::vector<TieredTariff::Tier> tiers;
    double upto = 0.0;
    double rate = 0.5 + rng.uniform();
    for (int k = 0; k < num_tiers; ++k) {
      const bool last = (k + 1 == num_tiers);
      upto += 2.0 + 10.0 * rng.uniform();
      rate += 2.0 * rng.uniform();  // non-decreasing => convex
      tiers.push_back({last ? std::numeric_limits<double>::infinity() : upto, rate});
    }
    const TieredTariff t(tiers);

    double max_rate_jump = 0.0;
    for (std::size_t k = 0; k + 1 < tiers.size(); ++k) {
      max_rate_jump = std::max(max_rate_jump, tiers[k + 1].rate - tiers[k].rate);
    }

    const double band = 2.0 * rng.uniform();
    const double e_max = upto + 10.0;
    double prev = 0.0;
    for (double e = 0.0; e <= e_max; e += e_max / 400.0) {
      EXPECT_NEAR(t.smoothed_cost(e, 0.0), t.cost(e), 1e-9)
          << "trial " << trial << " e=" << e;
      const double sc = t.smoothed_cost(e, band);
      EXPECT_GE(sc + 1e-12, prev) << "trial " << trial << " e=" << e;
      EXPECT_NEAR(sc, t.cost(e), band * max_rate_jump + 1e-9)
          << "trial " << trial << " e=" << e << " band=" << band;
      prev = sc;
    }
  }
}

TEST(Tariff, EqualRatesActLikeScaledFlat) {
  TieredTariff t({{10.0, 1.5}, {std::numeric_limits<double>::infinity(), 1.5}});
  EXPECT_FALSE(t.is_flat());  // not rate-1
  EXPECT_DOUBLE_EQ(t.cost(8.0), 12.0);
  EXPECT_DOUBLE_EQ(t.cost(20.0), 30.0);
}

}  // namespace
}  // namespace grefar
