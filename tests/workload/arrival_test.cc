#include "workload/arrival_process.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace grefar {
namespace {

TEST(ConstantArrivals, SameEverySlot) {
  ConstantArrivals a({2, 0, 5});
  EXPECT_EQ(a.num_job_types(), 3u);
  for (std::int64_t t = 0; t < 10; ++t) {
    EXPECT_EQ(a.arrivals(t), (std::vector<std::int64_t>{2, 0, 5}));
  }
  EXPECT_EQ(a.max_arrivals(0), 2);
  EXPECT_EQ(a.max_arrivals(2), 5);
}

TEST(ConstantArrivals, RejectsBadInputs) {
  EXPECT_THROW(ConstantArrivals({}), ContractViolation);
  EXPECT_THROW(ConstantArrivals({-1}), ContractViolation);
  ConstantArrivals a({1});
  EXPECT_THROW(a.arrivals(-1), ContractViolation);
  EXPECT_THROW(a.max_arrivals(1), ContractViolation);
}

TEST(PoissonArrivals, DeterministicPerSeed) {
  PoissonArrivals a({3.0, 1.0}, {100, 100}, 5);
  PoissonArrivals b({3.0, 1.0}, {100, 100}, 5);
  for (std::int64_t t = 0; t < 100; ++t) EXPECT_EQ(a.arrivals(t), b.arrivals(t));
}

TEST(PoissonArrivals, RandomAccessMatchesSequential) {
  PoissonArrivals a({3.0}, {100}, 6);
  PoissonArrivals b({3.0}, {100}, 6);
  auto late = a.arrivals(50);
  for (std::int64_t t = 0; t < 50; ++t) b.arrivals(t);
  EXPECT_EQ(late, b.arrivals(50));
}

TEST(PoissonArrivals, MeanMatchesRate) {
  PoissonArrivals a({4.0}, {1000}, 7);
  double sum = 0.0;
  const int n = 20000;
  for (std::int64_t t = 0; t < n; ++t) sum += static_cast<double>(a.arrivals(t)[0]);
  EXPECT_NEAR(sum / n, 4.0, 0.1);
}

TEST(PoissonArrivals, BoundednessEqOneHolds) {
  PoissonArrivals a({50.0}, {10}, 8);
  for (std::int64_t t = 0; t < 1000; ++t) {
    EXPECT_LE(a.arrivals(t)[0], 10);
    EXPECT_GE(a.arrivals(t)[0], 0);
  }
}

TEST(PoissonArrivals, RejectsMismatchedShapes) {
  EXPECT_THROW(PoissonArrivals({1.0}, {1, 2}, 1), ContractViolation);
  EXPECT_THROW(PoissonArrivals({-1.0}, {1}, 1), ContractViolation);
  EXPECT_THROW(PoissonArrivals({1.0}, {-1}, 1), ContractViolation);
  EXPECT_THROW(PoissonArrivals({}, {}, 1), ContractViolation);
}

TEST(TableArrivals, ReplaysAndWraps) {
  TableArrivals a({{1, 2}, {3, 4}});
  EXPECT_EQ(a.arrivals(0), (std::vector<std::int64_t>{1, 2}));
  EXPECT_EQ(a.arrivals(1), (std::vector<std::int64_t>{3, 4}));
  EXPECT_EQ(a.arrivals(2), (std::vector<std::int64_t>{1, 2}));  // wrap
  EXPECT_EQ(a.num_job_types(), 2u);
}

TEST(TableArrivals, MaxArrivalsScansTrace) {
  TableArrivals a({{1, 9}, {3, 4}});
  EXPECT_EQ(a.max_arrivals(0), 3);
  EXPECT_EQ(a.max_arrivals(1), 9);
  EXPECT_THROW(a.max_arrivals(2), ContractViolation);
}

TEST(TableArrivals, RejectsRaggedOrEmpty) {
  EXPECT_THROW(TableArrivals(std::vector<std::vector<std::int64_t>>{}), ContractViolation);
  EXPECT_THROW(TableArrivals(std::vector<std::vector<std::int64_t>>{{}}), ContractViolation);
  EXPECT_THROW(TableArrivals({{1, 2}, {3}}), ContractViolation);
  EXPECT_THROW(TableArrivals(std::vector<std::vector<std::int64_t>>{{-1}}), ContractViolation);
}

}  // namespace
}  // namespace grefar
