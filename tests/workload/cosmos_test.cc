#include "workload/cosmos_like.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace grefar {
namespace {

CosmosTypeParams default_params() {
  CosmosTypeParams p;
  p.base_rate = 5.0;
  p.a_max = 60;
  return p;
}

TEST(CosmosLike, DeterministicPerSeed) {
  CosmosLikeArrivals a({default_params()}, 3);
  CosmosLikeArrivals b({default_params()}, 3);
  for (std::int64_t t = 0; t < 500; ++t) EXPECT_EQ(a.arrivals(t), b.arrivals(t));
}

TEST(CosmosLike, BoundednessHolds) {
  auto p = default_params();
  p.a_max = 8;
  p.base_rate = 50.0;
  CosmosLikeArrivals a({p}, 5);
  for (std::int64_t t = 0; t < 2000; ++t) {
    EXPECT_GE(a.arrivals(t)[0], 0);
    EXPECT_LE(a.arrivals(t)[0], 8);
  }
}

TEST(CosmosLike, DiurnalShapeRaisesDaytimeRates) {
  auto p = default_params();
  p.diurnal_amplitude = 0.8;
  p.peak_hour = 14.0;
  CosmosLikeArrivals a({p}, 7);
  double day = 0.0, night = 0.0;
  int days = 0;
  for (std::int64_t d = 0; d < 50; ++d) {
    std::int64_t day_slot = d * 24 + 14;
    std::int64_t night_slot = d * 24 + 2;
    day += a.rate(0, day_slot);
    night += a.rate(0, night_slot);
    ++days;
  }
  EXPECT_GT(day / days, 1.5 * night / days);
}

TEST(CosmosLike, WeekendsAreQuieter) {
  auto p = default_params();
  p.weekend_multiplier = 0.3;
  p.diurnal_amplitude = 0.0;  // isolate the weekend factor
  CosmosLikeArrivals a({p}, 9);
  double weekday = 0.0, weekend = 0.0;
  int wd = 0, we = 0;
  for (std::int64_t t = 0; t < 24 * 7 * 30; ++t) {
    std::int64_t day = (t / 24) % 7;
    if (day >= 5) {
      weekend += a.rate(0, t);
      ++we;
    } else {
      weekday += a.rate(0, t);
      ++wd;
    }
  }
  EXPECT_GT(weekday / wd, 2.0 * weekend / we);
}

TEST(CosmosLike, BurstsProduceOverdispersion) {
  // With bursting, variance of counts should exceed the Poisson variance
  // (variance == mean); compare the index of dispersion.
  auto p = default_params();
  p.diurnal_amplitude = 0.0;
  p.weekend_multiplier = 1.0;
  p.burst_multiplier = 6.0;
  p.idle_multiplier = 0.1;
  p.a_max = 1000;
  CosmosLikeArrivals a({p}, 11);
  double sum = 0.0, sum2 = 0.0;
  const int n = 20000;
  for (std::int64_t t = 0; t < n; ++t) {
    auto x = static_cast<double>(a.arrivals(t)[0]);
    sum += x;
    sum2 += x * x;
  }
  double mean = sum / n;
  double var = sum2 / n - mean * mean;
  EXPECT_GT(var / mean, 2.0);
}

TEST(CosmosLike, MultipleTypesAreIndependentStreams) {
  CosmosLikeArrivals a({default_params(), default_params()}, 13);
  EXPECT_EQ(a.num_job_types(), 2u);
  int same = 0;
  for (std::int64_t t = 0; t < 200; ++t) {
    auto row = a.arrivals(t);
    if (row[0] == row[1]) ++same;
  }
  EXPECT_LT(same, 150);  // occasional coincidences allowed
}

TEST(CosmosLike, MaxArrivalsExposesBound) {
  auto p = default_params();
  p.a_max = 42;
  CosmosLikeArrivals a({p}, 15);
  EXPECT_EQ(a.max_arrivals(0), 42);
  EXPECT_THROW(a.max_arrivals(1), ContractViolation);
}

TEST(CosmosLike, RejectsInvalidParams) {
  auto bad = default_params();
  bad.burst_on_prob = 1.5;
  EXPECT_THROW(CosmosLikeArrivals({bad}, 1), ContractViolation);
  bad = default_params();
  bad.a_max = -1;
  EXPECT_THROW(CosmosLikeArrivals({bad}, 1), ContractViolation);
  EXPECT_THROW(CosmosLikeArrivals({}, 1), ContractViolation);
}

TEST(CosmosLike, RateAndCountsAreConsistent) {
  // Empirical mean of counts should track the mean of the rate envelope.
  auto p = default_params();
  p.a_max = 500;
  CosmosLikeArrivals a({p}, 17);
  double count_sum = 0.0, rate_sum = 0.0;
  const int n = 20000;
  for (std::int64_t t = 0; t < n; ++t) {
    count_sum += static_cast<double>(a.arrivals(t)[0]);
    rate_sum += a.rate(0, t);
  }
  EXPECT_NEAR(count_sum / n, rate_sum / n, 0.15);
}

}  // namespace
}  // namespace grefar
