#include "workload/pareto_types.h"

#include <gtest/gtest.h>

#include "util/check.h"
#include "util/rng.h"

namespace grefar {
namespace {

ParetoWorkloadSpec spec() {
  ParetoWorkloadSpec s;
  s.name_prefix = "etl";
  s.account = 2;
  s.eligible_dcs = {0, 1};
  s.x_m = 1.0;
  s.alpha = 2.0;
  s.classes = 4;
  s.mean_work_per_slot = 40.0;
  s.cap_quantile = 0.95;
  return s;
}

TEST(ParetoQuantile, MatchesClosedForm) {
  // Pareto(1, 2): x(q) = (1-q)^(-1/2).
  EXPECT_DOUBLE_EQ(pareto_quantile(1.0, 2.0, 0.0), 1.0);
  EXPECT_NEAR(pareto_quantile(1.0, 2.0, 0.75), 2.0, 1e-12);
  EXPECT_NEAR(pareto_quantile(2.0, 1.0, 0.5), 4.0, 1e-12);
}

TEST(ParetoQuantile, MatchesEmpiricalSampler) {
  Rng rng(3);
  std::vector<double> samples;
  for (int i = 0; i < 200000; ++i) samples.push_back(rng.pareto(1.5, 2.5));
  std::sort(samples.begin(), samples.end());
  for (double q : {0.25, 0.5, 0.9}) {
    double empirical = samples[static_cast<std::size_t>(q * samples.size())];
    EXPECT_NEAR(pareto_quantile(1.5, 2.5, q), empirical, 0.02 * empirical);
  }
}

TEST(ParetoBandMean, FullRangeApproachesDistributionMean) {
  // Mean of Pareto(1, 2) is alpha x_m/(alpha-1) = 2; the 0..0.999 band mean
  // must be close (slightly below due to truncation).
  double m = pareto_band_mean(1.0, 2.0, 0.0, 0.999);
  EXPECT_NEAR(m, 2.0, 0.08);
  EXPECT_LT(m, 2.0);
}

TEST(ParetoBandMean, LiesWithinBandEndpoints) {
  for (double q = 0.0; q < 0.9; q += 0.3) {
    double lo = pareto_quantile(1.0, 1.8, q);
    double hi = pareto_quantile(1.0, 1.8, q + 0.1);
    double mean = pareto_band_mean(1.0, 1.8, q, q + 0.1);
    EXPECT_GT(mean, lo);
    EXPECT_LT(mean, hi);
  }
}

TEST(ParetoBandMean, MatchesMonteCarlo) {
  Rng rng(9);
  double sum = 0.0;
  int count = 0;
  double lo = pareto_quantile(1.0, 2.0, 0.5);
  double hi = pareto_quantile(1.0, 2.0, 0.75);
  for (int i = 0; i < 400000; ++i) {
    double x = rng.pareto(1.0, 2.0);
    if (x >= lo && x <= hi) {
      sum += x;
      ++count;
    }
  }
  EXPECT_NEAR(pareto_band_mean(1.0, 2.0, 0.5, 0.75), sum / count, 0.01);
}

TEST(BuildParetoClasses, ShapesAndMetadata) {
  auto classes = build_pareto_classes(spec());
  ASSERT_EQ(classes.size(), 4u);
  for (std::size_t g = 0; g < classes.size(); ++g) {
    EXPECT_EQ(classes[g].type.name, "etl-c" + std::to_string(g));
    EXPECT_EQ(classes[g].type.account, 2u);
    EXPECT_EQ(classes[g].type.eligible_dcs, (std::vector<DataCenterId>{0, 1}));
    EXPECT_GT(classes[g].mean_jobs_per_slot, 0.0);
  }
}

TEST(BuildParetoClasses, SizesStrictlyIncrease) {
  auto classes = build_pareto_classes(spec());
  for (std::size_t g = 1; g < classes.size(); ++g) {
    EXPECT_GT(classes[g].type.work, classes[g - 1].type.work);
  }
}

TEST(BuildParetoClasses, WorkBudgetIsExact) {
  auto classes = build_pareto_classes(spec());
  double total = 0.0;
  for (const auto& cls : classes) total += cls.type.work * cls.mean_jobs_per_slot;
  EXPECT_NEAR(total, 40.0, 1e-9);
}

TEST(BuildParetoClasses, EqualClassProbabilities) {
  auto classes = build_pareto_classes(spec());
  for (std::size_t g = 1; g < classes.size(); ++g) {
    EXPECT_NEAR(classes[g].mean_jobs_per_slot, classes[0].mean_jobs_per_slot, 1e-12);
  }
}

TEST(BuildParetoClasses, HeavierTailMeansBiggerTopClass) {
  auto light = spec();
  light.alpha = 3.0;
  auto heavy = spec();
  heavy.alpha = 1.2;
  EXPECT_GT(build_pareto_classes(heavy).back().type.work,
            build_pareto_classes(light).back().type.work);
}

TEST(BuildParetoClasses, SingleClassCollapsesToTruncatedMean) {
  auto s = spec();
  s.classes = 1;
  auto classes = build_pareto_classes(s);
  ASSERT_EQ(classes.size(), 1u);
  EXPECT_NEAR(classes[0].type.work, pareto_band_mean(1.0, 2.0, 0.0, 0.95), 1e-12);
}

TEST(BuildParetoClasses, TypesPassValidation) {
  auto classes = build_pareto_classes(spec());
  std::vector<JobType> types;
  for (const auto& cls : classes) types.push_back(cls.type);
  validate_job_types(types, /*num_data_centers=*/2, /*num_accounts=*/3);
}

TEST(BuildParetoClasses, RejectsBadSpecs) {
  auto s = spec();
  s.classes = 0;
  EXPECT_THROW(build_pareto_classes(s), ContractViolation);
  s = spec();
  s.alpha = 1.0;
  EXPECT_THROW(build_pareto_classes(s), ContractViolation);
  s = spec();
  s.cap_quantile = 1.0;
  EXPECT_THROW(build_pareto_classes(s), ContractViolation);
  s = spec();
  s.eligible_dcs.clear();
  EXPECT_THROW(build_pareto_classes(s), ContractViolation);
  s = spec();
  s.x_m = 0.0;
  EXPECT_THROW(build_pareto_classes(s), ContractViolation);
}

}  // namespace
}  // namespace grefar
