#include "obs/tracing_inspector.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/grefar.h"
#include "obs/counters.h"
#include "obs/trace_sink.h"
#include "parallel/sim_runner.h"
#include "scenario/paper_scenario.h"
#include "util/json.h"

namespace grefar {
namespace {

// Runs the small 2-DC scenario under GreFar for `slots` with a tracer
// attached and returns the serialized records (ring snapshot).
std::vector<std::string> run_traced(std::uint64_t seed, std::int64_t slots,
                                    std::shared_ptr<obs::TraceSink> sink = nullptr) {
  if (sink == nullptr) {
    sink = std::make_shared<obs::TraceSink>(obs::TraceSink::Options{});
  }
  PaperScenario scenario = make_small_scenario(seed);
  auto engine = make_scenario_engine(
      scenario,
      std::make_shared<GreFarScheduler>(scenario.config,
                                        paper_grefar_params(7.5, 10.0)),
      {}, AuditMode::kOff);
  engine->set_inspector(std::make_shared<obs::TracingInspector>(sink));
  engine->run(slots);
  return sink->ring();
}

TEST(TraceSink, RingKeepsMostRecentRecords) {
  obs::TraceSink::Options options;
  options.ring_capacity = 2;
  obs::TraceSink sink(options);
  JsonObject o;
  for (int i = 0; i < 5; ++i) {
    o["i"] = JsonValue(i);
    sink.write(JsonValue(o));
  }
  EXPECT_EQ(sink.records_written(), 5u);
  const auto ring = sink.ring();
  ASSERT_EQ(ring.size(), 2u);
  EXPECT_EQ(ring[0], "{\"i\":3}");
  EXPECT_EQ(ring[1], "{\"i\":4}");
}

TEST(TraceSink, WritesJsonlFile) {
  const std::string path = testing::TempDir() + "trace_sink_test.jsonl";
  std::remove(path.c_str());
  {
    obs::TraceSink::Options options;
    options.path = path;
    obs::TraceSink sink(options);
    JsonObject o;
    o["slot"] = JsonValue(0);
    sink.write(JsonValue(o));
    o["slot"] = JsonValue(1);
    sink.write(JsonValue(o));
  }  // destructor flushes
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "{\"slot\":0}");
  EXPECT_EQ(lines[1], "{\"slot\":1}");
  std::remove(path.c_str());
}

// The golden structural contract of one slot record: every documented field
// is present with the right shape, so downstream tools (trace_inspect) can
// rely on the schema.
TEST(TracingInspector, RecordSchemaIsComplete) {
  const auto ring = run_traced(/*seed=*/7, /*slots=*/20);
  ASSERT_EQ(ring.size(), 20u);
  auto parsed = parse_json(ring.front());
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  const JsonValue& rec = parsed.value();
  ASSERT_TRUE(rec.is_object());
  EXPECT_DOUBLE_EQ(rec.find("slot")->as_number(), 0.0);
  for (const char* key :
       {"prices", "central_queue", "dc_capacity", "dc_energy_cost",
        "dc_completions", "dc_delay_sum", "account_work", "arrivals",
        "central_after"}) {
    const JsonValue* field = rec.find(key);
    ASSERT_NE(field, nullptr) << key;
    EXPECT_TRUE(field->is_array()) << key;
  }
  EXPECT_TRUE(rec.find("fairness")->is_number());
  for (const char* key :
       {"dc_queue", "route_ask", "process_ask", "routed", "served_work",
        "dc_after"}) {
    const JsonValue* field = rec.find(key);
    ASSERT_NE(field, nullptr) << key;
    ASSERT_TRUE(field->is_array()) << key;
    // 2 DCs x 2 job types in the small scenario.
    ASSERT_EQ(field->as_array().size(), 2u) << key;
    EXPECT_EQ(field->as_array()[0].as_array().size(), 2u) << key;
  }
  // GreFar passes a TraceScope, so scheduler annotations must be present.
  const JsonValue* annotations = rec.find("annotations");
  ASSERT_NE(annotations, nullptr);
  EXPECT_NE(annotations->find("drift_weights_negative"), nullptr);
  EXPECT_NE(annotations->find("drift_weights_nonnegative"), nullptr);
  EXPECT_TRUE(annotations->find("tie_splits")->is_array());
}

TEST(TracingInspector, TraceIsByteIdenticalAcrossRuns) {
  const auto first = run_traced(/*seed=*/11, /*slots=*/30);
  const auto second = run_traced(/*seed=*/11, /*slots=*/30);
  EXPECT_EQ(first, second);
  const auto other_seed = run_traced(/*seed=*/12, /*slots=*/30);
  EXPECT_NE(first, other_seed);
}

TEST(TracingInspector, MatrixFreeModeOmitsMatrices) {
  auto sink = std::make_shared<obs::TraceSink>(obs::TraceSink::Options{});
  PaperScenario scenario = make_small_scenario(3);
  auto engine = make_scenario_engine(
      scenario,
      std::make_shared<GreFarScheduler>(scenario.config,
                                        paper_grefar_params(7.5, 0.0)),
      {}, AuditMode::kOff);
  obs::TracingInspectorOptions options;
  options.include_matrices = false;
  engine->set_inspector(std::make_shared<obs::TracingInspector>(sink, options));
  engine->run(3);
  auto parsed = parse_json(sink->ring().front());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().find("routed"), nullptr);
  EXPECT_NE(parsed.value().find("central_queue"), nullptr);
}

// A counting inspector for the tee test.
class CountingInspector final : public SlotInspector {
 public:
  void inspect(const SlotRecord& record) override {
    ++calls;
    last_slot = record.slot;
  }
  int calls = 0;
  std::int64_t last_slot = -1;
};

// End-to-end determinism: full engines fanned over a SimRunner produce
// bit-identical counter totals at any worker count.
TEST(Counters, EngineCounterTotalsAreJobCountInvariant) {
  auto run_with = [](std::size_t jobs) {
    obs::CounterRegistry reg;
    obs::CountersScope scope(&reg);
    std::vector<std::function<void()>> tasks;
    for (std::uint64_t leg = 0; leg < 4; ++leg) {
      tasks.push_back([leg] {
        PaperScenario scenario = make_small_scenario(100 + leg);
        auto engine = make_scenario_engine(
            scenario,
            std::make_shared<GreFarScheduler>(scenario.config,
                                              paper_grefar_params(7.5, 0.0)),
            {}, AuditMode::kOff);
        engine->run(40);
      });
    }
    SimRunner(jobs).run(tasks);
    return reg;
  };
  const obs::CounterRegistry serial = run_with(1);
  const obs::CounterRegistry pooled = run_with(8);
  EXPECT_EQ(serial.counters(), pooled.counters());
  EXPECT_EQ(serial.gauges(), pooled.gauges());
  EXPECT_EQ(serial.counter("engine.slots"), 160u);
}

TEST(TeeInspector, FansOutToAllInspectors) {
  auto a = std::make_shared<CountingInspector>();
  auto b = std::make_shared<CountingInspector>();
  PaperScenario scenario = make_small_scenario(5);
  auto engine = make_scenario_engine(
      scenario,
      std::make_shared<GreFarScheduler>(scenario.config,
                                        paper_grefar_params(7.5, 0.0)),
      {}, AuditMode::kOff);
  engine->set_inspector(std::make_shared<obs::TeeInspector>(
      std::vector<std::shared_ptr<SlotInspector>>{a, b}));
  engine->run(4);
  EXPECT_EQ(a->calls, 4);
  EXPECT_EQ(b->calls, 4);
  EXPECT_EQ(a->last_slot, 3);
  EXPECT_EQ(b->last_slot, 3);
}

}  // namespace
}  // namespace grefar
