#include "obs/profile.h"

#include <gtest/gtest.h>

#include <string>

namespace grefar {
namespace {

TEST(ProfileRegistry, RecordsAndMerges) {
  obs::ProfileRegistry a, b;
  a.record("phase", 100.0);
  a.record("phase", 300.0);
  b.record("phase", 600.0, 2);
  b.record("other", 50.0);
  a.merge(b);
  const auto& phases = a.phases();
  ASSERT_EQ(phases.count("phase"), 1u);
  EXPECT_EQ(phases.at("phase").calls, 4u);
  EXPECT_DOUBLE_EQ(phases.at("phase").total_ns, 1000.0);
  EXPECT_EQ(phases.at("other").calls, 1u);
}

TEST(ProfileRegistry, SummaryTableListsPhases) {
  obs::ProfileRegistry reg;
  reg.record("decide", 2e6, 10);
  reg.record("serve", 1e6, 10);
  const std::string table = reg.summary_table();
  EXPECT_NE(table.find("decide"), std::string::npos);
  EXPECT_NE(table.find("serve"), std::string::npos);
  // Sorted by total time descending: decide before serve.
  EXPECT_LT(table.find("decide"), table.find("serve"));
}

TEST(ProfileRegistry, DumpShape) {
  obs::ProfileRegistry reg;
  reg.record("phase", 2e6, 4);
  const JsonValue d = reg.dump();
  ASSERT_TRUE(d.is_object());
  EXPECT_DOUBLE_EQ(d.find("phase")->find("calls")->as_number(), 4.0);
  EXPECT_DOUBLE_EQ(d.find("phase")->find("total_ms")->as_number(), 2.0);
}

TEST(ScopedTimer, NoOpWithoutActiveRegistry) {
  ASSERT_EQ(obs::active_profile(), nullptr);
  { obs::ScopedTimer timer("unobserved"); }
}

TEST(ScopedTimer, RecordsIntoActiveRegistry) {
  obs::ProfileRegistry reg;
  {
    obs::ProfileScope scope(&reg);
    { obs::ScopedTimer timer("work"); }
    { obs::ScopedTimer timer("work"); }
  }
  ASSERT_EQ(reg.phases().count("work"), 1u);
  EXPECT_EQ(reg.phases().at("work").calls, 2u);
  EXPECT_GE(reg.phases().at("work").total_ns, 0.0);
  // Outside the scope nothing is recorded.
  { obs::ScopedTimer timer("work"); }
  EXPECT_EQ(reg.phases().at("work").calls, 2u);
}

}  // namespace
}  // namespace grefar
