#include "obs/counters.h"

#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "parallel/sim_runner.h"

namespace grefar {
namespace {

TEST(CounterRegistry, CountsAndGauges) {
  obs::CounterRegistry reg;
  EXPECT_TRUE(reg.empty());
  reg.count("a");
  reg.count("a", 4);
  reg.count("b", 2);
  reg.gauge_max("g", 1.5);
  reg.gauge_max("g", 0.5);  // lower value does not win
  EXPECT_EQ(reg.counter("a"), 5u);
  EXPECT_EQ(reg.counter("b"), 2u);
  EXPECT_EQ(reg.counter("missing"), 0u);
  EXPECT_DOUBLE_EQ(reg.gauge("g"), 1.5);
  EXPECT_FALSE(reg.empty());
}

TEST(CounterRegistry, MergeSumsCountersAndMaxesGauges) {
  obs::CounterRegistry a, b;
  a.count("shared", 3);
  a.count("only_a", 1);
  a.gauge_max("g", 2.0);
  b.count("shared", 4);
  b.count("only_b", 7);
  b.gauge_max("g", 5.0);
  a.merge(b);
  EXPECT_EQ(a.counter("shared"), 7u);
  EXPECT_EQ(a.counter("only_a"), 1u);
  EXPECT_EQ(a.counter("only_b"), 7u);
  EXPECT_DOUBLE_EQ(a.gauge("g"), 5.0);
}

TEST(CounterRegistry, DumpShape) {
  obs::CounterRegistry reg;
  reg.count("x", 2);
  reg.gauge_max("y", 3.0);
  const JsonValue d = reg.dump();
  ASSERT_TRUE(d.is_object());
  EXPECT_DOUBLE_EQ(d.find("counters")->find("x")->as_number(), 2.0);
  EXPECT_DOUBLE_EQ(d.find("gauges")->find("y")->as_number(), 3.0);
}

TEST(Counters, FreeFunctionsAreNoOpsWithoutActiveRegistry) {
  ASSERT_EQ(obs::active_counters(), nullptr);
  EXPECT_FALSE(obs::counting());
  obs::count("ignored");        // must not crash or leak anywhere
  obs::gauge_max("ignored", 1.0);
}

TEST(Counters, ScopeInstallsAndRestores) {
  obs::CounterRegistry outer, inner;
  {
    obs::CountersScope outer_scope(&outer);
    EXPECT_EQ(obs::active_counters(), &outer);
    obs::count("seen");
    {
      obs::CountersScope inner_scope(&inner);
      EXPECT_EQ(obs::active_counters(), &inner);
      obs::count("seen");
    }
    EXPECT_EQ(obs::active_counters(), &outer);
    {
      obs::CountersScope off(nullptr);  // nested deactivation
      EXPECT_FALSE(obs::counting());
      obs::count("seen");
    }
    obs::count("seen");
  }
  EXPECT_EQ(obs::active_counters(), nullptr);
  EXPECT_EQ(outer.counter("seen"), 2u);
  EXPECT_EQ(inner.counter("seen"), 1u);
}

// The determinism contract: SimRunner merges per-task registries in task
// order, so totals cannot depend on the worker count.
TEST(Counters, SimRunnerTotalsAreJobCountInvariant) {
  auto run_with = [](std::size_t jobs) {
    obs::CounterRegistry reg;
    obs::CountersScope scope(&reg);
    std::vector<std::function<void()>> tasks;
    for (std::uint64_t i = 0; i < 8; ++i) {
      tasks.push_back([i] {
        obs::count("task.runs");
        obs::count("task.work", i);
        obs::gauge_max("task.max", static_cast<double>(i));
      });
    }
    SimRunner(jobs).run(tasks);
    return reg;
  };
  const obs::CounterRegistry serial = run_with(1);
  const obs::CounterRegistry pooled = run_with(4);
  EXPECT_EQ(serial.counters(), pooled.counters());
  EXPECT_EQ(serial.gauges(), pooled.gauges());
  EXPECT_EQ(serial.counter("task.runs"), 8u);
  EXPECT_EQ(serial.counter("task.work"), 28u);
  EXPECT_DOUBLE_EQ(serial.gauge("task.max"), 7.0);
}

}  // namespace
}  // namespace grefar
