// Fuzz harness for the JSON config pipeline: parse_json plus the three
// config decoders layered on it. Structural parse errors and semantic
// decode errors both surface as Result errors; grefar::ContractViolation is
// the library's defined failure mode for values that pass decoding but
// violate construction contracts, so it is caught and ignored. Anything
// else that escapes — ASan/UBSan reports, other exceptions, aborts — is a
// finding.
//
// Built by -DGREFAR_FUZZ=ON: as a libFuzzer binary under clang, and always
// as a corpus-replay ctest binary (fuzz_driver_main.cc) that works under
// the pinned GCC toolchain with GREFAR_SANITIZE=address,undefined.
#include <cstddef>
#include <cstdint>
#include <string_view>

#include "scenario/config_io.h"
#include "util/check.h"
#include "util/json.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string_view text(reinterpret_cast<const char*>(data), size);
  try {
    auto parsed = grefar::parse_json(text);
    if (!parsed.ok()) return 0;
    const grefar::JsonValue& json = parsed.value();
    (void)grefar::cluster_config_from_json(json);
    (void)grefar::grefar_params_from_json(json);
    (void)grefar::experiment_config_from_json(json);
  } catch (const grefar::ContractViolation&) {
    // Reaching a contract check on adversarial input is not a finding.
  }
  return 0;
}
