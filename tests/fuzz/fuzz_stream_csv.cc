// Differential fuzz harness for the streaming CSV parser: the same document
// parsed whole and parsed in chunks (split points derived from the input
// bytes themselves, so the fuzzer controls where chunk boundaries land) must
// produce the identical row stream, positions and error. The first two input
// bytes pick the chunking and dialect; the rest is the CSV text.
//
// grefar::ContractViolation is the defined failure mode for contract-checked
// construction and is caught; a divergence aborts (the finding), and
// sanitizer reports are findings as usual.
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

#include "trace/stream_csv.h"
#include "util/check.h"

namespace {

struct Outcome {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::uint64_t> row_bytes;  // byte offset of each row start
  bool ok = false;
  std::string error;

  bool operator==(const Outcome& other) const {
    return ok == other.ok && error == other.error && rows == other.rows &&
           row_bytes == other.row_bytes;
  }
};

Outcome parse(std::string_view text, std::size_t chunk,
              const grefar::CsvDialect& dialect,
              const grefar::CsvLimits& limits) {
  Outcome out;
  grefar::StreamCsvParser parser(
      [&out](const std::vector<std::string>& fields, std::uint64_t,
             const grefar::CsvPosition& row_start) -> grefar::Status {
        out.rows.push_back(fields);
        out.row_bytes.push_back(row_start.byte);
        return {};
      },
      dialect, limits);
  grefar::Status st;
  if (chunk == 0) {
    st = parser.feed(text);
  } else {
    for (std::size_t i = 0; st.ok() && i < text.size(); i += chunk) {
      st = parser.feed(text.substr(i, chunk));
    }
  }
  if (st.ok()) st = parser.finish();
  out.ok = st.ok();
  if (!st.ok()) out.error = st.error().message;
  return out;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size < 2) return 0;
  // Byte 0: chunk size 1..64. Byte 1: dialect bits.
  const std::size_t chunk = 1 + data[0] % 64;
  grefar::CsvDialect dialect;
  dialect.strict_quotes = (data[1] & 1) != 0;
  dialect.skip_bare_cr = (data[1] & 2) != 0;
  if ((data[1] & 4) != 0) dialect.separator = ';';
  grefar::CsvLimits limits;
  limits.max_field_bytes = 1 << 10;
  limits.max_fields_per_row = 64;
  limits.max_rows = 4096;
  const std::string_view text(reinterpret_cast<const char*>(data + 2),
                              size - 2);
  try {
    const Outcome whole = parse(text, 0, dialect, limits);
    const Outcome chunked = parse(text, chunk, dialect, limits);
    if (!(whole == chunked)) {
      std::abort();  // chunk-boundary divergence: the bug class we hunt
    }
  } catch (const grefar::ContractViolation&) {
  }
  return 0;
}
