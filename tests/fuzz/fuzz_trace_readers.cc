// Fuzz harness for the CSV trace readers. The first input byte selects the
// expected row width (1..8 columns); the remainder is the CSV text, fed to
// both the job-trace (integer) and price-trace (floating-point) readers.
// Malformed rows surface as Result errors; grefar::ContractViolation is the
// defined failure mode for contract-checked construction and is caught.
// Sanitizer reports or any other escape are findings.
#include <cstddef>
#include <cstdint>
#include <string_view>

#include "trace/job_trace.h"
#include "trace/price_trace.h"
#include "util/check.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size == 0) return 0;
  const std::size_t width = 1 + data[0] % 8;
  const std::string_view csv(reinterpret_cast<const char*>(data + 1),
                             size - 1);
  try {
    (void)grefar::job_trace_from_csv(csv, width);
  } catch (const grefar::ContractViolation&) {
  }
  try {
    (void)grefar::price_trace_from_csv(csv, width);
  } catch (const grefar::ContractViolation&) {
  }
  return 0;
}
