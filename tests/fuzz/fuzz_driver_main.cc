// Corpus-replay driver: links against a harness's LLVMFuzzerTestOneInput
// and replays every file (or directory of files) named on the command line,
// in sorted order. This is how the pinned GCC toolchain — which has no
// libFuzzer runtime — runs the checked-in corpora under ASan/UBSan as a
// ctest; under clang the same harness source links -fsanitize=fuzzer
// instead and this file is not used.
#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <iterator>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

int replay_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << "fuzz replay: cannot open " << path << "\n";
    return 1;
  }
  std::vector<std::uint8_t> bytes{std::istreambuf_iterator<char>(in), {}};
  static const std::uint8_t empty = 0;
  LLVMFuzzerTestOneInput(bytes.empty() ? &empty : bytes.data(), bytes.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: " << argv[0] << " <corpus file or directory>...\n";
    return 2;
  }
  int replayed = 0;
  for (int i = 1; i < argc; ++i) {
    const std::filesystem::path arg(argv[i]);
    if (std::filesystem::is_directory(arg)) {
      std::vector<std::filesystem::path> files;
      for (const auto& entry : std::filesystem::directory_iterator(arg)) {
        if (entry.is_regular_file()) files.push_back(entry.path());
      }
      std::sort(files.begin(), files.end());
      for (const auto& file : files) {
        if (replay_file(file) != 0) return 1;
        ++replayed;
      }
    } else {
      if (replay_file(arg) != 0) return 1;
      ++replayed;
    }
  }
  std::cout << "fuzz replay: " << replayed << " inputs, no crashes\n";
  return 0;
}
