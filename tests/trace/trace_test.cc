#include "trace/job_trace.h"
#include "trace/price_trace.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>

#include "price/price_model.h"
#include "util/check.h"
#include "workload/arrival_process.h"

namespace grefar {
namespace {

TEST(JobTrace, MaterializeMatchesProcess) {
  ConstantArrivals a({2, 3});
  auto table = materialize_arrivals(a, 4);
  ASSERT_EQ(table.size(), 4u);
  EXPECT_EQ(table[2], (std::vector<std::int64_t>{2, 3}));
}

TEST(JobTrace, CsvRoundTrip) {
  std::vector<std::vector<std::int64_t>> counts{{1, 0, 2}, {0, 0, 0}, {0, 5, 1}};
  auto csv = job_trace_to_csv(counts);
  auto parsed = job_trace_from_csv(csv, 3);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), counts);
}

TEST(JobTrace, SparseFormatOmitsZeros) {
  auto csv = job_trace_to_csv({{0, 0}, {1, 0}});
  // Only one data row expected.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 2);
}

TEST(JobTrace, RejectsMissingHeader) {
  EXPECT_FALSE(job_trace_from_csv("0,0,1\n", 2).ok());
  EXPECT_FALSE(job_trace_from_csv("", 2).ok());
}

TEST(JobTrace, RejectsMalformedRows) {
  EXPECT_FALSE(job_trace_from_csv("slot,type,count\n0,0\n", 2).ok());
  EXPECT_FALSE(job_trace_from_csv("slot,type,count\nx,0,1\n", 2).ok());
  EXPECT_FALSE(job_trace_from_csv("slot,type,count\n0,9,1\n", 2).ok());
  EXPECT_FALSE(job_trace_from_csv("slot,type,count\n-1,0,1\n", 2).ok());
  EXPECT_FALSE(job_trace_from_csv("slot,type,count\n0,0,-2\n", 2).ok());
  EXPECT_FALSE(job_trace_from_csv("slot,type,count\n", 2).ok());
}

TEST(JobTrace, AccumulatesDuplicateEntries) {
  auto parsed = job_trace_from_csv("slot,type,count\n0,0,1\n0,0,2\n", 1);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value()[0][0], 3);
}

TEST(JobTrace, RoundTripsThroughTableArrivals) {
  ConstantArrivals original({4, 1});
  auto table = materialize_arrivals(original, 8);
  auto csv = job_trace_to_csv(table);
  TableArrivals replayed(job_trace_from_csv(csv, 2).value());
  for (std::int64_t t = 0; t < 8; ++t) {
    EXPECT_EQ(replayed.arrivals(t), original.arrivals(t));
  }
}

TEST(JobTrace, FileRoundTrip) {
  std::string path = ::testing::TempDir() + "/grefar_jobs.csv";
  std::vector<std::vector<std::int64_t>> counts{{1, 2}, {3, 4}};
  ASSERT_TRUE(write_job_trace(path, counts).ok());
  auto parsed = read_job_trace(path, 2);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), counts);
  std::remove(path.c_str());
}

TEST(ValuedJobTrace, CsvRoundTrip) {
  // Dyadic annotations survive the 6-decimal fixed-point format exactly.
  std::vector<std::vector<ArrivalBatch>> slots(3);
  slots[0] = {{.type = 0, .count = 3, .value = 2.5, .decay_rate = 0.125,
               .deadline = 12},
              {.type = 1, .count = 1, .value = 0.25, .decay_rate = 0.0,
               .deadline = kNoDeadline}};
  slots[2] = {{.type = 1, .count = 4, .value = 1.0, .decay_rate = 0.5,
               .deadline = 0}};
  const std::string csv = valued_job_trace_to_csv(slots);
  EXPECT_EQ(csv.substr(0, csv.find('\n')),
            "slot,type,count,value,decay,deadline");
  auto parsed = valued_job_trace_from_csv(csv, 2);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().schema, JobTraceSchema::kValued);
  ASSERT_EQ(parsed.value().slots.size(), 3u);
  EXPECT_TRUE(parsed.value().slots[1].empty());
  for (std::size_t t = 0; t < slots.size(); ++t) {
    ASSERT_EQ(parsed.value().slots[t].size(), slots[t].size()) << "slot " << t;
    for (std::size_t k = 0; k < slots[t].size(); ++k) {
      const ArrivalBatch& in = slots[t][k];
      const ArrivalBatch& out = parsed.value().slots[t][k];
      EXPECT_EQ(out.type, in.type);
      EXPECT_EQ(out.count, in.count);
      EXPECT_EQ(out.value, in.value);
      EXPECT_EQ(out.decay_rate, in.decay_rate);
      EXPECT_EQ(out.deadline, in.deadline);  // incl. kNoDeadline <-> -1
    }
  }
}

TEST(ValuedJobTrace, ReaderAcceptsV1WithDeferredAnnotations) {
  // A v1 document through the valued reader: batches keep the "defer to the
  // JobType" sentinels, so existing traces parse unchanged everywhere.
  auto parsed =
      valued_job_trace_from_csv("slot,type,count\n0,0,2\n0,1,1\n", 2);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().schema, JobTraceSchema::kCounts);
  ASSERT_EQ(parsed.value().slots.size(), 1u);
  ASSERT_EQ(parsed.value().slots[0].size(), 2u);
  for (const ArrivalBatch& b : parsed.value().slots[0]) {
    EXPECT_TRUE(std::isnan(b.value));
    EXPECT_TRUE(std::isnan(b.decay_rate));
    EXPECT_EQ(b.deadline, kTypeDefaultDeadline);
  }
}

TEST(ValuedJobTrace, RejectsUnknownHeaderNamingBothVersions) {
  auto parsed = valued_job_trace_from_csv("slot,count\n0,1\n", 2);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error().message.find("'slot,type,count' (v1)"),
            std::string::npos);
  EXPECT_NE(
      parsed.error().message.find("'slot,type,count,value,decay,deadline' (v2)"),
      std::string::npos);
}

TEST(ValuedJobTrace, MalformedRowsFailWithByteOffsets) {
  const std::string header = "slot,type,count,value,decay,deadline\n";
  const struct {
    const char* row;
    const char* needle;
  } cases[] = {
      {"0,0,1\n", "needs 6 fields (v2 schema)"},
      {"0,0,1,abc,0.0,-1\n", "is malformed"},
      {"0,0,1,-2.0,0.0,-1\n", "non-finite or negative job value"},
      {"0,0,1,1.0,nan,-1\n", "non-finite or negative decay rate"},
      {"0,0,1,1.0,-0.5,-1\n", "non-finite or negative decay rate"},
      {"0,0,1,1.0,0.0,-2\n", "deadline below -1"},
      {"0,9,1,1.0,0.0,-1\n", "out-of-range type id"},
      {"-1,0,1,1.0,0.0,-1\n", "has negative value"},
  };
  for (const auto& c : cases) {
    auto parsed = valued_job_trace_from_csv(header + c.row, 2);
    ASSERT_FALSE(parsed.ok()) << c.row;
    EXPECT_NE(parsed.error().message.find(c.needle), std::string::npos)
        << parsed.error().message;
    // Every diagnostic names the row's byte position: the data row starts
    // right after the 37-byte header.
    EXPECT_NE(parsed.error().message.find("at byte 37 (line 2, col 1)"),
              std::string::npos)
        << parsed.error().message;
  }
}

TEST(ValuedJobTrace, WriterRejectsDeferredSentinels) {
  // The sentinel "defer to type" encodings have no file representation:
  // writers must resolve JobType defaults first (contract-checked).
  std::vector<std::vector<ArrivalBatch>> nan_value(1);
  nan_value[0] = {{.type = 0, .count = 1}};  // value stays NaN
  EXPECT_THROW(valued_job_trace_to_csv(nan_value), ContractViolation);

  std::vector<std::vector<ArrivalBatch>> deferred_deadline(1);
  deferred_deadline[0] = {
      {.type = 0, .count = 1, .value = 1.0, .decay_rate = 0.0}};
  EXPECT_THROW(valued_job_trace_to_csv(deferred_deadline), ContractViolation);
}

TEST(ValuedJobTrace, FileRoundTrip) {
  std::string path = ::testing::TempDir() + "/grefar_valued_jobs.csv";
  std::vector<std::vector<ArrivalBatch>> slots(2);
  slots[1] = {{.type = 0, .count = 2, .value = 3.5, .decay_rate = 0.25,
               .deadline = 8}};
  ASSERT_TRUE(write_valued_job_trace(path, slots).ok());
  auto parsed = read_valued_job_trace(path, 1);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed.value().slots.size(), 2u);
  ASSERT_EQ(parsed.value().slots[1].size(), 1u);
  EXPECT_EQ(parsed.value().slots[1][0].value, 3.5);
  EXPECT_EQ(parsed.value().slots[1][0].deadline, 8);
  std::remove(path.c_str());
}

TEST(PriceTrace, MaterializeAndRoundTrip) {
  ConstantPriceModel m({0.4, 0.5});
  auto series = materialize_prices(m, 3);
  ASSERT_EQ(series.size(), 2u);
  ASSERT_EQ(series[0].size(), 3u);
  auto csv = price_trace_to_csv(series);
  auto parsed = price_trace_from_csv(csv, 2);
  ASSERT_TRUE(parsed.ok());
  for (std::size_t dc = 0; dc < 2; ++dc) {
    for (std::size_t t = 0; t < 3; ++t) {
      EXPECT_NEAR(parsed.value()[dc][t], series[dc][t], 1e-6);
    }
  }
}

TEST(PriceTrace, RejectsGaps) {
  // dc 0 has slots 0 and 2 but not 1.
  EXPECT_FALSE(
      price_trace_from_csv("slot,dc,price\n0,0,0.4\n2,0,0.5\n", 1).ok());
}

TEST(PriceTrace, RejectsMalformed) {
  EXPECT_FALSE(price_trace_from_csv("", 1).ok());
  EXPECT_FALSE(price_trace_from_csv("bad,header,x\n", 1).ok());
  EXPECT_FALSE(price_trace_from_csv("slot,dc,price\n0,0\n", 1).ok());
  EXPECT_FALSE(price_trace_from_csv("slot,dc,price\n0,5,0.4\n", 1).ok());
  EXPECT_FALSE(price_trace_from_csv("slot,dc,price\n0,0,0\n", 1).ok());
  EXPECT_FALSE(price_trace_from_csv("slot,dc,price\n0,0,-0.5\n", 1).ok());
  EXPECT_FALSE(price_trace_from_csv("slot,dc,price\n", 1).ok());
}

TEST(PriceTrace, RoundTripsThroughTablePriceModel) {
  auto m = make_paper_price_model(1);
  auto series = materialize_prices(*m, 48);
  auto csv = price_trace_to_csv(series);
  TablePriceModel replayed(price_trace_from_csv(csv, 3).value());
  for (std::size_t dc = 0; dc < 3; ++dc) {
    for (std::int64_t t = 0; t < 48; ++t) {
      EXPECT_NEAR(replayed.price(dc, t), m->price(dc, t), 1e-6);
    }
  }
}

TEST(PriceTrace, FileRoundTrip) {
  std::string path = ::testing::TempDir() + "/grefar_prices.csv";
  std::vector<std::vector<double>> series{{0.4, 0.45}, {0.5, 0.55}};
  ASSERT_TRUE(write_price_trace(path, series).ok());
  auto parsed = read_price_trace(path, 2);
  ASSERT_TRUE(parsed.ok());
  EXPECT_NEAR(parsed.value()[1][1], 0.55, 1e-9);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace grefar
