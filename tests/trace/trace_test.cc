#include "trace/job_trace.h"
#include "trace/price_trace.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "price/price_model.h"
#include "workload/arrival_process.h"

namespace grefar {
namespace {

TEST(JobTrace, MaterializeMatchesProcess) {
  ConstantArrivals a({2, 3});
  auto table = materialize_arrivals(a, 4);
  ASSERT_EQ(table.size(), 4u);
  EXPECT_EQ(table[2], (std::vector<std::int64_t>{2, 3}));
}

TEST(JobTrace, CsvRoundTrip) {
  std::vector<std::vector<std::int64_t>> counts{{1, 0, 2}, {0, 0, 0}, {0, 5, 1}};
  auto csv = job_trace_to_csv(counts);
  auto parsed = job_trace_from_csv(csv, 3);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), counts);
}

TEST(JobTrace, SparseFormatOmitsZeros) {
  auto csv = job_trace_to_csv({{0, 0}, {1, 0}});
  // Only one data row expected.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 2);
}

TEST(JobTrace, RejectsMissingHeader) {
  EXPECT_FALSE(job_trace_from_csv("0,0,1\n", 2).ok());
  EXPECT_FALSE(job_trace_from_csv("", 2).ok());
}

TEST(JobTrace, RejectsMalformedRows) {
  EXPECT_FALSE(job_trace_from_csv("slot,type,count\n0,0\n", 2).ok());
  EXPECT_FALSE(job_trace_from_csv("slot,type,count\nx,0,1\n", 2).ok());
  EXPECT_FALSE(job_trace_from_csv("slot,type,count\n0,9,1\n", 2).ok());
  EXPECT_FALSE(job_trace_from_csv("slot,type,count\n-1,0,1\n", 2).ok());
  EXPECT_FALSE(job_trace_from_csv("slot,type,count\n0,0,-2\n", 2).ok());
  EXPECT_FALSE(job_trace_from_csv("slot,type,count\n", 2).ok());
}

TEST(JobTrace, AccumulatesDuplicateEntries) {
  auto parsed = job_trace_from_csv("slot,type,count\n0,0,1\n0,0,2\n", 1);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value()[0][0], 3);
}

TEST(JobTrace, RoundTripsThroughTableArrivals) {
  ConstantArrivals original({4, 1});
  auto table = materialize_arrivals(original, 8);
  auto csv = job_trace_to_csv(table);
  TableArrivals replayed(job_trace_from_csv(csv, 2).value());
  for (std::int64_t t = 0; t < 8; ++t) {
    EXPECT_EQ(replayed.arrivals(t), original.arrivals(t));
  }
}

TEST(JobTrace, FileRoundTrip) {
  std::string path = ::testing::TempDir() + "/grefar_jobs.csv";
  std::vector<std::vector<std::int64_t>> counts{{1, 2}, {3, 4}};
  ASSERT_TRUE(write_job_trace(path, counts).ok());
  auto parsed = read_job_trace(path, 2);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), counts);
  std::remove(path.c_str());
}

TEST(PriceTrace, MaterializeAndRoundTrip) {
  ConstantPriceModel m({0.4, 0.5});
  auto series = materialize_prices(m, 3);
  ASSERT_EQ(series.size(), 2u);
  ASSERT_EQ(series[0].size(), 3u);
  auto csv = price_trace_to_csv(series);
  auto parsed = price_trace_from_csv(csv, 2);
  ASSERT_TRUE(parsed.ok());
  for (std::size_t dc = 0; dc < 2; ++dc) {
    for (std::size_t t = 0; t < 3; ++t) {
      EXPECT_NEAR(parsed.value()[dc][t], series[dc][t], 1e-6);
    }
  }
}

TEST(PriceTrace, RejectsGaps) {
  // dc 0 has slots 0 and 2 but not 1.
  EXPECT_FALSE(
      price_trace_from_csv("slot,dc,price\n0,0,0.4\n2,0,0.5\n", 1).ok());
}

TEST(PriceTrace, RejectsMalformed) {
  EXPECT_FALSE(price_trace_from_csv("", 1).ok());
  EXPECT_FALSE(price_trace_from_csv("bad,header,x\n", 1).ok());
  EXPECT_FALSE(price_trace_from_csv("slot,dc,price\n0,0\n", 1).ok());
  EXPECT_FALSE(price_trace_from_csv("slot,dc,price\n0,5,0.4\n", 1).ok());
  EXPECT_FALSE(price_trace_from_csv("slot,dc,price\n0,0,0\n", 1).ok());
  EXPECT_FALSE(price_trace_from_csv("slot,dc,price\n0,0,-0.5\n", 1).ok());
  EXPECT_FALSE(price_trace_from_csv("slot,dc,price\n", 1).ok());
}

TEST(PriceTrace, RoundTripsThroughTablePriceModel) {
  auto m = make_paper_price_model(1);
  auto series = materialize_prices(*m, 48);
  auto csv = price_trace_to_csv(series);
  TablePriceModel replayed(price_trace_from_csv(csv, 3).value());
  for (std::size_t dc = 0; dc < 3; ++dc) {
    for (std::int64_t t = 0; t < 48; ++t) {
      EXPECT_NEAR(replayed.price(dc, t), m->price(dc, t), 1e-6);
    }
  }
}

TEST(PriceTrace, FileRoundTrip) {
  std::string path = ::testing::TempDir() + "/grefar_prices.csv";
  std::vector<std::vector<double>> series{{0.4, 0.45}, {0.5, 0.55}};
  ASSERT_TRUE(write_price_trace(path, series).ok());
  auto parsed = read_price_trace(path, 2);
  ASSERT_TRUE(parsed.ok());
  EXPECT_NEAR(parsed.value()[1][1], 0.55, 1e-9);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace grefar
