#include "trace/stream_source.h"

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "scenario/serve_scenario.h"
#include "trace/job_trace.h"
#include "trace/price_trace.h"
#include "util/check.h"

namespace grefar {
namespace {

std::unique_ptr<std::istream> stream_of(const std::string& text) {
  return std::make_unique<std::istringstream>(text);
}

/// Drains a streaming job source; on success returns the emitted table.
Result<std::vector<std::vector<std::int64_t>>> drain_jobs(
    const std::string& csv, std::size_t num_types,
    StreamSourceOptions options = {}) {
  StreamingJobTraceSource source(stream_of(csv), num_types, options);
  std::vector<std::vector<std::int64_t>> table;
  std::vector<std::int64_t> counts;
  while (true) {
    auto more = source.next_slot_into(counts);
    if (!more.ok()) return more.error();
    if (!more.value()) return table;
    table.push_back(counts);
  }
}

Result<std::vector<std::vector<double>>> drain_prices(
    const std::string& csv, std::size_t num_dcs,
    StreamSourceOptions options = {}) {
  StreamingPriceTraceSource source(stream_of(csv), num_dcs, options);
  std::vector<std::vector<double>> by_slot;
  std::vector<double> prices;
  while (true) {
    auto more = source.next_slot_into(prices);
    if (!more.ok()) return more.error();
    if (!more.value()) break;
    by_slot.push_back(prices);
  }
  // Transpose to the materialized series[dc][t] layout for comparison.
  std::vector<std::vector<double>> series(num_dcs);
  for (std::size_t t = 0; t < by_slot.size(); ++t) {
    for (std::size_t d = 0; d < num_dcs; ++d) series[d].push_back(by_slot[t][d]);
  }
  return series;
}

/// Densifies a parsed batch trace to the count-table layout next_slot_into
/// emits (duplicate slot/type rows accumulate, absent slots go all-zero).
std::vector<std::vector<std::int64_t>> densify(const ValuedJobTrace& trace,
                                               std::size_t num_types) {
  std::vector<std::vector<std::int64_t>> table(
      trace.slots.size(), std::vector<std::int64_t>(num_types, 0));
  for (std::size_t t = 0; t < trace.slots.size(); ++t) {
    for (const ArrivalBatch& b : trace.slots[t]) table[t][b.type] += b.count;
  }
  return table;
}

/// The golden-equivalence contract: streaming and materialized readers agree
/// on success/failure, and bit-for-bit on the data when both succeed. A
/// huge window removes the ordering restriction the batch readers never had.
/// The streaming counts API accepts either schema version, so its
/// materialized counterpart is the valued reader densified; the v1-only
/// materializer must also agree except on v2 documents, which it rejects by
/// design (unknown header).
void expect_job_equivalence(const std::string& csv, std::size_t num_types) {
  StreamSourceOptions options;
  options.reorder_window = 1 << 20;
  auto streamed = drain_jobs(csv, num_types, options);
  auto valued = valued_job_trace_from_csv(csv, num_types);
  ASSERT_EQ(streamed.ok(), valued.ok()) << csv;
  if (valued.ok()) {
    EXPECT_EQ(streamed.value(), densify(valued.value(), num_types)) << csv;
  }
  auto batch = job_trace_from_csv(csv, num_types);
  if (valued.ok() && valued.value().schema == JobTraceSchema::kValued) {
    EXPECT_FALSE(batch.ok()) << csv;
  } else {
    ASSERT_EQ(batch.ok(), streamed.ok()) << csv;
    if (batch.ok()) {
      EXPECT_EQ(streamed.value(), batch.value()) << csv;
    }
  }
}

/// Drains a streaming job source through the batch API; on success returns
/// the per-slot batches (the ValuedJobTrace::slots layout).
Result<std::vector<std::vector<ArrivalBatch>>> drain_batches(
    const std::string& csv, std::size_t num_types,
    StreamSourceOptions options = {}) {
  StreamingJobTraceSource source(stream_of(csv), num_types, options);
  std::vector<std::vector<ArrivalBatch>> slots;
  std::vector<ArrivalBatch> batches;
  while (true) {
    auto more = source.next_slot_batches_into(batches);
    if (!more.ok()) return more.error();
    if (!more.value()) return slots;
    slots.push_back(batches);
  }
}

void expect_batches_eq(const std::vector<std::vector<ArrivalBatch>>& a,
                       const std::vector<std::vector<ArrivalBatch>>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t t = 0; t < a.size(); ++t) {
    ASSERT_EQ(a[t].size(), b[t].size()) << "slot " << t;
    for (std::size_t k = 0; k < a[t].size(); ++k) {
      EXPECT_EQ(a[t][k].type, b[t][k].type);
      EXPECT_EQ(a[t][k].count, b[t][k].count);
      // Bit-for-bit incl. the NaN "defer to type" sentinel.
      EXPECT_TRUE(a[t][k].value == b[t][k].value ||
                  (std::isnan(a[t][k].value) && std::isnan(b[t][k].value)));
      EXPECT_TRUE(a[t][k].decay_rate == b[t][k].decay_rate ||
                  (std::isnan(a[t][k].decay_rate) &&
                   std::isnan(b[t][k].decay_rate)));
      EXPECT_EQ(a[t][k].deadline, b[t][k].deadline);
    }
  }
}

/// The valued golden-equivalence contract: the streaming batch API and the
/// materializing valued reader agree on success/failure and, when both
/// succeed, on every batch annotation — for either schema version.
void expect_valued_equivalence(const std::string& csv, std::size_t num_types) {
  StreamSourceOptions options;
  options.reorder_window = 1 << 20;
  auto streamed = drain_batches(csv, num_types, options);
  auto batch = valued_job_trace_from_csv(csv, num_types);
  ASSERT_EQ(streamed.ok(), batch.ok()) << csv;
  if (batch.ok()) expect_batches_eq(streamed.value(), batch.value().slots);
}

void expect_price_equivalence(const std::string& csv, std::size_t num_dcs) {
  StreamSourceOptions options;
  options.reorder_window = 1 << 20;
  auto streamed = drain_prices(csv, num_dcs, options);
  auto batch = price_trace_from_csv(csv, num_dcs);
  ASSERT_EQ(streamed.ok(), batch.ok()) << csv;
  if (batch.ok()) {
    EXPECT_EQ(streamed.value(), batch.value()) << csv;
  }
}

TEST(StreamingJobSource, EmitsSlotsInOrderWithZeroFill) {
  auto table = drain_jobs("slot,type,count\n0,1,2\n3,0,7\n", 2);
  ASSERT_TRUE(table.ok());
  // Slots 1 and 2 are absent from the file and must come back all-zero.
  EXPECT_EQ(table.value(),
            (std::vector<std::vector<std::int64_t>>{
                {0, 2}, {0, 0}, {0, 0}, {7, 0}}));
}

TEST(StreamingJobSource, DuplicateRowsAccumulate) {
  auto table = drain_jobs("slot,type,count\n0,0,1\n0,0,2\n", 1);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table.value()[0][0], 3);
}

TEST(StreamingJobSource, ReorderWithinWindowMatchesBatch) {
  const std::string csv = "slot,type,count\n1,0,10\n0,0,5\n2,1,1\n";
  StreamSourceOptions options;
  options.reorder_window = 1;
  auto table = drain_jobs(csv, 2, options);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table.value(), job_trace_from_csv(csv, 2).value());
}

TEST(StreamingJobSource, RowBehindWindowFailsWithOffset) {
  // Window 0, tiny chunks so slots 0-2 are emitted before the parser ever
  // sees the final row: its slot-0 row then lands behind the window. (With
  // the default 64 KiB chunk a document this small is parsed before any
  // emission, and the late row is legal — order only matters across chunks.)
  StreamSourceOptions options;
  options.chunk_bytes = 8;
  auto table = drain_jobs("slot,type,count\n2,0,1\n0,0,1\n", 1, options);
  ASSERT_FALSE(table.ok());
  EXPECT_EQ(table.error().message,
            "job trace row 2 at byte 22 (line 3, col 1) is outside the "
            "reorder window (slot 0 already emitted, window 0)");
}

TEST(StreamingJobSource, HeaderOnlyIsNoDataRows) {
  auto table = drain_jobs("slot,type,count\n", 2);
  ASSERT_FALSE(table.ok());
  EXPECT_EQ(table.error().message, "job trace has no data rows");
}

TEST(StreamingJobSource, EmptyInputIsEmptyTrace) {
  auto table = drain_jobs("", 2);
  ASSERT_FALSE(table.ok());
  EXPECT_EQ(table.error().message, "empty job trace");
}

TEST(StreamingJobSource, ErrorsAreSticky) {
  StreamingJobTraceSource source(stream_of("slot,type,count\nx,0,1\n"), 1);
  std::vector<std::int64_t> counts;
  ASSERT_FALSE(source.next_slot_into(counts).ok());
  ASSERT_FALSE(source.next_slot_into(counts).ok());
}

TEST(StreamingJobSource, MissingFileSurfacesOnFirstPull) {
  StreamingJobTraceSource source("/nonexistent/grefar/jobs.csv", 2);
  std::vector<std::int64_t> counts;
  auto more = source.next_slot_into(counts);
  ASSERT_FALSE(more.ok());
  EXPECT_EQ(more.error().message,
            "cannot open file: /nonexistent/grefar/jobs.csv");
}

TEST(StreamingJobSource, BufferStaysWithinWindow) {
  // 64 slot-sorted slots at window 4 and a chunk smaller than one row: the
  // pending buffer must stay O(window + one chunk's rows), never O(trace).
  std::ostringstream os;
  os << "slot,type,count\n";
  for (int t = 0; t < 64; ++t) os << t << ",0," << (t % 3) << "\n";
  StreamSourceOptions options;
  options.reorder_window = 4;
  options.chunk_bytes = 8;
  StreamingJobTraceSource source(stream_of(os.str()), 1, options);
  std::vector<std::int64_t> counts;
  std::int64_t slots = 0;
  while (true) {
    auto more = source.next_slot_into(counts);
    ASSERT_TRUE(more.ok());
    if (!more.value()) break;
    ++slots;
  }
  EXPECT_EQ(slots, 64);
  EXPECT_LE(source.buffered_slots_high_water(), 7u);
}

TEST(StreamingJobSource, SchemaDetectedAtConstruction) {
  StreamingJobTraceSource v2(
      stream_of("slot,type,count,value,decay,deadline\n0,0,1,2.0,0.1,5\n"), 1);
  EXPECT_EQ(v2.schema(), JobTraceSchema::kValued);
  EXPECT_TRUE(v2.valued());
  StreamingJobTraceSource v1(stream_of("slot,type,count\n0,0,1\n"), 1);
  EXPECT_EQ(v1.schema(), JobTraceSchema::kCounts);
  EXPECT_FALSE(v1.valued());
}

TEST(StreamingJobSource, ValuedBatchesCarryAnnotationsAndZeroFillGaps) {
  auto slots = drain_batches(
      "slot,type,count,value,decay,deadline\n0,1,2,2.5,0.125,12\n2,0,1,0.5,0.0,-1\n",
      2);
  ASSERT_TRUE(slots.ok());
  ASSERT_EQ(slots.value().size(), 3u);
  ASSERT_EQ(slots.value()[0].size(), 1u);
  EXPECT_EQ(slots.value()[0][0].type, 1u);
  EXPECT_EQ(slots.value()[0][0].count, 2);
  EXPECT_EQ(slots.value()[0][0].value, 2.5);
  EXPECT_EQ(slots.value()[0][0].decay_rate, 0.125);
  EXPECT_EQ(slots.value()[0][0].deadline, 12);
  EXPECT_TRUE(slots.value()[1].empty());  // absent slot -> no batches
  EXPECT_EQ(slots.value()[2][0].deadline, kNoDeadline);  // -1 on disk
}

TEST(StreamingJobSource, CountsApiOnValuedTraceDropsAnnotations) {
  // next_slot_into works for either schema: on a v2 trace the counts must
  // match the materialized reader's, annotations simply dropped.
  const std::string csv =
      "slot,type,count,value,decay,deadline\n0,0,3,2.0,0.1,5\n0,0,2,9.0,0.0,-1\n1,1,1,1.0,0.0,-1\n";
  auto table = drain_jobs(csv, 2);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table.value(),
            (std::vector<std::vector<std::int64_t>>{{5, 0}, {0, 1}}));
}

TEST(StreamingJobSource, MixingEmitStylesIsContractViolation) {
  StreamingJobTraceSource source(
      stream_of("slot,type,count\n0,0,1\n1,0,1\n"), 1);
  std::vector<std::int64_t> counts;
  ASSERT_TRUE(source.next_slot_into(counts).ok());
  std::vector<ArrivalBatch> batches;
  EXPECT_THROW((void)source.next_slot_batches_into(batches),
               ContractViolation);
}

TEST(GoldenEquivalence, CuratedValuedDocs) {
  const std::size_t num_types = 3;
  for (const std::string& csv : {
           std::string("slot,type,count,value,decay,deadline\n0,0,1,2.0,0.1,5\n"),
           std::string("slot,type,count,value,decay,deadline\n"
                       "2,1,3,1.5,0.0,-1\n0,0,1,0.25,0.5,0\n1,2,4,3.0,0.2,7\n"),
           std::string("slot,type,count,value,decay,deadline\n"
                       "0,0,1,1.0,0.0,-1\n0,0,2,2.0,0.1,3\n"),  // dup slot/type
           std::string("slot,type,count,value,decay,deadline\r\n"
                       "1,1,1,1.0,0.0,-1\r\n0,0,1,2.0,0.0,4\r\n"),
           std::string("slot,type,count,value,decay,deadline\n0,0,1,2.0,0.1,5"),
           std::string("slot,type,count\n0,0,1\n1,2,3\n"),  // v1 via batch API
           std::string("slot,type,count,value,decay,deadline\n0,0,1\n"),
           std::string("slot,type,count,value,decay,deadline\n0,0,1,-1.0,0.0,-1\n"),
           std::string("slot,type,count,value,decay,deadline\n0,0,1,1.0,-0.1,-1\n"),
           std::string("slot,type,count,value,decay,deadline\n0,0,1,1.0,0.0,-2\n"),
           std::string("slot,type,count,value,decay,deadline\n0,9,1,1.0,0.0,-1\n"),
           std::string("slot,type,count,value,decay,deadline\n"),
       }) {
    expect_valued_equivalence(csv, num_types);
  }
}

TEST(StreamingPriceSource, EmitsPerSlotPrices) {
  auto series = drain_prices(
      "slot,dc,price\n0,0,0.4\n0,1,0.5\n1,0,0.6\n1,1,0.7\n", 2);
  ASSERT_TRUE(series.ok());
  EXPECT_EQ(series.value(),
            (std::vector<std::vector<double>>{{0.4, 0.6}, {0.5, 0.7}}));
}

TEST(StreamingPriceSource, GapFailsAtTheSlot) {
  auto series = drain_prices("slot,dc,price\n0,0,0.4\n1,1,0.5\n1,0,0.6\n", 2);
  ASSERT_FALSE(series.ok());
  EXPECT_EQ(series.error().message,
            "price trace has a gap at slot 0 for dc 1");
}

TEST(StreamingPriceSource, HeaderOnlyAndEmpty) {
  auto series = drain_prices("slot,dc,price\n", 1);
  ASSERT_FALSE(series.ok());
  EXPECT_EQ(series.error().message, "price trace missing data for dc 0");
  series = drain_prices("", 1);
  ASSERT_FALSE(series.ok());
  EXPECT_EQ(series.error().message, "empty price trace");
}

TEST(GoldenEquivalence, CuratedJobDocs) {
  const std::size_t num_types = 3;
  for (const std::string& csv : {
           std::string("slot,type,count\n0,0,1\n"),
           std::string("slot,type,count\n5,2,9\n"),          // leading zero slots
           std::string("slot,type,count\n0,0,1\n0,0,2\n2,1,3\n1,2,4\n"),
           std::string("slot,type,count\r\n1,1,1\r\n0,0,1\r\n"),
           std::string("slot,type,count\n0,0,1"),            // no trailing newline
           std::string("slot,type,count\nx,0,1\n"),          // malformed
           std::string("slot,type,count\n0,9,1\n"),          // type out of range
           std::string("slot,type,count\n-1,0,1\n"),
           std::string("slot,type,count\n"),
           std::string(""),
       }) {
    expect_job_equivalence(csv, num_types);
  }
}

TEST(GoldenEquivalence, CuratedPriceDocs) {
  const std::size_t num_dcs = 2;
  for (const std::string& csv : {
           std::string("slot,dc,price\n0,0,0.4\n0,1,0.5\n"),
           std::string("slot,dc,price\n0,1,0.5\n0,0,0.4\n1,1,0.7\n1,0,0.6\n"),
           std::string("slot,dc,price\n0,0,0.4\n0,0,0.45\n0,1,0.5\n"),  // dup
           std::string("slot,dc,price\n0,0,0.4\n"),          // gap for dc 1
           std::string("slot,dc,price\n0,0,0.4\n0,1,0\n"),   // non-positive
           std::string("slot,dc,price\n0,5,0.4\n"),          // dc out of range
           std::string("slot,dc,price\n"),
           std::string(""),
       }) {
    expect_price_equivalence(csv, num_dcs);
  }
}

TEST(GoldenEquivalence, FuzzCorpusFiles) {
  // Every checked-in fuzz seed doubles as a golden-equivalence input: the
  // streaming sources must agree with the materialized readers on all of
  // them (most are malformed — the agreement is "both reject").
  const std::filesystem::path root(GREFAR_TRACE_CORPUS_DIR);
  std::size_t files = 0;
  for (const auto& dir : {"fuzz_trace_readers", "fuzz_stream_csv"}) {
    if (!std::filesystem::exists(root / dir)) continue;
    for (const auto& entry : std::filesystem::directory_iterator(root / dir)) {
      std::ifstream in(entry.path(), std::ios::binary);
      std::stringstream ss;
      ss << in.rdbuf();
      const std::string csv = ss.str();
      SCOPED_TRACE(entry.path().string());
      expect_job_equivalence(csv, 4);
      expect_valued_equivalence(csv, 4);
      expect_price_equivalence(csv, 4);
      ++files;
    }
  }
  EXPECT_GT(files, 0u);
}

TEST(GoldenEquivalence, GeneratedServeTraces) {
  // End-to-end: the streamed writers produce files the streaming sources
  // read back bit-identically to the batch readers.
  PaperScenario scenario = make_serve_scenario(3, 12, /*seed=*/7);
  const std::string dir = ::testing::TempDir();
  std::string jobs_path, prices_path;
  ASSERT_TRUE(
      write_serve_traces(scenario, /*horizon=*/50, dir, jobs_path, prices_path)
          .ok());
  const auto read = [](const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
  };
  expect_job_equivalence(read(jobs_path), scenario.config.num_job_types());
  expect_price_equivalence(read(prices_path),
                           scenario.config.num_data_centers());

  // And from the file path directly (the serve-mode entry point).
  StreamingJobTraceSource source(jobs_path, scenario.config.num_job_types());
  std::vector<std::int64_t> counts;
  std::int64_t slots = 0;
  while (true) {
    auto more = source.next_slot_into(counts);
    ASSERT_TRUE(more.ok());
    if (!more.value()) break;
    ++slots;
  }
  EXPECT_EQ(slots, 50);
}

}  // namespace
}  // namespace grefar
