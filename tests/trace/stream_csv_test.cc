#include "trace/stream_csv.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace grefar {
namespace {

using Rows = std::vector<std::vector<std::string>>;

struct ParseOutcome {
  Rows rows;
  std::vector<std::uint64_t> row_starts;  // byte offset of each row
  bool ok = false;
  std::string error;
};

/// Parses `text` feeding `chunk` bytes at a time (0 = the whole text at
/// once). The streaming contract: the outcome is identical for every chunk
/// size, including byte-at-a-time.
ParseOutcome parse_chunked(const std::string& text, std::size_t chunk,
                           CsvDialect dialect = {}, CsvLimits limits = {}) {
  ParseOutcome out;
  StreamCsvParser parser(
      [&out](const std::vector<std::string>& fields, std::uint64_t row_index,
             const CsvPosition& row_start) -> Status {
        EXPECT_EQ(row_index, out.rows.size());
        out.rows.push_back(fields);
        out.row_starts.push_back(row_start.byte);
        return {};
      },
      dialect, limits);
  Status st;
  if (chunk == 0) {
    st = parser.feed(text);
  } else {
    for (std::size_t i = 0; st.ok() && i < text.size(); i += chunk) {
      st = parser.feed(std::string_view(text).substr(i, chunk));
    }
  }
  if (st.ok()) st = parser.finish();
  out.ok = st.ok();
  if (!st.ok()) out.error = st.error().message;
  return out;
}

TEST(StreamCsv, BasicRowsAndFields) {
  auto out = parse_chunked("a,b,c\n1,2,3\n", 0);
  ASSERT_TRUE(out.ok);
  ASSERT_EQ(out.rows.size(), 2u);
  EXPECT_EQ(out.rows[0], (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(out.rows[1], (std::vector<std::string>{"1", "2", "3"}));
  EXPECT_EQ(out.row_starts, (std::vector<std::uint64_t>{0, 6}));
}

TEST(StreamCsv, ChunkSplitInvariance) {
  // Quotes, doubled quotes, CRLF, a blank line, and a final row without a
  // trailing newline — every chunking must agree with the one-shot parse.
  const std::string text =
      "h1,h2\r\n\"a,\"\"b\",plain\n\n\"multi\nline\",x\r\nlast,row";
  auto whole = parse_chunked(text, 0);
  ASSERT_TRUE(whole.ok);
  ASSERT_EQ(whole.rows.size(), 5u);
  EXPECT_EQ(whole.rows[1], (std::vector<std::string>{"a,\"b", "plain"}));
  EXPECT_EQ(whole.rows[2], (std::vector<std::string>{""}));
  EXPECT_EQ(whole.rows[3], (std::vector<std::string>{"multi\nline", "x"}));
  EXPECT_EQ(whole.rows[4], (std::vector<std::string>{"last", "row"}));
  for (std::size_t chunk : {1u, 2u, 3u, 5u, 7u, 64u}) {
    auto split = parse_chunked(text, chunk);
    EXPECT_TRUE(split.ok) << "chunk=" << chunk;
    EXPECT_EQ(split.rows, whole.rows) << "chunk=" << chunk;
    EXPECT_EQ(split.row_starts, whole.row_starts) << "chunk=" << chunk;
  }
}

TEST(StreamCsv, ErrorsAreChunkInvariantToo) {
  const std::string text = "ok,row\n\"unterminated";
  auto whole = parse_chunked(text, 0);
  ASSERT_FALSE(whole.ok);
  for (std::size_t chunk : {1u, 3u, 9u}) {
    auto split = parse_chunked(text, chunk);
    EXPECT_FALSE(split.ok);
    EXPECT_EQ(split.error, whole.error) << "chunk=" << chunk;
    EXPECT_EQ(split.rows, whole.rows) << "chunk=" << chunk;
  }
}

TEST(StreamCsv, CustomSeparatorDialect) {
  CsvDialect dialect;
  dialect.separator = ';';
  auto out = parse_chunked("a;b,c\n", 1, dialect);
  ASSERT_TRUE(out.ok);
  EXPECT_EQ(out.rows[0], (std::vector<std::string>{"a", "b,c"}));
}

TEST(StreamCsv, BareCrSkippedByDefault) {
  // The historical CsvReader rule: '\r' vanishes anywhere outside quotes.
  auto out = parse_chunked("a\rb,c\r\n", 0);
  ASSERT_TRUE(out.ok);
  EXPECT_EQ(out.rows[0], (std::vector<std::string>{"ab", "c"}));
}

TEST(StreamCsv, BareCrKeptWhenDialectSaysSo) {
  CsvDialect dialect;
  dialect.skip_bare_cr = false;
  for (std::size_t chunk : {0u, 1u}) {
    // '\r\n' still terminates the row; a lone '\r' is a literal byte.
    auto out = parse_chunked("a\rb,c\r\n\r", chunk, dialect);
    ASSERT_TRUE(out.ok) << "chunk=" << chunk;
    ASSERT_EQ(out.rows.size(), 2u);
    EXPECT_EQ(out.rows[0], (std::vector<std::string>{"a\rb", "c"}));
    EXPECT_EQ(out.rows[1], (std::vector<std::string>{"\r"}));
  }
}

TEST(StreamCsv, LenientQuoteConcatenation) {
  auto out = parse_chunked("\"a\"x,\"b\"\n", 0);
  ASSERT_TRUE(out.ok);
  EXPECT_EQ(out.rows[0], (std::vector<std::string>{"ax", "b"}));
}

TEST(StreamCsv, StrictQuotesRejectsTrailingBytes) {
  CsvDialect dialect;
  dialect.strict_quotes = true;
  auto out = parse_chunked("\"a\"x\n", 0, dialect);
  ASSERT_FALSE(out.ok);
  EXPECT_EQ(out.error, "unexpected byte after closing quote at byte 3 (line 1, col 4)");
}

TEST(StreamCsv, StrictQuotesRejectsMidFieldQuote) {
  CsvDialect dialect;
  dialect.strict_quotes = true;
  auto out = parse_chunked("ab\"c\n", 0, dialect);
  ASSERT_FALSE(out.ok);
  EXPECT_EQ(out.error, "quote opening mid-field at byte 2 (line 1, col 3)");
}

TEST(StreamCsv, UnterminatedQuoteReportsOpeningOffset) {
  auto out = parse_chunked("x,y\n\"oops", 2);
  ASSERT_FALSE(out.ok);
  EXPECT_EQ(out.error, "unterminated quoted field opened at byte 4 (line 2, col 1)");
}

TEST(StreamCsv, PositionsTrackLinesAndColumns) {
  std::vector<CsvPosition> starts;
  Status st = parse_csv("ab,c\nde\n",
                        [&starts](const std::vector<std::string>&, std::uint64_t,
                                  const CsvPosition& row_start) -> Status {
                          starts.push_back(row_start);
                          return {};
                        });
  ASSERT_TRUE(st.ok());
  ASSERT_EQ(starts.size(), 2u);
  EXPECT_EQ(starts[1].byte, 5u);
  EXPECT_EQ(starts[1].line, 2u);
  EXPECT_EQ(starts[1].column, 1u);
}

TEST(StreamCsv, MaxFieldBytesLimit) {
  CsvLimits limits;
  limits.max_field_bytes = 4;
  auto out = parse_chunked("abcd\n", 0, {}, limits);
  EXPECT_TRUE(out.ok);
  out = parse_chunked("abcde\n", 0, {}, limits);
  ASSERT_FALSE(out.ok);
  EXPECT_EQ(out.error, "CSV field exceeds max_field_bytes=4 at byte 4 (line 1, col 5)");
}

TEST(StreamCsv, MaxFieldsPerRowLimit) {
  CsvLimits limits;
  limits.max_fields_per_row = 2;
  auto out = parse_chunked("a,b\n", 0, {}, limits);
  EXPECT_TRUE(out.ok);
  out = parse_chunked("a,b,c\n", 0, {}, limits);
  ASSERT_FALSE(out.ok);
  EXPECT_NE(out.error.find("max_fields_per_row=2"), std::string::npos);
}

TEST(StreamCsv, MaxRowsLimit) {
  CsvLimits limits;
  limits.max_rows = 2;
  auto out = parse_chunked("a\nb\n", 0, {}, limits);
  EXPECT_TRUE(out.ok);
  out = parse_chunked("a\nb\nc\n", 0, {}, limits);
  ASSERT_FALSE(out.ok);
  EXPECT_NE(out.error.find("max_rows=2"), std::string::npos);
}

TEST(StreamCsv, ErrorsAreSticky) {
  StreamCsvParser parser([](const std::vector<std::string>&, std::uint64_t,
                            const CsvPosition&) -> Status { return {}; });
  ASSERT_TRUE(parser.feed("\"open").ok());
  ASSERT_FALSE(parser.finish().ok());
  // Feeding after failure re-reports the same error, never parses more.
  Status again = parser.feed("x\n");
  ASSERT_FALSE(again.ok());
  EXPECT_NE(again.error().message.find("unterminated quoted field"),
            std::string::npos);
  EXPECT_EQ(parser.rows_emitted(), 0u);
}

TEST(StreamCsv, CallbackErrorPoisonsParser) {
  StreamCsvParser parser([](const std::vector<std::string>&, std::uint64_t,
                            const CsvPosition&) -> Status {
    return Error::make("schema says no");
  });
  Status st = parser.feed("a\nb\n");
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.error().message, "schema says no");
  EXPECT_EQ(parser.rows_emitted(), 0u);
  EXPECT_FALSE(parser.finish().ok());
}

TEST(StreamCsv, FinishIsIdempotentAndFeedAfterFinishFails) {
  StreamCsvParser parser([](const std::vector<std::string>&, std::uint64_t,
                            const CsvPosition&) -> Status { return {}; });
  ASSERT_TRUE(parser.feed("a\n").ok());
  ASSERT_TRUE(parser.finish().ok());
  ASSERT_TRUE(parser.finish().ok());
  EXPECT_FALSE(parser.feed("b\n").ok());
}

TEST(StreamCsv, EmptyInputEmitsNothing) {
  auto out = parse_chunked("", 0);
  ASSERT_TRUE(out.ok);
  EXPECT_TRUE(out.rows.empty());
}

}  // namespace
}  // namespace grefar
