#include "solver/lp.h"

#include <gtest/gtest.h>

#include "util/check.h"
#include "util/rng.h"

namespace grefar {
namespace {

TEST(Simplex, SolvesTextbookMaximization) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  => x=2, y=6, obj=36.
  LinearProgram lp(2);
  lp.set_objective(0, -3.0);  // minimize the negation
  lp.set_objective(1, -5.0);
  lp.add_constraint({1.0, 0.0}, ConstraintSense::kLessEqual, 4.0);
  lp.add_constraint({0.0, 2.0}, ConstraintSense::kLessEqual, 12.0);
  lp.add_constraint({3.0, 2.0}, ConstraintSense::kLessEqual, 18.0);
  auto sol = solve_lp(lp);
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.x[0], 2.0, 1e-8);
  EXPECT_NEAR(sol.x[1], 6.0, 1e-8);
  EXPECT_NEAR(sol.objective, -36.0, 1e-8);
}

TEST(Simplex, SolvesMinimizationWithGreaterEqual) {
  // min 2x + 3y s.t. x + y >= 10, x >= 2 => x=8? No: cost favors x (2<3),
  // so x=10-y with y=0... but x >= 2 anyway. Optimum x=10, y=0, obj=20.
  LinearProgram lp(2);
  lp.set_objective(0, 2.0);
  lp.set_objective(1, 3.0);
  lp.add_constraint({1.0, 1.0}, ConstraintSense::kGreaterEqual, 10.0);
  lp.add_constraint({1.0, 0.0}, ConstraintSense::kGreaterEqual, 2.0);
  auto sol = solve_lp(lp);
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.objective, 20.0, 1e-8);
  EXPECT_NEAR(sol.x[0], 10.0, 1e-8);
}

TEST(Simplex, HandlesEqualityConstraints) {
  // min x + 2y s.t. x + y = 5, x <= 3 => x=3, y=2, obj=7.
  LinearProgram lp(2);
  lp.set_objective(0, 1.0);
  lp.set_objective(1, 2.0);
  lp.add_constraint({1.0, 1.0}, ConstraintSense::kEqual, 5.0);
  lp.add_constraint({1.0, 0.0}, ConstraintSense::kLessEqual, 3.0);
  auto sol = solve_lp(lp);
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.x[0], 3.0, 1e-8);
  EXPECT_NEAR(sol.x[1], 2.0, 1e-8);
  EXPECT_NEAR(sol.objective, 7.0, 1e-8);
}

TEST(Simplex, DetectsInfeasibility) {
  LinearProgram lp(1);
  lp.set_objective(0, 1.0);
  lp.add_constraint({1.0}, ConstraintSense::kLessEqual, 1.0);
  lp.add_constraint({1.0}, ConstraintSense::kGreaterEqual, 2.0);
  auto sol = solve_lp(lp);
  EXPECT_EQ(sol.status, LpStatus::kInfeasible);
}

TEST(Simplex, DetectsUnboundedness) {
  LinearProgram lp(1);
  lp.set_objective(0, -1.0);  // minimize -x with x unbounded above
  lp.add_constraint({1.0}, ConstraintSense::kGreaterEqual, 0.0);
  auto sol = solve_lp(lp);
  EXPECT_EQ(sol.status, LpStatus::kUnbounded);
}

TEST(Simplex, HandlesNegativeRhs) {
  // min x s.t. -x <= -3  (i.e. x >= 3).
  LinearProgram lp(1);
  lp.set_objective(0, 1.0);
  lp.add_constraint({-1.0}, ConstraintSense::kLessEqual, -3.0);
  auto sol = solve_lp(lp);
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.x[0], 3.0, 1e-8);
}

TEST(Simplex, DegenerateProblemTerminates) {
  // Klee-Minty-flavoured degeneracy: multiple constraints tight at optimum.
  LinearProgram lp(2);
  lp.set_objective(0, -1.0);
  lp.set_objective(1, -1.0);
  lp.add_constraint({1.0, 0.0}, ConstraintSense::kLessEqual, 1.0);
  lp.add_constraint({0.0, 1.0}, ConstraintSense::kLessEqual, 1.0);
  lp.add_constraint({1.0, 1.0}, ConstraintSense::kLessEqual, 2.0);
  lp.add_constraint({1.0, -1.0}, ConstraintSense::kLessEqual, 0.0);
  auto sol = solve_lp(lp);
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.objective, -2.0, 1e-8);
}

TEST(Simplex, ZeroObjectiveReturnsFeasiblePoint) {
  LinearProgram lp(2);
  lp.add_constraint({1.0, 1.0}, ConstraintSense::kEqual, 4.0);
  auto sol = solve_lp(lp);
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.x[0] + sol.x[1], 4.0, 1e-8);
}

TEST(Simplex, RedundantEqualityRows) {
  // x + y = 2 stated twice: phase 1 must drive artificials out or mark the
  // duplicate row redundant.
  LinearProgram lp(2);
  lp.set_objective(0, 1.0);
  lp.add_constraint({1.0, 1.0}, ConstraintSense::kEqual, 2.0);
  lp.add_constraint({1.0, 1.0}, ConstraintSense::kEqual, 2.0);
  auto sol = solve_lp(lp);
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.objective, 0.0, 1e-8);  // put all mass on y
  EXPECT_NEAR(sol.x[1], 2.0, 1e-8);
}

TEST(Simplex, SparseConstraintBuilder) {
  LinearProgram lp(4);
  lp.set_objective(3, 1.0);
  lp.add_constraint_sparse({{0, 1.0}, {3, 1.0}}, ConstraintSense::kGreaterEqual, 2.0);
  lp.add_upper_bound(0, 1.5);
  auto sol = solve_lp(lp);
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.x[3], 0.5, 1e-8);  // x0 maxes at 1.5, x3 covers the rest
}

TEST(Simplex, SparseBuilderAccumulatesDuplicateIndices) {
  LinearProgram lp(1);
  lp.set_objective(0, 1.0);
  // 0.5x + 0.5x >= 3  => x >= 3.
  lp.add_constraint_sparse({{0, 0.5}, {0, 0.5}}, ConstraintSense::kGreaterEqual, 3.0);
  auto sol = solve_lp(lp);
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.x[0], 3.0, 1e-8);
}

TEST(Simplex, ConstraintShapeIsChecked) {
  LinearProgram lp(2);
  EXPECT_THROW(lp.add_constraint({1.0}, ConstraintSense::kLessEqual, 1.0),
               ContractViolation);
  EXPECT_THROW(lp.set_objective(2, 1.0), ContractViolation);
}

TEST(Simplex, TransportationProblem) {
  // 2 sources (supply 20, 30), 3 sinks (demand 10, 25, 15), known optimum.
  // cost matrix: [8 6 10; 9 12 13]
  LinearProgram lp(6);
  const double cost[2][3] = {{8, 6, 10}, {9, 12, 13}};
  for (std::size_t s = 0; s < 2; ++s) {
    for (std::size_t d = 0; d < 3; ++d) lp.set_objective(s * 3 + d, cost[s][d]);
  }
  lp.add_constraint({1, 1, 1, 0, 0, 0}, ConstraintSense::kLessEqual, 20.0);
  lp.add_constraint({0, 0, 0, 1, 1, 1}, ConstraintSense::kLessEqual, 30.0);
  lp.add_constraint({1, 0, 0, 1, 0, 0}, ConstraintSense::kEqual, 10.0);
  lp.add_constraint({0, 1, 0, 0, 1, 0}, ConstraintSense::kEqual, 25.0);
  lp.add_constraint({0, 0, 1, 0, 0, 1}, ConstraintSense::kEqual, 15.0);
  auto sol = solve_lp(lp);
  ASSERT_TRUE(sol.optimal());
  // Optimal: x12=20 (src0->sink1), rest from src1: x20=10, x21=5, x22=15.
  // cost = 6*20 + 9*10 + 12*5 + 13*15 = 120+90+60+195 = 465.
  EXPECT_NEAR(sol.objective, 465.0, 1e-6);
}

TEST(Simplex, RandomLpsMatchBruteForceOverVertices) {
  // Random 2-var LPs with box + one coupling constraint; optimum must be at
  // a vertex, so compare against scanning the candidate vertex set.
  Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    double c0 = rng.uniform(-2.0, 2.0);
    double c1 = rng.uniform(-2.0, 2.0);
    double ub0 = rng.uniform(0.5, 3.0);
    double ub1 = rng.uniform(0.5, 3.0);
    double cap = rng.uniform(0.5, ub0 + ub1);

    LinearProgram lp(2);
    lp.set_objective(0, c0);
    lp.set_objective(1, c1);
    lp.add_upper_bound(0, ub0);
    lp.add_upper_bound(1, ub1);
    lp.add_constraint({1.0, 1.0}, ConstraintSense::kLessEqual, cap);
    auto sol = solve_lp(lp);
    ASSERT_TRUE(sol.optimal());

    double best = 0.0;  // origin is feasible
    auto consider = [&](double x, double y) {
      if (x < -1e-9 || y < -1e-9 || x > ub0 + 1e-9 || y > ub1 + 1e-9) return;
      if (x + y > cap + 1e-9) return;
      best = std::min(best, c0 * x + c1 * y);
    };
    consider(ub0, 0.0);
    consider(0.0, ub1);
    consider(ub0, ub1);
    consider(std::min(ub0, cap), 0.0);
    consider(0.0, std::min(ub1, cap));
    consider(ub0, cap - ub0);
    consider(cap - ub1, ub1);
    EXPECT_NEAR(sol.objective, best, 1e-7) << "trial " << trial;
  }
}

}  // namespace
}  // namespace grefar
