#include "solver/lp.h"

#include <gtest/gtest.h>

#include "solver/brute_force.h"
#include "solver/capped_box.h"
#include "util/check.h"
#include "util/rng.h"

namespace grefar {
namespace {

TEST(Simplex, SolvesTextbookMaximization) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  => x=2, y=6, obj=36.
  LinearProgram lp(2);
  lp.set_objective(0, -3.0);  // minimize the negation
  lp.set_objective(1, -5.0);
  lp.add_constraint({1.0, 0.0}, ConstraintSense::kLessEqual, 4.0);
  lp.add_constraint({0.0, 2.0}, ConstraintSense::kLessEqual, 12.0);
  lp.add_constraint({3.0, 2.0}, ConstraintSense::kLessEqual, 18.0);
  auto sol = solve_lp(lp);
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.x[0], 2.0, 1e-8);
  EXPECT_NEAR(sol.x[1], 6.0, 1e-8);
  EXPECT_NEAR(sol.objective, -36.0, 1e-8);
}

TEST(Simplex, SolvesMinimizationWithGreaterEqual) {
  // min 2x + 3y s.t. x + y >= 10, x >= 2 => x=8? No: cost favors x (2<3),
  // so x=10-y with y=0... but x >= 2 anyway. Optimum x=10, y=0, obj=20.
  LinearProgram lp(2);
  lp.set_objective(0, 2.0);
  lp.set_objective(1, 3.0);
  lp.add_constraint({1.0, 1.0}, ConstraintSense::kGreaterEqual, 10.0);
  lp.add_constraint({1.0, 0.0}, ConstraintSense::kGreaterEqual, 2.0);
  auto sol = solve_lp(lp);
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.objective, 20.0, 1e-8);
  EXPECT_NEAR(sol.x[0], 10.0, 1e-8);
}

TEST(Simplex, HandlesEqualityConstraints) {
  // min x + 2y s.t. x + y = 5, x <= 3 => x=3, y=2, obj=7.
  LinearProgram lp(2);
  lp.set_objective(0, 1.0);
  lp.set_objective(1, 2.0);
  lp.add_constraint({1.0, 1.0}, ConstraintSense::kEqual, 5.0);
  lp.add_constraint({1.0, 0.0}, ConstraintSense::kLessEqual, 3.0);
  auto sol = solve_lp(lp);
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.x[0], 3.0, 1e-8);
  EXPECT_NEAR(sol.x[1], 2.0, 1e-8);
  EXPECT_NEAR(sol.objective, 7.0, 1e-8);
}

TEST(Simplex, DetectsInfeasibility) {
  LinearProgram lp(1);
  lp.set_objective(0, 1.0);
  lp.add_constraint({1.0}, ConstraintSense::kLessEqual, 1.0);
  lp.add_constraint({1.0}, ConstraintSense::kGreaterEqual, 2.0);
  auto sol = solve_lp(lp);
  EXPECT_EQ(sol.status, LpStatus::kInfeasible);
}

TEST(Simplex, DetectsUnboundedness) {
  LinearProgram lp(1);
  lp.set_objective(0, -1.0);  // minimize -x with x unbounded above
  lp.add_constraint({1.0}, ConstraintSense::kGreaterEqual, 0.0);
  auto sol = solve_lp(lp);
  EXPECT_EQ(sol.status, LpStatus::kUnbounded);
}

TEST(Simplex, HandlesNegativeRhs) {
  // min x s.t. -x <= -3  (i.e. x >= 3).
  LinearProgram lp(1);
  lp.set_objective(0, 1.0);
  lp.add_constraint({-1.0}, ConstraintSense::kLessEqual, -3.0);
  auto sol = solve_lp(lp);
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.x[0], 3.0, 1e-8);
}

TEST(Simplex, DegenerateProblemTerminates) {
  // Klee-Minty-flavoured degeneracy: multiple constraints tight at optimum.
  LinearProgram lp(2);
  lp.set_objective(0, -1.0);
  lp.set_objective(1, -1.0);
  lp.add_constraint({1.0, 0.0}, ConstraintSense::kLessEqual, 1.0);
  lp.add_constraint({0.0, 1.0}, ConstraintSense::kLessEqual, 1.0);
  lp.add_constraint({1.0, 1.0}, ConstraintSense::kLessEqual, 2.0);
  lp.add_constraint({1.0, -1.0}, ConstraintSense::kLessEqual, 0.0);
  auto sol = solve_lp(lp);
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.objective, -2.0, 1e-8);
}

TEST(Simplex, ZeroObjectiveReturnsFeasiblePoint) {
  LinearProgram lp(2);
  lp.add_constraint({1.0, 1.0}, ConstraintSense::kEqual, 4.0);
  auto sol = solve_lp(lp);
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.x[0] + sol.x[1], 4.0, 1e-8);
}

TEST(Simplex, RedundantEqualityRows) {
  // x + y = 2 stated twice: phase 1 must drive artificials out or mark the
  // duplicate row redundant.
  LinearProgram lp(2);
  lp.set_objective(0, 1.0);
  lp.add_constraint({1.0, 1.0}, ConstraintSense::kEqual, 2.0);
  lp.add_constraint({1.0, 1.0}, ConstraintSense::kEqual, 2.0);
  auto sol = solve_lp(lp);
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.objective, 0.0, 1e-8);  // put all mass on y
  EXPECT_NEAR(sol.x[1], 2.0, 1e-8);
}

TEST(Simplex, SparseConstraintBuilder) {
  LinearProgram lp(4);
  lp.set_objective(3, 1.0);
  lp.add_constraint_sparse({{0, 1.0}, {3, 1.0}}, ConstraintSense::kGreaterEqual, 2.0);
  lp.add_upper_bound(0, 1.5);
  auto sol = solve_lp(lp);
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.x[3], 0.5, 1e-8);  // x0 maxes at 1.5, x3 covers the rest
}

TEST(Simplex, SparseBuilderAccumulatesDuplicateIndices) {
  LinearProgram lp(1);
  lp.set_objective(0, 1.0);
  // 0.5x + 0.5x >= 3  => x >= 3.
  lp.add_constraint_sparse({{0, 0.5}, {0, 0.5}}, ConstraintSense::kGreaterEqual, 3.0);
  auto sol = solve_lp(lp);
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.x[0], 3.0, 1e-8);
}

TEST(Simplex, ConstraintShapeIsChecked) {
  LinearProgram lp(2);
  EXPECT_THROW(lp.add_constraint({1.0}, ConstraintSense::kLessEqual, 1.0),
               ContractViolation);
  EXPECT_THROW(lp.set_objective(2, 1.0), ContractViolation);
}

TEST(Simplex, TransportationProblem) {
  // 2 sources (supply 20, 30), 3 sinks (demand 10, 25, 15), known optimum.
  // cost matrix: [8 6 10; 9 12 13]
  LinearProgram lp(6);
  const double cost[2][3] = {{8, 6, 10}, {9, 12, 13}};
  for (std::size_t s = 0; s < 2; ++s) {
    for (std::size_t d = 0; d < 3; ++d) lp.set_objective(s * 3 + d, cost[s][d]);
  }
  lp.add_constraint({1, 1, 1, 0, 0, 0}, ConstraintSense::kLessEqual, 20.0);
  lp.add_constraint({0, 0, 0, 1, 1, 1}, ConstraintSense::kLessEqual, 30.0);
  lp.add_constraint({1, 0, 0, 1, 0, 0}, ConstraintSense::kEqual, 10.0);
  lp.add_constraint({0, 1, 0, 0, 1, 0}, ConstraintSense::kEqual, 25.0);
  lp.add_constraint({0, 0, 1, 0, 0, 1}, ConstraintSense::kEqual, 15.0);
  auto sol = solve_lp(lp);
  ASSERT_TRUE(sol.optimal());
  // Optimal: x12=20 (src0->sink1), rest from src1: x20=10, x21=5, x22=15.
  // cost = 6*20 + 9*10 + 12*5 + 13*15 = 120+90+60+195 = 465.
  EXPECT_NEAR(sol.objective, 465.0, 1e-6);
}

TEST(Simplex, RandomLpsMatchBruteForceOverVertices) {
  // Random 2-var LPs with box + one coupling constraint; optimum must be at
  // a vertex, so compare against scanning the candidate vertex set.
  Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    double c0 = rng.uniform(-2.0, 2.0);
    double c1 = rng.uniform(-2.0, 2.0);
    double ub0 = rng.uniform(0.5, 3.0);
    double ub1 = rng.uniform(0.5, 3.0);
    double cap = rng.uniform(0.5, ub0 + ub1);

    LinearProgram lp(2);
    lp.set_objective(0, c0);
    lp.set_objective(1, c1);
    lp.add_upper_bound(0, ub0);
    lp.add_upper_bound(1, ub1);
    lp.add_constraint({1.0, 1.0}, ConstraintSense::kLessEqual, cap);
    auto sol = solve_lp(lp);
    ASSERT_TRUE(sol.optimal());

    double best = 0.0;  // origin is feasible
    auto consider = [&](double x, double y) {
      if (x < -1e-9 || y < -1e-9 || x > ub0 + 1e-9 || y > ub1 + 1e-9) return;
      if (x + y > cap + 1e-9) return;
      best = std::min(best, c0 * x + c1 * y);
    };
    consider(ub0, 0.0);
    consider(0.0, ub1);
    consider(ub0, ub1);
    consider(std::min(ub0, cap), 0.0);
    consider(0.0, std::min(ub1, cap));
    consider(ub0, cap - ub0);
    consider(cap - ub1, ub1);
    EXPECT_NEAR(sol.objective, best, 1e-7) << "trial " << trial;
  }
}

TEST(Simplex, UpperBoundTightAtOptimum) {
  // max x + y with x <= 1.5 (bound), x + y <= 2: both the bound and the row
  // are tight at (1.5, 0.5).
  LinearProgram lp(2);
  lp.set_objective(0, -1.0);
  lp.set_objective(1, -1.0);
  lp.add_upper_bound(0, 1.5);
  lp.add_constraint({1.0, 1.0}, ConstraintSense::kLessEqual, 2.0);
  auto sol = solve_lp(lp);
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.objective, -2.0, 1e-8);
  EXPECT_LE(sol.x[0], 1.5 + 1e-9);
}

TEST(Simplex, FixedVariableViaZeroUpperBound) {
  LinearProgram lp(2);
  lp.set_objective(0, -5.0);  // would love to grow x0, but it is fixed at 0
  lp.set_objective(1, -1.0);
  lp.add_upper_bound(0, 0.0);
  lp.add_constraint({1.0, 1.0}, ConstraintSense::kLessEqual, 3.0);
  auto sol = solve_lp(lp);
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.x[0], 0.0, 1e-12);
  EXPECT_NEAR(sol.x[1], 3.0, 1e-8);
}

TEST(Simplex, NegativeUpperBoundIsInfeasible) {
  LinearProgram lp(1);
  lp.add_upper_bound(0, -1.0);  // 0 <= x <= -1 is empty
  auto sol = solve_lp(lp);
  EXPECT_EQ(sol.status, LpStatus::kInfeasible);
}

TEST(Simplex, BoundedVariablesTameUnboundedness) {
  LinearProgram lp(2);
  lp.set_objective(0, -1.0);
  lp.set_objective(1, -1.0);
  lp.add_upper_bound(0, 4.0);
  auto unbounded = solve_lp(lp);  // x1 still free upward
  EXPECT_EQ(unbounded.status, LpStatus::kUnbounded);
  lp.add_upper_bound(1, 6.0);
  auto sol = solve_lp(lp);
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.objective, -10.0, 1e-8);
}

namespace {

/// Random LP over n variables: mixed-sense rows, ~40% structurally missing
/// coefficients, finite upper bounds on most variables (occasionally 0 =
/// fixed). Spans optimal, infeasible, and (when some variable stays
/// unbounded) unbounded instances.
LinearProgram random_lp(Rng& rng, std::size_t n, std::size_t m) {
  LinearProgram lp(n);
  for (std::size_t j = 0; j < n; ++j) {
    lp.set_objective(j, rng.uniform(-2.0, 2.0));
    double roll = rng.uniform(0.0, 1.0);
    if (roll < 0.7) {
      lp.add_upper_bound(j, rng.uniform(0.0, 4.0));
    } else if (roll < 0.8) {
      lp.add_upper_bound(j, 0.0);
    }  // else unbounded above
  }
  for (std::size_t r = 0; r < m; ++r) {
    std::vector<double> row(n, 0.0);
    for (std::size_t j = 0; j < n; ++j) {
      if (rng.uniform(0.0, 1.0) < 0.6) row[j] = rng.uniform(-3.0, 3.0);
    }
    double roll = rng.uniform(0.0, 1.0);
    ConstraintSense sense = roll < 0.6   ? ConstraintSense::kLessEqual
                            : roll < 0.85 ? ConstraintSense::kGreaterEqual
                                          : ConstraintSense::kEqual;
    lp.add_constraint(row, sense, rng.uniform(-2.0, 4.0));
  }
  return lp;
}

/// Checks that `x` satisfies every constraint and bound of `lp` to `tol`.
void expect_feasible(const LinearProgram& lp, const std::vector<double>& x,
                     double tol) {
  for (std::size_t j = 0; j < lp.num_vars(); ++j) {
    EXPECT_GE(x[j], -tol);
    EXPECT_LE(x[j], lp.upper_bounds()[j] + tol);
  }
  for (const auto& c : lp.constraints()) {
    double lhs = 0.0;
    for (const auto& [j, a] : c.terms) lhs += a * x[j];
    switch (c.sense) {
      case ConstraintSense::kLessEqual: EXPECT_LE(lhs, c.rhs + tol); break;
      case ConstraintSense::kGreaterEqual: EXPECT_GE(lhs, c.rhs - tol); break;
      case ConstraintSense::kEqual: EXPECT_NEAR(lhs, c.rhs, tol); break;
    }
  }
}

}  // namespace

TEST(Simplex, RandomLpsRevisedMatchesTableau) {
  // Property test: the bounded-variable revised simplex and the dense
  // tableau (which expands bounds into rows) must agree on status and, when
  // optimal, on the objective — the vertex reached may differ under ties.
  Rng rng(7);
  int optimal = 0, infeasible = 0, unbounded = 0;
  for (int trial = 0; trial < 250; ++trial) {
    std::size_t n = 2 + rng.uniform_int(0, 6);
    std::size_t m = 1 + rng.uniform_int(0, 5);
    LinearProgram lp = random_lp(rng, n, m);
    auto revised = solve_lp(lp);
    auto tableau = solve_lp_tableau(lp);
    ASSERT_EQ(revised.status, tableau.status)
        << "trial " << trial << ": revised=" << to_string(revised.status)
        << " tableau=" << to_string(tableau.status);
    switch (revised.status) {
      case LpStatus::kOptimal:
        ++optimal;
        EXPECT_NEAR(revised.objective, tableau.objective, 1e-6) << "trial " << trial;
        expect_feasible(lp, revised.x, 1e-7);
        break;
      case LpStatus::kInfeasible: ++infeasible; break;
      case LpStatus::kUnbounded: ++unbounded; break;
      default: FAIL() << "trial " << trial << ": " << to_string(revised.status);
    }
  }
  // The generator must actually exercise all three outcomes.
  EXPECT_GE(optimal, 50);
  EXPECT_GE(infeasible, 10);
  EXPECT_GE(unbounded, 10);
}

TEST(Simplex, RandomCappedBoxLpsMatchBruteForce) {
  // On box + capacity instances the LP optimum is grid-reachable, so a
  // brute-force scan bounds it from above.
  Rng rng(31);
  for (int trial = 0; trial < 25; ++trial) {
    std::vector<double> ub{rng.uniform(0.5, 2.0), rng.uniform(0.5, 2.0),
                           rng.uniform(0.5, 2.0)};
    double cap = rng.uniform(0.5, ub[0] + ub[1] + ub[2]);
    std::vector<double> c{rng.uniform(-2.0, 2.0), rng.uniform(-2.0, 2.0),
                          rng.uniform(-2.0, 2.0)};
    LinearProgram lp(3);
    for (std::size_t j = 0; j < 3; ++j) {
      lp.set_objective(j, c[j]);
      lp.add_upper_bound(j, ub[j]);
    }
    lp.add_constraint({1.0, 1.0, 1.0}, ConstraintSense::kLessEqual, cap);
    auto sol = solve_lp(lp);
    ASSERT_TRUE(sol.optimal());

    CappedBoxPolytope p(ub);
    p.add_group({0, 1, 2}, cap);
    auto brute = minimize_brute_force(
        [&](const std::vector<double>& x) {
          return c[0] * x[0] + c[1] * x[1] + c[2] * x[2];
        },
        p, 21);
    EXPECT_LE(sol.objective, brute.objective + 1e-7) << "trial " << trial;
  }
}

TEST(Simplex, WarmStartMatchesColdAfterObjectivePerturbation) {
  // The FW/LMO pattern: polytope fixed, objective changes every call. The
  // warm solve re-enters phase 2 from the previous basis and must land on
  // the same optimum a cold solve finds.
  Rng rng(13);
  for (int trial = 0; trial < 60; ++trial) {
    std::size_t n = 3 + rng.uniform_int(0, 5);
    LinearProgram lp(n);
    for (std::size_t j = 0; j < n; ++j) {
      lp.set_objective(j, rng.uniform(-2.0, 2.0));
      lp.add_upper_bound(j, rng.uniform(0.5, 3.0));
    }
    std::vector<double> row(n, 1.0);
    lp.add_constraint(row, ConstraintSense::kLessEqual, rng.uniform(1.0, 2.0 * n));
    auto first = solve_lp(lp);
    ASSERT_TRUE(first.optimal());
    ASSERT_TRUE(first.basis.valid());

    SimplexBasis basis = first.basis;
    for (int step = 0; step < 4; ++step) {
      for (std::size_t j = 0; j < n; ++j) {
        lp.set_objective(j, rng.uniform(-2.0, 2.0));
      }
      auto warm = solve_lp(lp, basis);
      auto cold = solve_lp(lp);
      ASSERT_TRUE(warm.optimal());
      ASSERT_TRUE(cold.optimal());
      EXPECT_NEAR(warm.objective, cold.objective, 1e-7)
          << "trial " << trial << " step " << step;
      expect_feasible(lp, warm.x, 1e-7);
      basis = warm.basis;
    }
  }
}

TEST(Simplex, WarmStartFallsBackWhenRhsShiftBreaksFeasibility) {
  // MPC pattern: same structure, shifted data. A rhs shift can make the old
  // basis primal infeasible; solve_lp must fall back to a cold solve rather
  // than fail or return garbage.
  LinearProgram lp(2);
  lp.set_objective(0, -2.0);
  lp.set_objective(1, -1.0);
  lp.add_upper_bound(0, 5.0);
  lp.add_upper_bound(1, 5.0);
  lp.add_constraint({1.0, 1.0}, ConstraintSense::kLessEqual, 8.0);
  lp.add_constraint({1.0, 0.0}, ConstraintSense::kGreaterEqual, 1.0);
  auto first = solve_lp(lp);
  ASSERT_TRUE(first.optimal());

  LinearProgram shifted(2);
  shifted.set_objective(0, -2.0);
  shifted.set_objective(1, -1.0);
  shifted.add_upper_bound(0, 5.0);
  shifted.add_upper_bound(1, 5.0);
  shifted.add_constraint({1.0, 1.0}, ConstraintSense::kLessEqual, 3.0);
  shifted.add_constraint({1.0, 0.0}, ConstraintSense::kGreaterEqual, 2.5);
  auto warm = solve_lp(shifted, first.basis);
  auto cold = solve_lp(shifted);
  ASSERT_TRUE(warm.optimal());
  EXPECT_NEAR(warm.objective, cold.objective, 1e-8);
}

TEST(Simplex, WarmStartRejectsMalformedBasis) {
  LinearProgram lp(2);
  lp.set_objective(0, 1.0);
  lp.add_constraint({1.0, 1.0}, ConstraintSense::kGreaterEqual, 2.0);
  auto cold = solve_lp(lp);
  ASSERT_TRUE(cold.optimal());

  SimplexBasis junk;
  junk.basic = {0, 0};  // duplicate and wrong row count for this LP
  junk.at_upper = {0};
  auto warm = solve_lp(lp, junk);
  ASSERT_TRUE(warm.optimal());
  EXPECT_NEAR(warm.objective, cold.objective, 1e-8);
}

TEST(Simplex, WarmStartSurvivesDegenerateVertices) {
  // Degenerate optimum (more tight constraints than dimensions): warm
  // re-entry must not cycle or lose the optimum.
  LinearProgram lp(2);
  lp.set_objective(0, -1.0);
  lp.set_objective(1, -1.0);
  lp.add_upper_bound(0, 1.0);
  lp.add_upper_bound(1, 1.0);
  lp.add_constraint({1.0, 1.0}, ConstraintSense::kLessEqual, 2.0);
  lp.add_constraint({1.0, -1.0}, ConstraintSense::kLessEqual, 0.0);
  lp.add_constraint({-1.0, 1.0}, ConstraintSense::kLessEqual, 0.0);
  auto first = solve_lp(lp);
  ASSERT_TRUE(first.optimal());
  EXPECT_NEAR(first.objective, -2.0, 1e-8);

  // The coupling rows force x0 = x1; re-cost so the optimum moves to the
  // (doubly degenerate) origin.
  lp.set_objective(0, 1.0);
  lp.set_objective(1, -0.5);
  auto warm = solve_lp(lp, first.basis);
  ASSERT_TRUE(warm.optimal());
  EXPECT_NEAR(warm.objective, 0.0, 1e-8);
  EXPECT_NEAR(warm.x[0], 0.0, 1e-8);
  EXPECT_NEAR(warm.x[1], 0.0, 1e-8);
}

}  // namespace
}  // namespace grefar
