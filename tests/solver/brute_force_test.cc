#include "solver/brute_force.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/check.h"

namespace grefar {
namespace {

TEST(BruteForce, FindsBoxMinimum) {
  CappedBoxPolytope p({2.0, 2.0});
  auto result = minimize_brute_force(
      [](const std::vector<double>& x) {
        return (x[0] - 1.0) * (x[0] - 1.0) + (x[1] - 2.0) * (x[1] - 2.0);
      },
      p, 21);
  EXPECT_NEAR(result.x[0], 1.0, 0.11);
  EXPECT_NEAR(result.x[1], 2.0, 1e-9);
}

TEST(BruteForce, RespectsGroupCap) {
  CappedBoxPolytope p({2.0, 2.0});
  p.add_group({0, 1}, 1.0);
  auto result = minimize_brute_force(
      [](const std::vector<double>& x) { return -(x[0] + x[1]); }, p, 21);
  EXPECT_NEAR(result.x[0] + result.x[1], 1.0, 1e-9);
}

TEST(BruteForce, CountsEvaluations) {
  CappedBoxPolytope p({1.0});
  auto result = minimize_brute_force(
      [](const std::vector<double>& x) { return x[0]; }, p, 11);
  EXPECT_EQ(result.evaluated, 11u);
  EXPECT_NEAR(result.x[0], 0.0, 1e-12);
}

TEST(BruteForce, RejectsBadInputs) {
  CappedBoxPolytope p({1.0});
  auto f = [](const std::vector<double>& x) { return x[0]; };
  EXPECT_THROW(minimize_brute_force(f, p, 1), ContractViolation);
  CappedBoxPolytope big(std::vector<double>(9, 1.0));
  EXPECT_THROW(minimize_brute_force(f, big, 3), ContractViolation);
}

TEST(BruteForce, RejectsInfiniteBounds) {
  CappedBoxPolytope p({std::numeric_limits<double>::infinity()});
  auto f = [](const std::vector<double>& x) { return x[0]; };
  EXPECT_THROW(minimize_brute_force(f, p, 5), ContractViolation);
}

}  // namespace
}  // namespace grefar
