#include "solver/capped_box.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/check.h"
#include "util/rng.h"

namespace grefar {
namespace {

double dist2(const std::vector<double>& a, const std::vector<double>& b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += (a[i] - b[i]) * (a[i] - b[i]);
  return s;
}

TEST(CappedBox, RejectsNegativeBounds) {
  EXPECT_THROW(CappedBoxPolytope({1.0, -0.5}), ContractViolation);
}

TEST(CappedBox, RejectsOverlappingGroups) {
  CappedBoxPolytope p({1.0, 1.0, 1.0});
  p.add_group({0, 1}, 1.0);
  EXPECT_THROW(p.add_group({1, 2}, 1.0), ContractViolation);
}

TEST(CappedBox, RejectsNegativeCap) {
  CappedBoxPolytope p({1.0});
  EXPECT_THROW(p.add_group({0}, -1.0), ContractViolation);
}

TEST(CappedBox, ContainsChecksBoxAndCap) {
  CappedBoxPolytope p({2.0, 2.0});
  p.add_group({0, 1}, 3.0);
  EXPECT_TRUE(p.contains({1.0, 1.0}));
  EXPECT_TRUE(p.contains({2.0, 1.0}));
  EXPECT_FALSE(p.contains({2.0, 2.0}));  // cap 3 violated
  EXPECT_FALSE(p.contains({-0.1, 0.0}));
  EXPECT_FALSE(p.contains({2.5, 0.0}));
}

TEST(CappedBox, ProjectInsideIsIdentity) {
  CappedBoxPolytope p({2.0, 2.0});
  p.add_group({0, 1}, 3.0);
  auto x = p.project({0.5, 1.0});
  EXPECT_DOUBLE_EQ(x[0], 0.5);
  EXPECT_DOUBLE_EQ(x[1], 1.0);
}

TEST(CappedBox, ProjectClampsBoxOnly) {
  CappedBoxPolytope p({1.0, 1.0});
  auto x = p.project({-3.0, 5.0});
  EXPECT_DOUBLE_EQ(x[0], 0.0);
  EXPECT_DOUBLE_EQ(x[1], 1.0);
}

TEST(CappedBox, ProjectOntoCapIsSymmetric) {
  CappedBoxPolytope p({10.0, 10.0});
  p.add_group({0, 1}, 2.0);
  auto x = p.project({3.0, 3.0});
  EXPECT_NEAR(x[0], 1.0, 1e-7);
  EXPECT_NEAR(x[1], 1.0, 1e-7);
}

TEST(CappedBox, ProjectRespectsUpperBoundDuringCapProjection) {
  // y = (5, 0.6), ub = (1, 1), cap = 1.2. Clamping first would give
  // (1, 0.6) -> lambda shift; the true projection is clamp(y - lambda).
  CappedBoxPolytope p({1.0, 1.0});
  p.add_group({0, 1}, 1.2);
  auto x = p.project({5.0, 0.6});
  EXPECT_TRUE(p.contains(x, 1e-6));
  EXPECT_NEAR(x[0] + x[1], 1.2, 1e-6);
  // x0 should stay at its bound (y0 - lambda >= 1 for the solving lambda).
  EXPECT_NEAR(x[0], 1.0, 1e-6);
  EXPECT_NEAR(x[1], 0.2, 1e-6);
}

TEST(CappedBox, ProjectionIsClosestFeasiblePoint) {
  // Verify the projection property against random feasible points.
  Rng rng(7);
  CappedBoxPolytope p({1.5, 2.0, 1.0});
  p.add_group({0, 1, 2}, 2.5);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<double> y{rng.uniform(-1.0, 4.0), rng.uniform(-1.0, 4.0),
                          rng.uniform(-1.0, 4.0)};
    auto proj = p.project(y);
    ASSERT_TRUE(p.contains(proj, 1e-6));
    double proj_d = dist2(proj, y);
    for (int s = 0; s < 200; ++s) {
      std::vector<double> z{rng.uniform(0.0, 1.5), rng.uniform(0.0, 2.0),
                            rng.uniform(0.0, 1.0)};
      if (!p.contains(z, 0.0)) continue;
      EXPECT_GE(dist2(z, y) + 1e-6, proj_d)
          << "found a closer feasible point than the projection";
    }
  }
}

TEST(CappedBox, MinimizeLinearBoxOnly) {
  CappedBoxPolytope p({2.0, 3.0});
  auto x = p.minimize_linear({-1.0, 0.5});
  EXPECT_DOUBLE_EQ(x[0], 2.0);  // negative cost saturates
  EXPECT_DOUBLE_EQ(x[1], 0.0);  // positive cost stays at zero
}

TEST(CappedBox, MinimizeLinearFillsCheapestFirst) {
  CappedBoxPolytope p({2.0, 2.0, 2.0});
  p.add_group({0, 1, 2}, 3.0);
  auto x = p.minimize_linear({-3.0, -1.0, -2.0});
  EXPECT_DOUBLE_EQ(x[0], 2.0);  // most negative first
  EXPECT_DOUBLE_EQ(x[2], 1.0);  // then next, fractional at the cap
  EXPECT_DOUBLE_EQ(x[1], 0.0);
}

TEST(CappedBox, MinimizeLinearIgnoresNonNegativeCosts) {
  CappedBoxPolytope p({2.0, 2.0});
  p.add_group({0, 1}, 3.0);
  auto x = p.minimize_linear({0.0, 1.0});
  EXPECT_DOUBLE_EQ(x[0], 0.0);
  EXPECT_DOUBLE_EQ(x[1], 0.0);
}

TEST(CappedBox, MinimizeLinearIsOptimalAgainstRandomFeasiblePoints) {
  Rng rng(21);
  CappedBoxPolytope p({1.0, 2.0, 0.5, 1.5});
  p.add_group({0, 1}, 1.8);
  p.add_group({2, 3}, 1.0);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> c{rng.uniform(-2.0, 2.0), rng.uniform(-2.0, 2.0),
                          rng.uniform(-2.0, 2.0), rng.uniform(-2.0, 2.0)};
    auto x = p.minimize_linear(c);
    ASSERT_TRUE(p.contains(x, 1e-9));
    double fx = 0.0;
    for (std::size_t i = 0; i < 4; ++i) fx += c[i] * x[i];
    for (int s = 0; s < 300; ++s) {
      std::vector<double> z{rng.uniform(0.0, 1.0), rng.uniform(0.0, 2.0),
                            rng.uniform(0.0, 0.5), rng.uniform(0.0, 1.5)};
      if (!p.contains(z, 0.0)) continue;
      double fz = 0.0;
      for (std::size_t i = 0; i < 4; ++i) fz += c[i] * z[i];
      EXPECT_GE(fz + 1e-9, fx);
    }
  }
}

TEST(CappedBox, ZeroCapGroupPinsToZero) {
  CappedBoxPolytope p({5.0, 5.0});
  p.add_group({0, 1}, 0.0);
  auto x = p.project({3.0, 3.0});
  EXPECT_NEAR(x[0], 0.0, 1e-9);
  EXPECT_NEAR(x[1], 0.0, 1e-9);
  auto lmo = p.minimize_linear({-1.0, -1.0});
  EXPECT_DOUBLE_EQ(lmo[0] + lmo[1], 0.0);
}

TEST(CappedBox, DimensionMismatchIsContractViolation) {
  CappedBoxPolytope p({1.0, 1.0});
  EXPECT_THROW(p.project({1.0}), ContractViolation);
  EXPECT_THROW(p.minimize_linear({1.0, 2.0, 3.0}), ContractViolation);
  EXPECT_THROW(p.contains({1.0}), ContractViolation);
  EXPECT_THROW(p.add_group({5}, 1.0), ContractViolation);
}

}  // namespace
}  // namespace grefar
