#include "solver/frank_wolfe.h"

#include <gtest/gtest.h>

#include "solver/brute_force.h"
#include "solver/projected_gradient.h"
#include "util/rng.h"

namespace grefar {
namespace {

class QuadraticObjective final : public ConvexObjective {
 public:
  explicit QuadraticObjective(std::vector<double> target) : target_(std::move(target)) {}

  double value(const std::vector<double>& x) const override {
    double s = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      s += 0.5 * (x[i] - target_[i]) * (x[i] - target_[i]);
    }
    return s;
  }
  void gradient(const std::vector<double>& x, std::vector<double>& out) const override {
    out.resize(x.size());
    for (std::size_t i = 0; i < x.size(); ++i) out[i] = x[i] - target_[i];
  }

 private:
  std::vector<double> target_;
};

/// Linear objective: FW should land on the LMO vertex in one step.
class LinearObjective final : public ConvexObjective {
 public:
  explicit LinearObjective(std::vector<double> c) : c_(std::move(c)) {}

  double value(const std::vector<double>& x) const override {
    double s = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) s += c_[i] * x[i];
    return s;
  }
  void gradient(const std::vector<double>&, std::vector<double>& out) const override {
    out = c_;
  }

 private:
  std::vector<double> c_;
};

TEST(FrankWolfe, InteriorQuadraticMinimum) {
  CappedBoxPolytope p({10.0, 10.0});
  QuadraticObjective obj({2.0, 3.0});
  auto result = minimize_frank_wolfe(obj, p);
  EXPECT_NEAR(result.x[0], 2.0, 1e-3);
  EXPECT_NEAR(result.x[1], 3.0, 1e-3);
}

TEST(FrankWolfe, LinearObjectiveReachesVertex) {
  CappedBoxPolytope p({2.0, 2.0});
  p.add_group({0, 1}, 3.0);
  LinearObjective obj({-3.0, -1.0});
  auto result = minimize_frank_wolfe(obj, p);
  EXPECT_NEAR(result.x[0], 2.0, 1e-6);
  EXPECT_NEAR(result.x[1], 1.0, 1e-6);
  EXPECT_TRUE(result.converged);
}

TEST(FrankWolfe, GapCertifiesOptimality) {
  // Vanilla FW converges O(1/k) toward faces (zigzag), so the certificate is
  // loose but must still bound the suboptimality from above.
  CappedBoxPolytope p({5.0, 5.0});
  p.add_group({0, 1}, 4.0);
  QuadraticObjective obj({3.0, 3.0});
  auto result = minimize_frank_wolfe(obj, p);
  EXPECT_LE(result.gap, 0.05);
  EXPECT_NEAR(result.x[0] + result.x[1], 4.0, 0.02);
  // Gap really does upper-bound the suboptimality: f(x*) = 1 at (2,2).
  EXPECT_LE(result.objective - 1.0, result.gap + 1e-9);
}

TEST(FrankWolfe, AgreesWithPgdOnRandomQuadratics) {
  Rng rng(11);
  for (int trial = 0; trial < 25; ++trial) {
    std::vector<double> target{rng.uniform(-1.0, 3.0), rng.uniform(-1.0, 3.0),
                               rng.uniform(-1.0, 3.0)};
    QuadraticObjective obj(target);
    CappedBoxPolytope p({2.0, 1.0, 1.5});
    p.add_group({0, 1, 2}, rng.uniform(1.0, 4.0));
    auto fw = minimize_frank_wolfe(obj, p);
    auto pgd = minimize_projected_gradient(obj, p);
    EXPECT_NEAR(fw.objective, pgd.objective, 2e-3) << "trial " << trial;
  }
}

TEST(FrankWolfe, MatchesBruteForce) {
  QuadraticObjective obj({0.8, 1.3});
  CappedBoxPolytope p({1.0, 1.0});
  p.add_group({0, 1}, 1.5);
  auto fw = minimize_frank_wolfe(obj, p);
  auto brute = minimize_brute_force(
      [&](const std::vector<double>& x) { return obj.value(x); }, p, 41);
  EXPECT_LE(fw.objective, brute.objective + 1e-4);
}

TEST(FrankWolfe, WarmStartPreservesOptimum) {
  CappedBoxPolytope p({2.0, 2.0});
  QuadraticObjective obj({1.0, 1.0});
  auto cold = minimize_frank_wolfe(obj, p);
  auto warm = minimize_frank_wolfe(obj, p, {2.0, 0.0});
  EXPECT_NEAR(cold.objective, warm.objective, 1e-5);
}

TEST(FrankWolfe, IterationBudgetRespected) {
  CappedBoxPolytope p({1.0});
  QuadraticObjective obj({0.5});
  FrankWolfeOptions options;
  options.max_iterations = 3;
  auto result = minimize_frank_wolfe(obj, p, {}, options);
  EXPECT_LE(result.iterations, 3);
}

}  // namespace
}  // namespace grefar
