#include "solver/projected_gradient.h"

#include <gtest/gtest.h>

#include "solver/brute_force.h"
#include "util/rng.h"

namespace grefar {
namespace {

/// Quadratic 0.5 ||x - target||^2 — projection in disguise.
class QuadraticObjective final : public ConvexObjective {
 public:
  explicit QuadraticObjective(std::vector<double> target) : target_(std::move(target)) {}

  double value(const std::vector<double>& x) const override {
    double s = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      s += 0.5 * (x[i] - target_[i]) * (x[i] - target_[i]);
    }
    return s;
  }
  void gradient(const std::vector<double>& x, std::vector<double>& out) const override {
    out.resize(x.size());
    for (std::size_t i = 0; i < x.size(); ++i) out[i] = x[i] - target_[i];
  }

 private:
  std::vector<double> target_;
};

/// Linear + quadratic + smoothly-blended hinge, resembling the (smoothed)
/// GreFar slot objective. The hinge penalty 2*(total - kink)_+ has its slope
/// blended over [kink - w, kink + w] so the function is C^1 — the contract
/// the first-order solvers document (see PerSlotProblem's kink smoothing).
class MixedObjective final : public ConvexObjective {
 public:
  MixedObjective(std::vector<double> slopes, double kink, double quad)
      : slopes_(std::move(slopes)), kink_(kink), quad_(quad) {}

  double value(const std::vector<double>& x) const override {
    double s = 0.0;
    double total = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      s += slopes_[i] * x[i];
      total += x[i];
    }
    s += quad_ * total * total;
    s += hinge_value(total);
    return s;
  }
  void gradient(const std::vector<double>& x, std::vector<double>& out) const override {
    out.resize(x.size());
    double total = 0.0;
    for (double v : x) total += v;
    double common = 2.0 * quad_ * total + hinge_slope(total);
    for (std::size_t i = 0; i < x.size(); ++i) out[i] = slopes_[i] + common;
  }

 private:
  static constexpr double kBlend = 0.1;  // smoothing half-width
  double hinge_slope(double total) const {
    if (total <= kink_ - kBlend) return 0.0;
    if (total >= kink_ + kBlend) return 2.0;
    return 2.0 * (total - (kink_ - kBlend)) / (2.0 * kBlend);
  }
  double hinge_value(double total) const {
    if (total <= kink_ - kBlend) return 0.0;
    if (total >= kink_ + kBlend) return 2.0 * (total - kink_);
    double z = total - (kink_ - kBlend);
    return 0.5 * z * hinge_slope(total);  // integral of the linear ramp
  }

  std::vector<double> slopes_;
  double kink_;
  double quad_;
};

TEST(Pgd, UnconstrainedInteriorMinimum) {
  CappedBoxPolytope p({10.0, 10.0});
  QuadraticObjective obj({2.0, 3.0});
  auto result = minimize_projected_gradient(obj, p);
  EXPECT_NEAR(result.x[0], 2.0, 1e-4);
  EXPECT_NEAR(result.x[1], 3.0, 1e-4);
  EXPECT_NEAR(result.objective, 0.0, 1e-7);
}

TEST(Pgd, BoxActiveAtOptimum) {
  CappedBoxPolytope p({1.0, 1.0});
  QuadraticObjective obj({5.0, 0.5});
  auto result = minimize_projected_gradient(obj, p);
  EXPECT_NEAR(result.x[0], 1.0, 1e-5);
  EXPECT_NEAR(result.x[1], 0.5, 1e-5);
}

TEST(Pgd, CapActiveAtOptimum) {
  CappedBoxPolytope p({5.0, 5.0});
  p.add_group({0, 1}, 2.0);
  QuadraticObjective obj({3.0, 3.0});
  auto result = minimize_projected_gradient(obj, p);
  EXPECT_NEAR(result.x[0], 1.0, 1e-5);
  EXPECT_NEAR(result.x[1], 1.0, 1e-5);
}

TEST(Pgd, StartingPointDoesNotChangeOptimum) {
  CappedBoxPolytope p({4.0, 4.0});
  p.add_group({0, 1}, 5.0);
  QuadraticObjective obj({1.0, 2.0});
  auto a = minimize_projected_gradient(obj, p, {0.0, 0.0});
  auto b = minimize_projected_gradient(obj, p, {4.0, 1.0});
  EXPECT_NEAR(a.objective, b.objective, 1e-6);
}

TEST(Pgd, MatchesBruteForceOnMixedObjective) {
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> slopes{rng.uniform(-2.0, 1.0), rng.uniform(-2.0, 1.0),
                               rng.uniform(-2.0, 1.0)};
    MixedObjective obj(slopes, 1.5, 0.3);
    CappedBoxPolytope p({1.0, 1.5, 2.0});
    p.add_group({0, 1, 2}, rng.uniform(1.0, 3.5));

    auto pgd = minimize_projected_gradient(obj, p);
    auto brute = minimize_brute_force(
        [&](const std::vector<double>& x) { return obj.value(x); }, p, 21);
    EXPECT_LE(pgd.objective, brute.objective + 1e-3) << "trial " << trial;
  }
}

TEST(Pgd, ReportsIterationsAndConvergence) {
  CappedBoxPolytope p({1.0});
  QuadraticObjective obj({0.5});
  auto result = minimize_projected_gradient(obj, p);
  EXPECT_GT(result.iterations, 0);
  EXPECT_TRUE(result.converged);
}

TEST(Pgd, ZeroIterationBudgetReturnsProjectedStart) {
  CappedBoxPolytope p({1.0});
  QuadraticObjective obj({0.5});
  PgdOptions options;
  options.max_iterations = 0;
  auto result = minimize_projected_gradient(obj, p, {5.0}, options);
  EXPECT_NEAR(result.x[0], 1.0, 1e-12);  // projected start
}

}  // namespace
}  // namespace grefar
