#include "serve/service_loop.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "check/invariant_auditor.h"
#include "core/admission.h"
#include "core/grefar.h"
#include "scenario/paper_scenario.h"
#include "scenario/serve_scenario.h"
#include "trace/job_trace.h"
#include "trace/price_trace.h"
#include "util/check.h"
#include "util/rng.h"

namespace grefar {
namespace {

constexpr std::int64_t kHorizon = 30;

struct Fixture {
  PaperScenario scenario;
  std::shared_ptr<const ClusterConfig> config;
  std::string jobs_csv, prices_csv;

  Fixture() : scenario(make_serve_scenario(2, 6, /*seed=*/11)) {
    config = std::make_shared<const ClusterConfig>(scenario.config);
    jobs_csv =
        job_trace_to_csv(materialize_arrivals(*scenario.arrivals, kHorizon));
    prices_csv =
        price_trace_to_csv(materialize_prices(*scenario.prices, kHorizon));
  }

  std::shared_ptr<GreFarScheduler> make_scheduler() const {
    return std::make_shared<GreFarScheduler>(config,
                                             paper_grefar_params(2.0, 0.5));
  }

  std::unique_ptr<ServiceLoop> make_loop(ServiceLoopOptions options) const {
    auto jobs = std::make_unique<StreamingJobTraceSource>(
        std::make_unique<std::istringstream>(jobs_csv),
        config->num_job_types());
    auto prices = std::make_unique<StreamingPriceTraceSource>(
        std::make_unique<std::istringstream>(prices_csv),
        config->num_data_centers());
    return std::make_unique<ServiceLoop>(config, scenario.availability,
                                         make_scheduler(), std::move(jobs),
                                         std::move(prices), options);
  }
};

/// Records what a flush inspector observes: slot order plus the routed
/// matrices (the decisions), copied out of each record.
class RecordingInspector final : public SlotInspector {
 public:
  explicit RecordingInspector(std::vector<std::string>* journal = nullptr,
                              std::string tag = {})
      : journal_(journal), tag_(std::move(tag)) {}

  void inspect(const SlotRecord& record) override {
    slots.push_back(record.slot);
    routed.push_back(*record.routed);
    energy = 0.0;
    for (double c : *record.dc_energy_cost) energy += c;
    if (journal_ != nullptr) {
      journal_->push_back(tag_ + ":" + std::to_string(record.slot));
    }
  }

  std::vector<std::int64_t> slots;
  std::vector<MatrixD> routed;
  double energy = 0.0;

 private:
  std::vector<std::string>* journal_;
  std::string tag_;
};

class ThrowingInspector final : public SlotInspector {
 public:
  explicit ThrowingInspector(std::int64_t at) : at_(at) {}
  void inspect(const SlotRecord& record) override {
    if (record.slot == at_) throw std::runtime_error("inspector boom");
  }

 private:
  std::int64_t at_;
};

void expect_bitwise_equal(const SimMetrics& a, const SimMetrics& b) {
  ASSERT_EQ(a.slots(), b.slots());
  for (std::size_t t = 0; t < a.slots(); ++t) {
    EXPECT_EQ(a.energy_cost.values()[t], b.energy_cost.values()[t]) << t;
    EXPECT_EQ(a.fairness.values()[t], b.fairness.values()[t]) << t;
    EXPECT_EQ(a.total_queue_jobs.values()[t], b.total_queue_jobs.values()[t])
        << t;
  }
  EXPECT_EQ(a.account_work_total, b.account_work_total);
}

/// The batch reference: materialized table models through the plain engine,
/// with a recording inspector capturing the per-slot decisions.
struct BatchRun {
  std::unique_ptr<SimulationEngine> engine;
  std::shared_ptr<RecordingInspector> recorder;
};

BatchRun run_batch(const Fixture& f) {
  BatchRun out;
  auto arrivals = std::make_shared<TableArrivals>(
      job_trace_from_csv(f.jobs_csv, f.config->num_job_types()).value());
  auto prices = std::make_shared<TablePriceModel>(
      price_trace_from_csv(f.prices_csv, f.config->num_data_centers()).value());
  out.engine = std::make_unique<SimulationEngine>(
      f.config, prices, f.scenario.availability, arrivals, f.make_scheduler());
  out.recorder = std::make_shared<RecordingInspector>();
  out.engine->set_inspector(out.recorder);
  out.engine->run(kHorizon);
  return out;
}

TEST(ServiceLoop, BitIdenticalToBatchAtEveryQueueDepth) {
  Fixture f;
  BatchRun batch = run_batch(f);

  for (std::size_t depth : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    for (bool pipelined : {false, true}) {
      ServiceLoopOptions options;
      options.queue_depth = depth;
      options.pipelined = pipelined;
      auto loop = f.make_loop(options);
      auto recorder = std::make_shared<RecordingInspector>();
      loop->add_flush_inspector(recorder);
      auto stats = loop->run();
      ASSERT_TRUE(stats.ok()) << stats.error().message;
      EXPECT_EQ(stats.value().slots, kHorizon);
      expect_bitwise_equal(loop->metrics(), batch.engine->metrics());
      // Decisions, not just aggregates: every routed matrix bit-identical,
      // observed by the flush inspector in slot order.
      ASSERT_EQ(recorder->slots.size(), batch.recorder->slots.size());
      for (std::size_t t = 0; t < recorder->slots.size(); ++t) {
        EXPECT_EQ(recorder->slots[t], static_cast<std::int64_t>(t));
        EXPECT_EQ(recorder->routed[t], batch.recorder->routed[t])
            << "depth=" << depth << " pipelined=" << pipelined << " t=" << t;
      }
    }
  }
}

/// A v2 fixture: the serve-scenario cluster with decay curves switched on,
/// plus a deterministic annotated arrival table serialized to the v2 trace
/// format. Every annotation is concrete, so the batch reference
/// (ValuedTableArrivals) and the streamed v2 trace describe the same
/// workload exactly.
struct ValuedFixture {
  PaperScenario scenario;
  std::shared_ptr<const ClusterConfig> config;
  std::vector<std::vector<ArrivalBatch>> slots;
  std::string jobs_csv, prices_csv;

  ValuedFixture() : scenario(make_serve_scenario(2, 6, /*seed=*/11)) {
    for (std::size_t j = 0; j < scenario.config.job_types.size(); ++j) {
      scenario.config.job_types[j].decay =
          j % 2 == 0 ? DecayKind::kExponential : DecayKind::kLinear;
    }
    config = std::make_shared<const ClusterConfig>(scenario.config);
    Rng root(0xF00DULL);
    slots.resize(static_cast<std::size_t>(kHorizon));
    for (std::int64_t t = 0; t < kHorizon; ++t) {
      Rng r = root.fork(t);
      for (std::size_t j = 0; j < config->job_types.size(); ++j) {
        ArrivalBatch b;
        b.type = j;
        b.count = r.poisson(2.0);
        b.value = r.uniform(0.5, 3.0) * config->job_types[j].work;
        b.decay_rate = r.uniform(0.0, 0.2);
        b.deadline = r.bernoulli(0.5) ? r.uniform_int(2, 10) : kNoDeadline;
        if (b.count > 0) slots[static_cast<std::size_t>(t)].push_back(b);
      }
    }
    // Pin the trace span to [0, kHorizon) even if the last slot is idle.
    if (slots.back().empty()) {
      slots.back().push_back({.type = 0,
                              .count = 1,
                              .value = 1.0,
                              .decay_rate = 0.0,
                              .deadline = kNoDeadline});
    }
    jobs_csv = valued_job_trace_to_csv(slots);
    prices_csv =
        price_trace_to_csv(materialize_prices(*scenario.prices, kHorizon));
  }

  std::shared_ptr<GreFarScheduler> make_scheduler() const {
    return std::make_shared<GreFarScheduler>(config,
                                             paper_grefar_params(2.0, 0.5));
  }

  std::unique_ptr<ServiceLoop> make_loop(ServiceLoopOptions options) const {
    auto jobs = std::make_unique<StreamingJobTraceSource>(
        std::make_unique<std::istringstream>(jobs_csv),
        config->num_job_types());
    auto prices = std::make_unique<StreamingPriceTraceSource>(
        std::make_unique<std::istringstream>(prices_csv),
        config->num_data_centers());
    return std::make_unique<ServiceLoop>(config, scenario.availability,
                                         make_scheduler(), std::move(jobs),
                                         std::move(prices), options);
  }

  std::unique_ptr<SimulationEngine> run_batch(
      std::shared_ptr<AdmissionPolicy> admission = nullptr) const {
    // Parse the same serialized trace the loop streams (the writer's fixed
    // 6-decimal format rounds annotations, so the in-memory table would
    // differ from the file in the last ulp).
    auto arrivals = std::make_shared<ValuedTableArrivals>(
        valued_job_trace_from_csv(jobs_csv, config->num_job_types())
            .value()
            .slots,
        config->num_job_types());
    auto prices = std::make_shared<TablePriceModel>(
        price_trace_from_csv(prices_csv, config->num_data_centers()).value());
    auto engine = std::make_unique<SimulationEngine>(
        config, prices, scenario.availability, arrivals, make_scheduler());
    if (admission != nullptr) engine->set_admission_policy(admission);
    engine->run(kHorizon);
    return engine;
  }
};

void expect_value_ledger_equal(const SimMetrics& a, const SimMetrics& b) {
  ASSERT_EQ(a.slots(), b.slots());
  for (std::size_t t = 0; t < a.slots(); ++t) {
    EXPECT_EQ(a.realized_value.values()[t], b.realized_value.values()[t]) << t;
    EXPECT_EQ(a.admitted_value.values()[t], b.admitted_value.values()[t]) << t;
    EXPECT_EQ(a.rejected_value.values()[t], b.rejected_value.values()[t]) << t;
    EXPECT_EQ(a.abandoned_value.values()[t], b.abandoned_value.values()[t]) << t;
    EXPECT_EQ(a.abandoned_jobs.values()[t], b.abandoned_jobs.values()[t]) << t;
    EXPECT_EQ(a.decay_loss.values()[t], b.decay_loss.values()[t]) << t;
    EXPECT_EQ(a.rejected_jobs.values()[t], b.rejected_jobs.values()[t]) << t;
  }
}

TEST(ServiceLoop, ValuedTraceBitIdenticalToBatchSerialAndPipelined) {
  ValuedFixture f;
  auto batch = f.run_batch();
  // The workload must actually exercise the v2 machinery.
  EXPECT_GT(batch->metrics().total_realized_value(), 0.0);
  EXPECT_GT(batch->metrics().abandoned_jobs.sum(), 0.0);
  EXPECT_GT(batch->metrics().decay_loss.sum(), 0.0);

  for (bool pipelined : {false, true}) {
    ServiceLoopOptions options;
    options.pipelined = pipelined;
    auto loop = f.make_loop(options);
    InvariantAuditorOptions audit;
    audit.throw_on_violation = true;
    auto auditor = std::make_shared<InvariantAuditor>(*f.config, audit);
    loop->add_flush_inspector(auditor);
    auto stats = loop->run();
    ASSERT_TRUE(stats.ok()) << stats.error().message;
    EXPECT_EQ(stats.value().slots, kHorizon);
    EXPECT_TRUE(auditor->ok());
    expect_bitwise_equal(loop->metrics(), batch->metrics());
    expect_value_ledger_equal(loop->metrics(), batch->metrics());
  }
}

TEST(ServiceLoop, AdmissionPolicyMatchesBatchEngine) {
  ValuedFixture f;
  auto admission = std::make_shared<ThresholdAdmission>(1.5);
  auto batch = f.run_batch(admission);
  EXPECT_GT(batch->metrics().rejected_jobs.sum(), 0.0);

  for (bool pipelined : {false, true}) {
    ServiceLoopOptions options;
    options.pipelined = pipelined;
    options.admission = std::make_shared<ThresholdAdmission>(1.5);
    auto loop = f.make_loop(options);
    auto stats = loop->run();
    ASSERT_TRUE(stats.ok()) << stats.error().message;
    expect_bitwise_equal(loop->metrics(), batch->metrics());
    expect_value_ledger_equal(loop->metrics(), batch->metrics());
  }
}

TEST(ServiceLoop, FlushInspectorsRunInRegistrationOrder) {
  Fixture f;
  ServiceLoopOptions options;
  options.queue_depth = 2;
  auto loop = f.make_loop(options);
  std::vector<std::string> journal;
  loop->add_flush_inspector(
      std::make_shared<RecordingInspector>(&journal, "first"));
  loop->add_flush_inspector(
      std::make_shared<RecordingInspector>(&journal, "second"));
  ASSERT_TRUE(loop->run().ok());
  ASSERT_EQ(journal.size(), 2u * kHorizon);
  for (std::int64_t t = 0; t < kHorizon; ++t) {
    EXPECT_EQ(journal[static_cast<std::size_t>(2 * t)],
              "first:" + std::to_string(t));
    EXPECT_EQ(journal[static_cast<std::size_t>(2 * t + 1)],
              "second:" + std::to_string(t));
  }
}

TEST(ServiceLoop, InvariantAuditorRidesTheFlushStage) {
  Fixture f;
  auto loop = f.make_loop({});
  InvariantAuditorOptions audit;
  audit.throw_on_violation = true;
  auto auditor = std::make_shared<InvariantAuditor>(*f.config, audit);
  loop->add_flush_inspector(auditor);
  auto stats = loop->run();
  ASSERT_TRUE(stats.ok()) << stats.error().message;
  EXPECT_EQ(auditor->slots_audited(), kHorizon);
  EXPECT_TRUE(auditor->ok());
}

TEST(ServiceLoop, ThrowingFlushInspectorSurfacesAsError) {
  Fixture f;
  for (bool pipelined : {false, true}) {
    ServiceLoopOptions options;
    options.pipelined = pipelined;
    auto loop = f.make_loop(options);
    loop->add_flush_inspector(std::make_shared<ThrowingInspector>(5));
    auto stats = loop->run();
    ASSERT_FALSE(stats.ok());
    EXPECT_EQ(stats.error().message,
              "flush inspector failed at slot 5: inspector boom");
  }
}

TEST(ServiceLoop, IngestErrorSurfacesWithByteOffset) {
  Fixture f;
  for (bool pipelined : {false, true}) {
    // Corrupt one byte mid-trace: the error must name the row's position.
    std::string bad = f.jobs_csv;
    bad[bad.find("\n3,") + 1] = 'x';
    auto jobs = std::make_unique<StreamingJobTraceSource>(
        std::make_unique<std::istringstream>(bad), f.config->num_job_types());
    auto prices = std::make_unique<StreamingPriceTraceSource>(
        std::make_unique<std::istringstream>(f.prices_csv),
        f.config->num_data_centers());
    ServiceLoopOptions options;
    options.pipelined = pipelined;
    ServiceLoop loop(f.config, f.scenario.availability, f.make_scheduler(),
                     std::move(jobs), std::move(prices), options);
    auto stats = loop.run();
    ASSERT_FALSE(stats.ok());
    EXPECT_NE(stats.error().message.find("at byte"), std::string::npos)
        << stats.error().message;
  }
}

TEST(ServiceLoop, MaxSlotsStopsEarly) {
  Fixture f;
  ServiceLoopOptions options;
  options.max_slots = 7;
  auto loop = f.make_loop(options);
  auto stats = loop->run();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().slots, 7);
  EXPECT_EQ(loop->slots_processed(), 7);
  EXPECT_EQ(loop->metrics().slots(), 7u);
}

TEST(ServiceLoop, RunIsSingleShot) {
  Fixture f;
  auto loop = f.make_loop({});
  ASSERT_TRUE(loop->run().ok());
  EXPECT_THROW((void)loop->run(), ContractViolation);
}

TEST(ServiceLoop, StatsReportLatencyAndThroughput) {
  Fixture f;
  auto loop = f.make_loop({});
  auto stats = loop->run();
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(stats.value().slots_per_second, 0.0);
  EXPECT_GT(stats.value().wall_seconds, 0.0);
  EXPECT_GE(stats.value().latency_max_ms, 0.0);
  // P2 estimates are only defined once slots ran; 30 slots is plenty.
  EXPECT_FALSE(std::isnan(stats.value().latency_p50_ms));
  EXPECT_FALSE(std::isnan(stats.value().latency_p99_ms));
}

}  // namespace
}  // namespace grefar
