#include "util/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "util/check.h"

namespace grefar {
namespace {

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiffer) {
  SplitMix64 a(1), b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Rng, SameSeedSameStream) {
  Rng a(7), b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(7), b(8);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanIsHalf) {
  Rng rng(2);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.uniform(-2.5, 7.25);
    EXPECT_GE(u, -2.5);
    EXPECT_LT(u, 7.25);
  }
}

TEST(Rng, UniformRejectsInvertedBounds) {
  Rng rng(3);
  EXPECT_THROW(rng.uniform(1.0, 0.0), ContractViolation);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(4);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.uniform_int(3, 7));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), 3);
  EXPECT_EQ(*seen.rbegin(), 7);
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng rng(5);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(42, 42), 42);
}

TEST(Rng, UniformIntIsApproximatelyUniform) {
  Rng rng(6);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.uniform_int(0, 9)];
  for (int c : counts) EXPECT_NEAR(c, n / 10, n / 100);
}

TEST(Rng, NormalMoments) {
  Rng rng(7);
  double sum = 0.0, sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(Rng, NormalWithParams) {
  Rng rng(8);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Rng, NormalRejectsNegativeSd) {
  Rng rng(8);
  EXPECT_THROW(rng.normal(0.0, -1.0), ContractViolation);
}

TEST(Rng, ExponentialMean) {
  Rng rng(9);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, ExponentialIsPositive) {
  Rng rng(10);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(rng.exponential(0.1), 0.0);
}

TEST(Rng, PoissonSmallLambdaMean) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(3.5));
  EXPECT_NEAR(sum / n, 3.5, 0.1);
}

TEST(Rng, PoissonLargeLambdaMeanAndVariance) {
  Rng rng(12);
  double sum = 0.0, sum2 = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    auto x = static_cast<double>(rng.poisson(100.0));
    sum += x;
    sum2 += x * x;
  }
  double mean = sum / n;
  double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 100.0, 1.0);
  EXPECT_NEAR(var, 100.0, 5.0);
}

TEST(Rng, PoissonZeroLambda) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.poisson(0.0), 0);
}

TEST(Rng, PoissonNeverNegative) {
  Rng rng(14);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(rng.poisson(70.0), 0);
}

TEST(Rng, ParetoRespectsScale) {
  Rng rng(15);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(rng.pareto(2.0, 1.5), 2.0);
}

TEST(Rng, ParetoMeanMatchesTheory) {
  // Mean of Pareto(x_m, alpha) = alpha x_m / (alpha - 1) for alpha > 1.
  Rng rng(16);
  double sum = 0.0;
  const int n = 400000;
  for (int i = 0; i < n; ++i) sum += rng.pareto(1.0, 3.0);
  EXPECT_NEAR(sum / n, 1.5, 0.02);
}

TEST(Rng, BernoulliProbability) {
  Rng rng(17);
  int heads = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) heads += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(heads) / n, 0.3, 0.01);
}

TEST(Rng, BernoulliEdges) {
  Rng rng(18);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(19);
  std::vector<double> weights{1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.weighted_index(weights)];
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.6, 0.01);
}

TEST(Rng, WeightedIndexRejectsAllZero) {
  Rng rng(20);
  std::vector<double> weights{0.0, 0.0};
  EXPECT_THROW(rng.weighted_index(weights), ContractViolation);
}

TEST(Rng, WeightedIndexRejectsNegative) {
  Rng rng(20);
  std::vector<double> weights{1.0, -0.5};
  EXPECT_THROW(rng.weighted_index(weights), ContractViolation);
}

TEST(Rng, ForkedStreamsAreIndependentAndDeterministic) {
  Rng parent1(21), parent2(21);
  Rng childA1 = parent1.fork(0);
  Rng childA2 = parent2.fork(0);
  Rng childB = parent1.fork(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(childA1.next_u64(), childA2.next_u64());
  Rng childA3 = parent2.fork(0);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (childA3.next_u64() == childB.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

// Property sweep: uniform_int stays within bounds for many ranges.
class RngRangeTest : public ::testing::TestWithParam<std::pair<std::int64_t, std::int64_t>> {};

TEST_P(RngRangeTest, StaysInBounds) {
  auto [lo, hi] = GetParam();
  Rng rng(static_cast<std::uint64_t>(lo * 31 + hi));
  for (int i = 0; i < 2000; ++i) {
    auto v = rng.uniform_int(lo, hi);
    EXPECT_GE(v, lo);
    EXPECT_LE(v, hi);
  }
}

INSTANTIATE_TEST_SUITE_P(Ranges, RngRangeTest,
                         ::testing::Values(std::pair<std::int64_t, std::int64_t>{0, 1},
                                           std::pair<std::int64_t, std::int64_t>{-5, 5},
                                           std::pair<std::int64_t, std::int64_t>{100, 1000},
                                           std::pair<std::int64_t, std::int64_t>{-1000000, -999990},
                                           std::pair<std::int64_t, std::int64_t>{0, 0}));

}  // namespace
}  // namespace grefar
