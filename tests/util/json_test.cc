#include "util/json.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace grefar {
namespace {

TEST(JsonParse, Literals) {
  EXPECT_TRUE(parse_json("null").value().is_null());
  EXPECT_TRUE(parse_json("true").value().as_bool());
  EXPECT_FALSE(parse_json("false").value().as_bool());
}

TEST(JsonParse, Numbers) {
  EXPECT_DOUBLE_EQ(parse_json("42").value().as_number(), 42.0);
  EXPECT_DOUBLE_EQ(parse_json("-3.5").value().as_number(), -3.5);
  EXPECT_DOUBLE_EQ(parse_json("1e3").value().as_number(), 1000.0);
  EXPECT_DOUBLE_EQ(parse_json("2.5E-2").value().as_number(), 0.025);
  EXPECT_DOUBLE_EQ(parse_json("0").value().as_number(), 0.0);
}

TEST(JsonParse, Strings) {
  EXPECT_EQ(parse_json("\"hello\"").value().as_string(), "hello");
  EXPECT_EQ(parse_json("\"a\\nb\"").value().as_string(), "a\nb");
  EXPECT_EQ(parse_json("\"q\\\"q\"").value().as_string(), "q\"q");
  EXPECT_EQ(parse_json("\"back\\\\slash\"").value().as_string(), "back\\slash");
  EXPECT_EQ(parse_json("\"\"").value().as_string(), "");
}

TEST(JsonParse, UnicodeEscapes) {
  EXPECT_EQ(parse_json("\"\\u0041\"").value().as_string(), "A");
  EXPECT_EQ(parse_json("\"\\u00e9\"").value().as_string(), "\xC3\xA9");   // é
  EXPECT_EQ(parse_json("\"\\u20ac\"").value().as_string(), "\xE2\x82\xAC");  // €
}

TEST(JsonParse, Arrays) {
  auto v = parse_json("[1, 2, 3]").value();
  ASSERT_TRUE(v.is_array());
  ASSERT_EQ(v.as_array().size(), 3u);
  EXPECT_DOUBLE_EQ(v.as_array()[1].as_number(), 2.0);
}

TEST(JsonParse, EmptyContainers) {
  EXPECT_TRUE(parse_json("[]").value().as_array().empty());
  EXPECT_TRUE(parse_json("{}").value().as_object().empty());
}

TEST(JsonParse, NestedObject) {
  auto v = parse_json(R"({"a": {"b": [true, {"c": 1}]}})").value();
  const JsonValue* a = v.find("a");
  ASSERT_NE(a, nullptr);
  const JsonValue* b = a->find("b");
  ASSERT_NE(b, nullptr);
  ASSERT_TRUE(b->is_array());
  EXPECT_TRUE(b->as_array()[0].as_bool());
  EXPECT_DOUBLE_EQ(b->as_array()[1].find("c")->as_number(), 1.0);
}

TEST(JsonParse, WhitespaceTolerant) {
  auto v = parse_json(" \n\t{ \"k\" :\n1 } ").value();
  EXPECT_DOUBLE_EQ(v.find("k")->as_number(), 1.0);
}

TEST(JsonParse, RejectsTrailingGarbage) {
  EXPECT_FALSE(parse_json("1 2").ok());
  EXPECT_FALSE(parse_json("{} []").ok());
}

TEST(JsonParse, RejectsMalformed) {
  EXPECT_FALSE(parse_json("").ok());
  EXPECT_FALSE(parse_json("{").ok());
  EXPECT_FALSE(parse_json("[1,").ok());
  EXPECT_FALSE(parse_json("{\"a\" 1}").ok());
  EXPECT_FALSE(parse_json("{\"a\": }").ok());
  EXPECT_FALSE(parse_json("[1 2]").ok());
  EXPECT_FALSE(parse_json("tru").ok());
  EXPECT_FALSE(parse_json("\"unterminated").ok());
  EXPECT_FALSE(parse_json("01x").ok());
  EXPECT_FALSE(parse_json("- ").ok());
  EXPECT_FALSE(parse_json("1e").ok());
}

TEST(JsonParse, ErrorsIncludePosition) {
  auto r = parse_json("{\n  \"a\": oops\n}");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().message.find("line 2"), std::string::npos);
}

TEST(JsonParse, RejectsControlCharInString) {
  std::string bad = "\"a\x01b\"";
  EXPECT_FALSE(parse_json(bad).ok());
}

TEST(JsonDump, CompactRoundTrip) {
  const char* doc = R"({"arr":[1,2.5,"s"],"b":true,"n":null})";
  auto v = parse_json(doc).value();
  EXPECT_EQ(v.dump(), doc);
}

TEST(JsonDump, PrettyPrint) {
  JsonObject obj;
  obj["x"] = 1;
  auto pretty = JsonValue(obj).dump(2);
  EXPECT_EQ(pretty, "{\n  \"x\": 1\n}");
}

TEST(JsonDump, EscapesSpecialCharacters) {
  EXPECT_EQ(JsonValue("a\"b\\c\nd").dump(), R"("a\"b\\c\nd")");
}

TEST(JsonDump, RoundTripPreservesValues) {
  const char* doc = R"({"deep":{"list":[[1],[2,[3]]],"t":true},"f":false})";
  auto v = parse_json(doc).value();
  auto v2 = parse_json(v.dump()).value();
  EXPECT_EQ(v, v2);
}

TEST(JsonDump, RejectsNonFinite) {
  JsonValue v(std::numeric_limits<double>::infinity());
  EXPECT_THROW(v.dump(), ContractViolation);
}

TEST(JsonValue, TypedAccessorsAreContractChecked) {
  JsonValue v(1.0);
  EXPECT_THROW(v.as_string(), ContractViolation);
  EXPECT_THROW(v.as_array(), ContractViolation);
  EXPECT_THROW(v.as_object(), ContractViolation);
  EXPECT_THROW(v.as_bool(), ContractViolation);
}

TEST(JsonValue, FindOnNonObjectReturnsNull) {
  EXPECT_EQ(JsonValue(1.0).find("x"), nullptr);
  EXPECT_EQ(JsonValue(JsonArray{}).find("x"), nullptr);
}

TEST(JsonValue, DefaultedLookups) {
  auto v = parse_json(R"({"d": 2.5, "i": 7, "b": true, "s": "txt"})").value();
  EXPECT_DOUBLE_EQ(v.number_or("d", 0.0), 2.5);
  EXPECT_DOUBLE_EQ(v.number_or("missing", 9.0), 9.0);
  EXPECT_EQ(v.int_or("i", 0), 7);
  EXPECT_EQ(v.int_or("missing", -1), -1);
  EXPECT_TRUE(v.bool_or("b", false));
  EXPECT_FALSE(v.bool_or("missing", false));
  EXPECT_EQ(v.string_or("s", ""), "txt");
  EXPECT_EQ(v.string_or("missing", "dflt"), "dflt");
  // Wrong-typed keys fall back too.
  EXPECT_DOUBLE_EQ(v.number_or("s", 1.5), 1.5);
}

TEST(JsonParse, DuplicateKeysLastWins) {
  auto v = parse_json(R"({"k": 1, "k": 2})").value();
  EXPECT_DOUBLE_EQ(v.find("k")->as_number(), 2.0);
}

TEST(JsonFile, MissingFileFails) {
  EXPECT_FALSE(parse_json_file("/no/such/file.json").ok());
}

}  // namespace
}  // namespace grefar
