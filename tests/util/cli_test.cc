#include "util/cli.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace grefar {
namespace {

CliParser make_parser() {
  CliParser cli("prog", "test program");
  cli.add_option("horizon", "100", "slots to run");
  cli.add_option("V", "7.5", "cost-delay parameter");
  cli.add_option("name", "default", "a string");
  cli.add_option("list", "1,2,3", "doubles");
  cli.add_flag("verbose", "more output");
  return cli;
}

Status parse(CliParser& cli, std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return cli.parse(static_cast<int>(args.size()), args.data());
}

TEST(Cli, DefaultsApply) {
  auto cli = make_parser();
  ASSERT_TRUE(parse(cli, {}).ok());
  EXPECT_EQ(cli.get_int("horizon"), 100);
  EXPECT_DOUBLE_EQ(cli.get_double("V"), 7.5);
  EXPECT_EQ(cli.get_string("name"), "default");
  EXPECT_FALSE(cli.get_flag("verbose"));
}

TEST(Cli, SpaceSeparatedValues) {
  auto cli = make_parser();
  ASSERT_TRUE(parse(cli, {"--horizon", "250", "--name", "abc"}).ok());
  EXPECT_EQ(cli.get_int("horizon"), 250);
  EXPECT_EQ(cli.get_string("name"), "abc");
}

TEST(Cli, EqualsSeparatedValues) {
  auto cli = make_parser();
  ASSERT_TRUE(parse(cli, {"--V=2.5"}).ok());
  EXPECT_DOUBLE_EQ(cli.get_double("V"), 2.5);
}

TEST(Cli, FlagsToggle) {
  auto cli = make_parser();
  ASSERT_TRUE(parse(cli, {"--verbose"}).ok());
  EXPECT_TRUE(cli.get_flag("verbose"));
}

TEST(Cli, FlagRejectsValue) {
  auto cli = make_parser();
  EXPECT_FALSE(parse(cli, {"--verbose=yes"}).ok());
}

TEST(Cli, UnknownOptionFails) {
  auto cli = make_parser();
  auto st = parse(cli, {"--bogus", "1"});
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.error().message.find("bogus"), std::string::npos);
}

TEST(Cli, MissingValueFails) {
  auto cli = make_parser();
  EXPECT_FALSE(parse(cli, {"--horizon"}).ok());
}

TEST(Cli, PositionalArgumentFails) {
  auto cli = make_parser();
  EXPECT_FALSE(parse(cli, {"stray"}).ok());
}

TEST(Cli, DoubleList) {
  auto cli = make_parser();
  ASSERT_TRUE(parse(cli, {"--list", "0.1,2.5,7.5,20"}).ok());
  auto values = cli.get_double_list("list");
  ASSERT_EQ(values.size(), 4u);
  EXPECT_DOUBLE_EQ(values[0], 0.1);
  EXPECT_DOUBLE_EQ(values[3], 20.0);
}

TEST(Cli, HelpReturnsSentinelError) {
  auto cli = make_parser();
  auto st = parse(cli, {"--help"});
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.error().message, "help");
}

TEST(Cli, UsageMentionsOptionsAndDefaults) {
  auto cli = make_parser();
  auto usage = cli.usage();
  EXPECT_NE(usage.find("--horizon"), std::string::npos);
  EXPECT_NE(usage.find("default: 100"), std::string::npos);
  EXPECT_NE(usage.find("--verbose"), std::string::npos);
}

TEST(Cli, UnregisteredGetterIsContractViolation) {
  auto cli = make_parser();
  ASSERT_TRUE(parse(cli, {}).ok());
  EXPECT_THROW(cli.get_string("nope"), ContractViolation);
  EXPECT_THROW(cli.get_flag("nope"), ContractViolation);
}

TEST(Cli, DuplicateRegistrationIsContractViolation) {
  CliParser cli("p", "d");
  cli.add_option("x", "1", "h");
  EXPECT_THROW(cli.add_option("x", "2", "h"), ContractViolation);
  EXPECT_THROW(cli.add_flag("x", "h"), ContractViolation);
}

TEST(Cli, MalformedNumericValueIsContractViolation) {
  auto cli = make_parser();
  ASSERT_TRUE(parse(cli, {"--horizon", "abc"}).ok());
  EXPECT_THROW(cli.get_int("horizon"), ContractViolation);
}

TEST(Cli, LastValueWins) {
  auto cli = make_parser();
  ASSERT_TRUE(parse(cli, {"--horizon", "1", "--horizon", "2"}).ok());
  EXPECT_EQ(cli.get_int("horizon"), 2);
}

}  // namespace
}  // namespace grefar
