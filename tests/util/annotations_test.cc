// Expansion contract for src/util/annotations.h: under a frontend with
// [[clang::annotate]] the macros carry metadata-only attributes; under every
// other compiler (the pinned GCC toolchain included) they expand to nothing.
// Either way annotated functions are ordinary functions — same type, same
// behaviour, zero codegen effect.
#include "util/annotations.h"

#include <gtest/gtest.h>

#include <string_view>
#include <type_traits>

namespace grefar {
namespace {

#define GREFAR_TEST_STR2(x) #x
#define GREFAR_TEST_STR(x) GREFAR_TEST_STR2(x)
constexpr const char* kAnnotateExpansion =
    GREFAR_TEST_STR(GREFAR_ANNOTATE("grefar::probe"));

#if defined(__has_cpp_attribute)
#if __has_cpp_attribute(clang::annotate)
#define GREFAR_TEST_EXPECT_ANNOTATED 1
#endif
#endif

TEST(Annotations, ExpansionMatchesCompilerSupport) {
  const std::string_view expansion(kAnnotateExpansion);
#ifdef GREFAR_TEST_EXPECT_ANNOTATED
  EXPECT_NE(expansion.find("clang::annotate"), std::string_view::npos)
      << "frontend claims clang::annotate support but the macro is empty";
#else
  EXPECT_TRUE(expansion.empty())
      << "without clang::annotate the macro must vanish, got: " << expansion;
#endif
}

GREFAR_HOT_PATH GREFAR_DETERMINISTIC int annotated_add(int a, int b);
int annotated_add(int a, int b) { return a + b; }

TEST(Annotations, AnnotatedFunctionsAreOrdinaryFunctions) {
  // The attributes are metadata-only: type and behaviour are untouched, so
  // Release binaries with and without the annotations are identical.
  static_assert(
      std::is_same_v<decltype(&annotated_add), int (*)(int, int)>,
      "annotations must not change the function type");
  EXPECT_EQ(annotated_add(2, 3), 5);
}

}  // namespace
}  // namespace grefar
