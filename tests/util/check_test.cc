// Contract-macro semantics (src/util/check.h): GREFAR_CHECK always
// evaluates and throws ContractViolation on failure in every build type;
// GREFAR_DCHECK matches it in debug builds and compiles out — condition
// unevaluated — under NDEBUG.
#include "util/check.h"

#include <gtest/gtest.h>

#include <string>

namespace grefar {
namespace {

TEST(Check, ThrowsContractViolationOnFailure) {
  EXPECT_THROW(GREFAR_CHECK(false), ContractViolation);
  EXPECT_NO_THROW(GREFAR_CHECK(true));
}

TEST(Check, MessageCarriesExpressionAndContext) {
  try {
    GREFAR_CHECK_MSG(2 + 2 == 5, "context " << 42);
    FAIL() << "GREFAR_CHECK_MSG(false, ...) must throw";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 + 2 == 5"), std::string::npos) << what;
    EXPECT_NE(what.find("context 42"), std::string::npos) << what;
  }
}

TEST(Check, DcheckMatchesBuildType) {
  bool evaluated = false;
  auto failing = [&evaluated] {
    evaluated = true;
    return false;
  };
  (void)failing;
#ifdef NDEBUG
  // Release: the condition must not even be evaluated.
  EXPECT_NO_THROW(GREFAR_DCHECK(failing()));
  EXPECT_NO_THROW(GREFAR_DCHECK_MSG(failing(), "never built " << 1));
  EXPECT_FALSE(evaluated);
#else
  EXPECT_THROW(GREFAR_DCHECK(failing()), ContractViolation);
  EXPECT_TRUE(evaluated);
  EXPECT_THROW(GREFAR_DCHECK_MSG(failing(), "context " << 1),
               ContractViolation);
#endif
}

}  // namespace
}  // namespace grefar
