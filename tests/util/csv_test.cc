#include "util/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

namespace grefar {
namespace {

std::string write_rows(const std::vector<std::vector<std::string>>& rows) {
  std::ostringstream os;
  CsvWriter writer(os);
  for (const auto& row : rows) writer.write_row(row);
  return os.str();
}

TEST(CsvWriter, PlainFields) {
  EXPECT_EQ(write_rows({{"a", "b"}, {"1", "2"}}), "a,b\n1,2\n");
}

TEST(CsvWriter, QuotesFieldsWithSeparator) {
  EXPECT_EQ(write_rows({{"a,b", "c"}}), "\"a,b\",c\n");
}

TEST(CsvWriter, EscapesQuotes) {
  EXPECT_EQ(write_rows({{"say \"hi\""}}), "\"say \"\"hi\"\"\"\n");
}

TEST(CsvWriter, QuotesNewlines) {
  EXPECT_EQ(write_rows({{"line1\nline2"}}), "\"line1\nline2\"\n");
}

TEST(CsvWriter, DoubleRow) {
  std::ostringstream os;
  CsvWriter writer(os);
  writer.write_row(std::vector<double>{1.5, 2.0}, 2);
  EXPECT_EQ(os.str(), "1.50,2.00\n");
}

TEST(CsvReader, ParsesSimpleDocument) {
  CsvReader reader;
  auto rows = reader.parse("a,b\n1,2\n").value();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"1", "2"}));
}

TEST(CsvReader, HandlesMissingTrailingNewline) {
  CsvReader reader;
  auto rows = reader.parse("a,b\n1,2").value();
  ASSERT_EQ(rows.size(), 2u);
}

TEST(CsvReader, QuotedFieldWithSeparator) {
  CsvReader reader;
  auto rows = reader.parse("\"a,b\",c\n").value();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a,b", "c"}));
}

TEST(CsvReader, QuotedFieldWithEscapedQuote) {
  CsvReader reader;
  auto rows = reader.parse("\"say \"\"hi\"\"\"\n").value();
  EXPECT_EQ(rows[0][0], "say \"hi\"");
}

TEST(CsvReader, QuotedFieldWithNewline) {
  CsvReader reader;
  auto rows = reader.parse("\"l1\nl2\",x\n").value();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], "l1\nl2");
}

TEST(CsvReader, ToleratesCrLf) {
  CsvReader reader;
  auto rows = reader.parse("a,b\r\n1,2\r\n").value();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1][1], "2");
}

TEST(CsvReader, EmptyFields) {
  CsvReader reader;
  auto rows = reader.parse("a,,c\n").value();
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "", "c"}));
}

TEST(CsvReader, FailsOnUnterminatedQuote) {
  CsvReader reader;
  EXPECT_FALSE(reader.parse("\"abc\n").ok());
}

TEST(CsvReader, EmptyDocumentHasNoRows) {
  CsvReader reader;
  EXPECT_TRUE(reader.parse("").value().empty());
}

TEST(CsvReader, CustomSeparator) {
  CsvReader reader(';');
  auto rows = reader.parse("a;b\n").value();
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b"}));
}

TEST(CsvRoundTrip, WriterOutputParsesBack) {
  std::vector<std::vector<std::string>> original{
      {"plain", "with,comma", "with \"quote\"", "multi\nline"},
      {"", "x", "", "y"}};
  CsvReader reader;
  auto parsed = reader.parse(write_rows(original)).value();
  EXPECT_EQ(parsed, original);
}

TEST(FileIo, WriteAndReadBack) {
  std::string path = ::testing::TempDir() + "/grefar_csv_test.txt";
  ASSERT_TRUE(write_file(path, "hello\nworld").ok());
  auto content = read_file(path);
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(content.value(), "hello\nworld");
  std::remove(path.c_str());
}

TEST(FileIo, ReadMissingFileFails) {
  auto content = read_file("/nonexistent/grefar/file.txt");
  EXPECT_FALSE(content.ok());
}

TEST(FileIo, ParseFileRoundTrip) {
  std::string path = ::testing::TempDir() + "/grefar_csv_parse.csv";
  ASSERT_TRUE(write_file(path, "h1,h2\n1,2\n").ok());
  CsvReader reader;
  auto rows = reader.parse_file(path);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows.value().size(), 2u);
  std::remove(path.c_str());
}

TEST(CsvReaderLimits, FieldBytesEnforcedWithByteOffset) {
  CsvLimits limits;
  limits.max_field_bytes = 3;
  CsvReader reader(',', limits);
  EXPECT_TRUE(reader.parse("abc,def\n").ok());
  auto rows = reader.parse("abcd\n");
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(rows.error().message,
            "CSV field exceeds max_field_bytes=3 at byte 3 (line 1, col 4)");
}

TEST(CsvReaderLimits, RowAndDocumentLimits) {
  CsvLimits limits;
  limits.max_fields_per_row = 2;
  limits.max_rows = 2;
  CsvReader reader(',', limits);
  EXPECT_TRUE(reader.parse("a,b\nc,d\n").ok());
  EXPECT_FALSE(reader.parse("a,b,c\n").ok());
  EXPECT_FALSE(reader.parse("a\nb\nc\n").ok());
}

TEST(CsvReaderLimits, DefaultLimitsAreGenerous) {
  CsvReader reader;
  std::string wide(1000, 'x');
  auto rows = reader.parse(wide + "," + wide + "\n");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows.value()[0][0].size(), 1000u);
}

}  // namespace
}  // namespace grefar
