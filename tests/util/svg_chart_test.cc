#include "util/svg_chart.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/check.h"

namespace grefar {
namespace {

TEST(SvgChart, EmptyChartHasPlaceholder) {
  SvgChart chart;
  auto svg = chart.render();
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("no data"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
}

TEST(SvgChart, RendersOnePolylinePerSeries) {
  SvgChart chart;
  chart.add_series("a", {1.0, 2.0, 3.0});
  chart.add_series("b", {3.0, 2.0, 1.0});
  auto svg = chart.render();
  std::size_t count = 0;
  for (std::size_t pos = svg.find("<polyline"); pos != std::string::npos;
       pos = svg.find("<polyline", pos + 1)) {
    ++count;
  }
  EXPECT_EQ(count, 2u);
}

TEST(SvgChart, LegendAndLabelsAppear) {
  SvgChart chart;
  chart.set_title("My Chart");
  chart.set_x_label("time");
  chart.set_y_label("cost");
  chart.add_series("series-one", {1.0, 2.0});
  auto svg = chart.render();
  EXPECT_NE(svg.find("My Chart"), std::string::npos);
  EXPECT_NE(svg.find("time"), std::string::npos);
  EXPECT_NE(svg.find("cost"), std::string::npos);
  EXPECT_NE(svg.find("series-one"), std::string::npos);
}

TEST(SvgChart, EscapesXmlInLabels) {
  SvgChart chart;
  chart.set_title("a < b & c > \"d\"");
  chart.add_series("s<1>", {1.0, 2.0});
  auto svg = chart.render();
  EXPECT_EQ(svg.find("a < b"), std::string::npos);
  EXPECT_NE(svg.find("a &lt; b &amp; c &gt;"), std::string::npos);
  EXPECT_NE(svg.find("s&lt;1&gt;"), std::string::npos);
}

TEST(SvgChart, LongSeriesAreStrided) {
  SvgChart chart;
  std::vector<double> values(100000);
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = std::sin(static_cast<double>(i) * 0.01);
  }
  chart.add_series("long", std::move(values));
  auto svg = chart.render();
  EXPECT_LT(svg.size(), 60000u);  // bounded output
  EXPECT_NE(svg.find("<polyline"), std::string::npos);
}

TEST(SvgChart, FlatSeriesRenders) {
  SvgChart chart;
  chart.add_series("flat", std::vector<double>(50, 7.0));
  EXPECT_NE(chart.render().find("<polyline"), std::string::npos);
}

TEST(SvgChart, NonFiniteValuesSkipped) {
  SvgChart chart;
  chart.add_series("s", {1.0, std::nan(""), 3.0});
  auto svg = chart.render();
  EXPECT_NE(svg.find("<polyline"), std::string::npos);
  EXPECT_EQ(svg.find("nan"), std::string::npos);
}

TEST(SvgChart, XRangeRejectsInverted) {
  SvgChart chart;
  EXPECT_THROW(chart.set_x_range(10.0, 5.0), ContractViolation);
}

TEST(SvgChart, AllNanIsPlaceholder) {
  SvgChart chart;
  chart.add_series("s", {std::nan(""), std::nan("")});
  EXPECT_NE(chart.render().find("no data"), std::string::npos);
}

}  // namespace
}  // namespace grefar
