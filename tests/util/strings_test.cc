#include "util/strings.h"

#include <gtest/gtest.h>

namespace grefar {
namespace {

TEST(Split, BasicFields) {
  auto parts = split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(Split, KeepsEmptyFields) {
  auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(Split, SingleField) {
  auto parts = split("hello", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "hello");
}

TEST(Split, EmptyString) {
  auto parts = split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(Trim, RemovesSurroundingWhitespace) {
  EXPECT_EQ(trim("  hello \t\n"), "hello");
  EXPECT_EQ(trim("hello"), "hello");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(Trim, PreservesInnerWhitespace) { EXPECT_EQ(trim(" a b "), "a b"); }

TEST(StartsWith, Basics) {
  EXPECT_TRUE(starts_with("--flag", "--"));
  EXPECT_FALSE(starts_with("-flag", "--"));
  EXPECT_TRUE(starts_with("abc", ""));
  EXPECT_FALSE(starts_with("", "a"));
}

TEST(ParseDouble, ValidNumbers) {
  EXPECT_DOUBLE_EQ(parse_double("1.5").value(), 1.5);
  EXPECT_DOUBLE_EQ(parse_double("-2").value(), -2.0);
  EXPECT_DOUBLE_EQ(parse_double("  3.25 ").value(), 3.25);
  EXPECT_DOUBLE_EQ(parse_double("1e3").value(), 1000.0);
}

TEST(ParseDouble, RejectsGarbage) {
  EXPECT_FALSE(parse_double("1.5x").ok());
  EXPECT_FALSE(parse_double("abc").ok());
  EXPECT_FALSE(parse_double("").ok());
  EXPECT_FALSE(parse_double("1.5 2").ok());
}

TEST(ParseInt, ValidNumbers) {
  EXPECT_EQ(parse_int("42").value(), 42);
  EXPECT_EQ(parse_int("-7").value(), -7);
  EXPECT_EQ(parse_int(" 0 ").value(), 0);
}

TEST(ParseInt, RejectsGarbage) {
  EXPECT_FALSE(parse_int("4.2").ok());
  EXPECT_FALSE(parse_int("x").ok());
  EXPECT_FALSE(parse_int("").ok());
}

TEST(FormatFixed, Precision) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(1.0, 0), "1");
  EXPECT_EQ(format_fixed(-0.5, 3), "-0.500");
}

TEST(Pad, LeftAndRight) {
  EXPECT_EQ(pad_left("ab", 5), "   ab");
  EXPECT_EQ(pad_right("ab", 5), "ab   ");
  EXPECT_EQ(pad_left("abcdef", 3), "abcdef");  // no truncation
}

TEST(Join, Basics) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"solo"}, ","), "solo");
}

}  // namespace
}  // namespace grefar
