#include "util/matrix.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace grefar {
namespace {

TEST(Matrix, DefaultIsEmpty) {
  MatrixD m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
}

TEST(Matrix, ConstructsZeroInitialized) {
  MatrixD m(2, 3);
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(m(r, c), 0.0);
  }
}

TEST(Matrix, InitValue) {
  Matrix<int> m(2, 2, 7);
  EXPECT_EQ(m(1, 1), 7);
}

TEST(Matrix, ReadWrite) {
  MatrixD m(2, 2);
  m(0, 1) = 3.5;
  EXPECT_DOUBLE_EQ(m(0, 1), 3.5);
  EXPECT_DOUBLE_EQ(m(1, 0), 0.0);
}

TEST(Matrix, OutOfBoundsIsContractViolation) {
  MatrixD m(2, 3);
  EXPECT_THROW(m(2, 0), ContractViolation);
  EXPECT_THROW(m(0, 3), ContractViolation);
}

TEST(Matrix, Fill) {
  MatrixD m(2, 2);
  m.fill(1.5);
  EXPECT_DOUBLE_EQ(m.sum(), 6.0);
}

TEST(Matrix, RowAndColSums) {
  MatrixD m(2, 3);
  // 1 2 3
  // 4 5 6
  double v = 1.0;
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 3; ++c) m(r, c) = v++;
  }
  EXPECT_DOUBLE_EQ(m.row_sum(0), 6.0);
  EXPECT_DOUBLE_EQ(m.row_sum(1), 15.0);
  EXPECT_DOUBLE_EQ(m.col_sum(0), 5.0);
  EXPECT_DOUBLE_EQ(m.col_sum(2), 9.0);
  EXPECT_DOUBLE_EQ(m.sum(), 21.0);
  EXPECT_THROW(m.row_sum(2), ContractViolation);
  EXPECT_THROW(m.col_sum(3), ContractViolation);
}

TEST(Matrix, Equality) {
  MatrixD a(2, 2), b(2, 2), c(2, 3);
  a(0, 0) = 1.0;
  EXPECT_FALSE(a == b);
  b(0, 0) = 1.0;
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}

TEST(Matrix, IntInstantiation) {
  Matrix<std::int64_t> m(1, 2);
  m(0, 0) = 5;
  m(0, 1) = 7;
  EXPECT_EQ(m.sum(), 12);
}

}  // namespace
}  // namespace grefar
