#include "util/ascii_chart.h"
#include <cmath>

#include <gtest/gtest.h>

namespace grefar {
namespace {

TEST(AsciiChart, EmptyChartHasPlaceholder) {
  AsciiChart chart;
  EXPECT_NE(chart.render().find("(no data)"), std::string::npos);
}

TEST(AsciiChart, SeriesWithNoValuesIsPlaceholder) {
  AsciiChart chart;
  chart.add_series({"empty", {}});
  EXPECT_NE(chart.render().find("(no data)"), std::string::npos);
}

TEST(AsciiChart, TitleAppears) {
  AsciiChart chart;
  chart.set_title("My Title");
  chart.add_series({"s", {1.0, 2.0, 3.0}});
  EXPECT_EQ(chart.render().rfind("My Title", 0), 0u);
}

TEST(AsciiChart, LegendListsSeries) {
  AsciiChart chart;
  chart.add_series({"alpha", {1.0, 2.0}});
  chart.add_series({"beta", {2.0, 1.0}});
  auto out = chart.render();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("beta"), std::string::npos);
}

TEST(AsciiChart, GlyphsArePlotted) {
  AsciiChart chart(40, 10);
  chart.add_series({"s", {0.0, 1.0, 2.0, 3.0}});
  auto out = chart.render();
  EXPECT_NE(out.find('*'), std::string::npos);
}

TEST(AsciiChart, FlatSeriesDoesNotCrash) {
  AsciiChart chart(40, 10);
  chart.add_series({"flat", std::vector<double>(100, 5.0)});
  auto out = chart.render();
  EXPECT_NE(out.find('*'), std::string::npos);
}

TEST(AsciiChart, LongSeriesAreDownsampled) {
  AsciiChart chart(30, 8);
  std::vector<double> values(10000);
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<double>(i);
  }
  chart.add_series({"long", values});
  // Rendering must stay bounded in size.
  EXPECT_LT(chart.render().size(), 5000u);
}

TEST(AsciiChart, XRangeLabelsAppear) {
  AsciiChart chart(40, 8);
  chart.set_x_range(0, 2000);
  chart.set_x_label("hours");
  chart.add_series({"s", {1.0, 2.0}});
  auto out = chart.render();
  EXPECT_NE(out.find("2000"), std::string::npos);
  EXPECT_NE(out.find("hours"), std::string::npos);
}

TEST(AsciiChart, NonFiniteValuesAreSkipped) {
  AsciiChart chart(20, 6);
  chart.add_series({"s", {1.0, std::nan(""), 3.0}});
  EXPECT_NE(chart.render().find('*'), std::string::npos);
}

TEST(AsciiChart, AllNanSeriesIsPlaceholder) {
  AsciiChart chart(20, 6);
  chart.add_series({"s", {std::nan(""), std::nan("")}});
  EXPECT_NE(chart.render().find("(no finite data)"), std::string::npos);
}

}  // namespace
}  // namespace grefar
