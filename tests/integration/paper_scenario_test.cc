// End-to-end checks that the full paper scenario reproduces the qualitative
// results of §VI on short horizons (the bench binaries run the full 2000 h).
#include <gtest/gtest.h>

#include "baselines/baselines.h"
#include "core/grefar.h"
#include "scenario/paper_scenario.h"

namespace grefar {
namespace {

constexpr std::int64_t kHorizon = 500;
constexpr std::uint64_t kSeed = 42;

TEST(PaperScenario, ConfigIsValidAndTableOneShaped) {
  auto s = make_paper_scenario(kSeed);
  EXPECT_EQ(s.config.num_data_centers(), 3u);
  EXPECT_EQ(s.config.num_server_types(), 3u);
  EXPECT_EQ(s.config.num_accounts(), 4u);
  EXPECT_EQ(s.config.num_job_types(), 8u);
  EXPECT_DOUBLE_EQ(s.config.accounts[0].gamma, 0.40);
  EXPECT_DOUBLE_EQ(s.config.accounts[3].gamma, 0.15);
  EXPECT_DOUBLE_EQ(s.config.server_types[1].speed, 0.75);
  EXPECT_DOUBLE_EQ(s.config.server_types[1].busy_power, 0.60);
}

TEST(PaperScenario, DeterministicPerSeed) {
  auto s1 = make_paper_scenario(7);
  auto s2 = make_paper_scenario(7);
  auto e1 = run_scenario(s1, std::make_shared<AlwaysScheduler>(s1.config), 100);
  auto e2 = run_scenario(s2, std::make_shared<AlwaysScheduler>(s2.config), 100);
  EXPECT_EQ(e1->metrics().energy_cost.values(), e2->metrics().energy_cost.values());
  EXPECT_EQ(e1->metrics().fairness.values(), e2->metrics().fairness.values());
}

TEST(PaperScenario, DifferentSeedsProduceDifferentRuns) {
  auto s1 = make_paper_scenario(7);
  auto s2 = make_paper_scenario(8);
  auto e1 = run_scenario(s1, std::make_shared<AlwaysScheduler>(s1.config), 100);
  auto e2 = run_scenario(s2, std::make_shared<AlwaysScheduler>(s2.config), 100);
  EXPECT_NE(e1->metrics().energy_cost.values(), e2->metrics().energy_cost.values());
}

TEST(PaperScenario, SlacknessHolds) {
  // Average arrived work must sit well below average capacity (so the
  // slackness conditions (20)-(22) are satisfiable).
  auto s = make_paper_scenario(kSeed);
  double total_work = 0.0, total_capacity = 0.0;
  for (std::int64_t t = 0; t < kHorizon; ++t) {
    auto counts = s.arrivals->arrivals(t);
    for (std::size_t j = 0; j < counts.size(); ++j) {
      total_work += static_cast<double>(counts[j]) * s.config.job_types[j].work;
    }
    auto avail = s.availability->availability(t);
    for (std::size_t i = 0; i < 3; ++i) {
      for (std::size_t k = 0; k < 3; ++k) {
        total_capacity +=
            static_cast<double>(avail(i, k)) * s.config.server_types[k].speed;
      }
    }
  }
  EXPECT_LT(total_work, 0.75 * total_capacity);
  EXPECT_GT(total_work / kHorizon, 50.0);  // meaningful load (~90 target)
  EXPECT_LT(total_work / kHorizon, 140.0);
}

TEST(Fig2Shape, EnergyCostDecreasesAndDelayIncreasesWithV) {
  auto s = make_paper_scenario(kSeed);
  double prev_energy = 1e300;
  double prev_delay = -1.0;
  for (double V : {0.1, 2.5, 20.0}) {
    auto engine = run_scenario(
        s, std::make_shared<GreFarScheduler>(s.config, paper_grefar_params(V, 0.0)),
        kHorizon);
    const auto& m = engine->metrics();
    double energy = m.final_average_energy_cost();
    double delay = m.mean_delay();
    EXPECT_LE(energy, prev_energy * 1.02) << "V=" << V;
    EXPECT_GE(delay, prev_delay * 0.9) << "V=" << V;
    prev_energy = energy;
    prev_delay = delay;
  }
}

TEST(Fig3Shape, FairnessImprovesWithBetaAtMarginalEnergyCost) {
  auto s = make_paper_scenario(kSeed);
  auto beta0 = run_scenario(
      s, std::make_shared<GreFarScheduler>(s.config, paper_grefar_params(7.5, 0.0)),
      kHorizon);
  auto beta100 = run_scenario(
      s, std::make_shared<GreFarScheduler>(s.config, paper_grefar_params(7.5, 100.0)),
      kHorizon);
  double f0 = beta0->metrics().final_average_fairness();
  double f100 = beta100->metrics().final_average_fairness();
  EXPECT_GT(f100, f0);  // higher (closer to 0) is fairer
  // Energy increases only marginally (paper: "marginal increase").
  double e0 = beta0->metrics().final_average_energy_cost();
  double e100 = beta100->metrics().final_average_energy_cost();
  EXPECT_LE(e100, e0 * 1.20);
  // Side effect the paper reports: delay *drops* with beta > 0.
  EXPECT_LE(beta100->metrics().mean_delay(), beta0->metrics().mean_delay() * 1.05);
}

TEST(Fig4Shape, GreFarBeatsAlwaysOnEnergyAtHigherDelay) {
  auto s = make_paper_scenario(kSeed);
  auto grefar = run_scenario(
      s, std::make_shared<GreFarScheduler>(s.config, paper_grefar_params(7.5, 100.0)),
      kHorizon);
  auto always = run_scenario(s, std::make_shared<AlwaysScheduler>(s.config), kHorizon);
  EXPECT_LT(grefar->metrics().final_average_energy_cost(),
            always->metrics().final_average_energy_cost());
  EXPECT_GT(grefar->metrics().mean_delay(), always->metrics().mean_delay());
  EXPECT_NEAR(always->metrics().mean_delay(), 1.0, 0.1);  // paper's observation
}

TEST(InTextShape, MoreWorkGoesToCheaperDataCenters) {
  // §VI-B1: work ordering DC2 > DC1 > DC3 (energy cost per unit work
  // 0.346 < 0.392 < 0.572).
  auto s = make_paper_scenario(kSeed);
  auto engine = run_scenario(
      s, std::make_shared<GreFarScheduler>(s.config, paper_grefar_params(7.5, 100.0)),
      kHorizon);
  const auto& m = engine->metrics();
  EXPECT_GT(m.mean_dc_work(1), m.mean_dc_work(0));
  EXPECT_GT(m.mean_dc_work(0), m.mean_dc_work(2));
}

TEST(PaperScenario, WorkIsConserved) {
  // Everything arrived is either processed or still queued at the end.
  auto s = make_paper_scenario(kSeed);
  auto engine = run_scenario(
      s, std::make_shared<GreFarScheduler>(s.config, paper_grefar_params(2.5, 0.0)),
      kHorizon);
  const auto& m = engine->metrics();
  double arrived = m.arrived_work.sum();
  double processed = 0.0;
  for (std::size_t i = 0; i < 3; ++i) processed += m.dc_work[i].sum();
  double queued = 0.0;
  for (std::size_t j = 0; j < s.config.num_job_types(); ++j) {
    queued += engine->central_queue_length(j) * s.config.job_types[j].work;
    for (std::size_t i = 0; i < 3; ++i) {
      queued += engine->dc_queue_length(i, j) * s.config.job_types[j].work;
    }
  }
  EXPECT_NEAR(arrived, processed + queued, 1e-6 * std::max(1.0, arrived));
}

TEST(PaperScenario, GreFarQueuesAreStable) {
  auto s = make_paper_scenario(kSeed);
  auto engine = run_scenario(
      s, std::make_shared<GreFarScheduler>(s.config, paper_grefar_params(20.0, 0.0)),
      kHorizon);
  // Bounded backlog: far below the ~45k work units that arrive over the run.
  const auto& m = engine->metrics();
  EXPECT_LT(m.total_queue_jobs.at(kHorizon - 1), 2000.0);
}

TEST(SmallScenario, RunsAllSchedulers) {
  auto s = make_small_scenario(3);
  for (auto& scheduler : std::vector<std::shared_ptr<Scheduler>>{
           std::make_shared<GreFarScheduler>(s.config, paper_grefar_params(2.0, 0.0)),
           std::make_shared<GreFarScheduler>(s.config, paper_grefar_params(2.0, 50.0)),
           std::make_shared<AlwaysScheduler>(s.config),
           std::make_shared<CheapestFirstScheduler>(s.config),
           std::make_shared<RandomScheduler>(s.config, 1),
           std::make_shared<LocalOnlyScheduler>(s.config)}) {
    auto engine = run_scenario(s, scheduler, 200);
    EXPECT_EQ(engine->metrics().slots(), 200u) << scheduler->name();
    EXPECT_GE(engine->metrics().energy_cost.mean(), 0.0) << scheduler->name();
  }
}

TEST(ConstantPriceAblation, GreFarAdvantageVanishes) {
  // With constant prices (and beta = 0) there is nothing to arbitrage over
  // time; GreFar's energy cost should be within a whisker of Always'.
  auto s = make_paper_scenario(kSeed);
  s.prices = std::make_shared<ConstantPriceModel>(
      std::vector<double>{0.392, 0.433, 0.548});
  auto grefar = run_scenario(
      s, std::make_shared<GreFarScheduler>(s.config, paper_grefar_params(7.5, 0.0)),
      kHorizon);
  auto always = run_scenario(s, std::make_shared<AlwaysScheduler>(s.config), kHorizon);
  double eg = grefar->metrics().final_average_energy_cost();
  double ea = always->metrics().final_average_energy_cost();
  // GreFar can still pick cheaper *locations*; it must not be much worse.
  EXPECT_LE(eg, ea * 1.05);
}

}  // namespace
}  // namespace grefar
