// Empirical validation of Theorem 1 on the literal queue dynamics:
//  (a) queue lengths stay bounded, with the bound growing (at most) linearly
//      in the cost-delay parameter V;
//  (b) GreFar's time-average cost approaches the optimal T-step lookahead
//      cost as V grows (O(1/V) gap).
#include <gtest/gtest.h>

#include <memory>

#include "core/grefar.h"
#include "lookahead/lookahead.h"
#include "price/price_model.h"
#include "sim/scalar_engine.h"
#include "workload/arrival_process.h"

namespace grefar {
namespace {

ClusterConfig theorem_config() {
  ClusterConfig c;
  c.server_types = {{"std", 1.0, 1.0}};
  c.data_centers = {{"dc1", {12}}, {"dc2", {12}}};
  c.accounts = {{"a", 1.0}};
  c.job_types = {{"j", 1.0, {0, 1}, 0}};
  return c;
}

/// Periodic prices with a pronounced trough, so deferring pays off.
std::shared_ptr<TablePriceModel> theorem_prices() {
  return std::make_shared<TablePriceModel>(std::vector<std::vector<double>>{
      {0.9, 0.8, 0.7, 0.3, 0.2, 0.3, 0.8, 0.9},
      {0.7, 0.7, 0.5, 0.4, 0.3, 0.4, 0.6, 0.7}});
}

struct RunOutcome {
  double max_queue;
  double avg_cost;
};

RunOutcome run_grefar(double V, std::int64_t horizon) {
  auto config = theorem_config();
  auto prices = theorem_prices();
  auto avail = std::make_shared<FullAvailability>(config.data_centers);
  auto arrivals = std::make_shared<ConstantArrivals>(std::vector<std::int64_t>{6});
  GreFarParams params;
  params.V = V;
  params.beta = 0.0;
  params.r_max = 50.0;
  params.h_max = 50.0;
  params.clamp_to_queue = true;
  params.process_after_routing = false;  // literal eq. (13) ordering
  auto scheduler = std::make_shared<GreFarScheduler>(config, params);
  ScalarQueueSimulator sim(config, prices, avail, arrivals, scheduler);
  sim.run(horizon);
  return {sim.max_queue_observed(), sim.average_cost(0.0)};
}

double lookahead_cost(std::int64_t T, std::int64_t R) {
  auto config = theorem_config();
  auto prices = theorem_prices();
  FullAvailability avail(config.data_centers);
  ConstantArrivals arrivals({6});
  LookaheadParams p;
  p.T = T;
  p.R = R;
  p.r_max = 50.0;
  p.h_max = 50.0;
  return solve_lookahead(config, *prices, avail, arrivals, p).average_cost;
}

TEST(Theorem1, QueuesStayBoundedForEveryV) {
  for (double V : {0.5, 2.0, 8.0, 32.0}) {
    auto outcome = run_grefar(V, 1600);
    // Arrivals are 6/slot; an unstable queue would reach ~6 * 1600.
    EXPECT_LT(outcome.max_queue, 1000.0) << "V=" << V;
  }
}

TEST(Theorem1, QueueBoundGrowsAtMostLinearlyInV) {
  auto q32 = run_grefar(32.0, 1600).max_queue;
  auto q128 = run_grefar(128.0, 1600).max_queue;
  // O(V): quadrupling V should grow the peak queue by at most ~4x (+ slack).
  EXPECT_LE(q128, 4.5 * q32 + 10.0);
  // And a larger V really does queue more (the delay side of the tradeoff).
  EXPECT_GE(q128, q32);
}

TEST(Theorem1, CostIsNonIncreasingInV) {
  double prev = 1e300;
  for (double V : {0.5, 2.0, 8.0, 32.0, 128.0}) {
    double cost = run_grefar(V, 1600).avg_cost;
    EXPECT_LE(cost, prev + 0.05) << "V=" << V;
    prev = cost;
  }
}

TEST(Theorem1, LargeVApproachesLookaheadCost) {
  // t_end = 1600 = R*T with T = 8 (one price period per frame).
  double optimal = lookahead_cost(8, 200);
  double grefar_large_v = run_grefar(128.0, 1600).avg_cost;
  double grefar_mid_v = run_grefar(32.0, 1600).avg_cost;
  double grefar_small_v = run_grefar(0.5, 1600).avg_cost;
  // The O(1/V) gap shrinks monotonically with V...
  EXPECT_LT(grefar_mid_v - optimal, grefar_small_v - optimal);
  EXPECT_LT(grefar_large_v - optimal, grefar_mid_v - optimal);
  // ...and is small at large V (within 10% of the offline optimum).
  EXPECT_LE(grefar_large_v, optimal * 1.10 + 0.05);
}

TEST(Theorem1, SmallVPaysNearOnlinePrices) {
  // With V ~ 0 GreFar processes greedily; its cost should be close to the
  // average-price cost of serving all work, well above the T-step optimum.
  double optimal = lookahead_cost(8, 200);
  double eager = run_grefar(0.01, 1600).avg_cost;
  EXPECT_GT(eager, optimal * 1.05);
}

}  // namespace
}  // namespace grefar
