// Property tests: invariants the simulator must uphold under *any*
// feasible scheduler, checked by driving the engine with a randomized
// (but valid) scheduler over many seeds.
#include <gtest/gtest.h>

#include <memory>

#include "price/price_model.h"
#include "sim/engine.h"
#include "util/rng.h"
#include "workload/arrival_process.h"

namespace grefar {
namespace {

/// A scheduler that makes random—but contract-respecting—decisions: routes a
/// random share of each central queue to random eligible DCs and processes a
/// random share of each DC queue, within capacity.
class FuzzScheduler final : public Scheduler {
 public:
  FuzzScheduler(ClusterConfig config, std::uint64_t seed)
      : config_(std::move(config)), rng_(seed) {}

  SlotAction decide(const SlotObservation& obs) override {
    const std::size_t N = config_.num_data_centers();
    const std::size_t J = config_.num_job_types();
    SlotAction action;
    action.route = MatrixD(N, J);
    action.process = MatrixD(N, J);
    for (std::size_t j = 0; j < J; ++j) {
      const auto& eligible = config_.job_types[j].eligible_dcs;
      auto jobs = static_cast<std::int64_t>(obs.central_queue[j]);
      if (jobs > 0 && rng_.bernoulli(0.8)) {
        auto n = rng_.uniform_int(0, jobs);
        auto pick = static_cast<std::size_t>(
            rng_.uniform_int(0, static_cast<std::int64_t>(eligible.size()) - 1));
        action.route(eligible[pick], j) = static_cast<double>(n);
      }
    }
    for (std::size_t i = 0; i < N; ++i) {
      double capacity = 0.0;
      for (std::size_t k = 0; k < config_.num_server_types(); ++k) {
        capacity += static_cast<double>(obs.availability(i, k)) *
                    config_.server_types[k].speed;
      }
      for (std::size_t j = 0; j < J; ++j) {
        if (!config_.job_types[j].eligible(i)) continue;
        double max_h = std::min(obs.dc_queue(i, j) + action.route(i, j),
                                capacity / config_.job_types[j].work);
        action.process(i, j) = rng_.uniform(0.0, std::max(max_h, 0.0));
      }
    }
    return action;
  }
  std::string name() const override { return "Fuzz"; }

 private:
  ClusterConfig config_;
  Rng rng_;
};

ClusterConfig fuzz_config() {
  ClusterConfig c;
  c.server_types = {{"fast", 1.0, 1.0}, {"eff", 0.5, 0.3}};
  c.data_centers = {{"dc1", {8, 6}}, {"dc2", {4, 10}}};
  c.accounts = {{"a", 0.5}, {"b", 0.5}};
  c.job_types = {{"j0", 1.0, {0, 1}, 0}, {"j1", 2.5, {0}, 1}, {"j2", 0.5, {1}, 0}};
  return c;
}

class EngineInvariantTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EngineInvariantTest, HoldUnderRandomScheduling) {
  const std::uint64_t seed = GetParam();
  auto config = fuzz_config();
  auto prices = std::make_shared<ConstantPriceModel>(std::vector<double>{0.4, 0.6});
  auto avail =
      std::make_shared<RandomFractionAvailability>(config.data_centers, 0.5, seed);
  auto arrivals = std::make_shared<PoissonArrivals>(
      std::vector<double>{3.0, 1.0, 4.0}, std::vector<std::int64_t>{10, 5, 12},
      seed ^ 0xF00DULL);
  auto scheduler = std::make_shared<FuzzScheduler>(config, seed ^ 0xFEEDULL);
  SimulationEngine engine(config, prices, avail, arrivals, scheduler);

  const std::int64_t horizon = 300;
  engine.run(horizon);
  const auto& m = engine.metrics();

  // 1. Work conservation: arrived == processed + still queued.
  double arrived = m.arrived_work.sum();
  double processed = 0.0;
  for (std::size_t i = 0; i < config.num_data_centers(); ++i) {
    processed += m.dc_work[i].sum();
  }
  double queued = 0.0;
  for (std::size_t j = 0; j < config.num_job_types(); ++j) {
    queued += engine.central_queue_length(j) * config.job_types[j].work;
    for (std::size_t i = 0; i < config.num_data_centers(); ++i) {
      queued += engine.dc_queue_length(i, j) * config.job_types[j].work;
    }
  }
  EXPECT_NEAR(arrived, processed + queued, 1e-6 * std::max(arrived, 1.0));

  // 2. Per-account work sums to total processed work.
  double account_total = 0.0;
  for (const auto& series : m.account_work) account_total += series.sum();
  EXPECT_NEAR(account_total, processed, 1e-6 * std::max(processed, 1.0));

  // 3. Energy cost is consistent with the cheapest-fill bound:
  //    price * (cheapest energy-per-work) * work <= cost <= price * (max epw) * work.
  for (std::size_t t = 0; t < m.slots(); ++t) {
    for (std::size_t i = 0; i < config.num_data_centers(); ++i) {
      double work = m.dc_work[i].at(t);
      double cost = m.dc_energy_cost[i].at(t);
      double price = m.dc_price[i].at(t);
      EXPECT_GE(cost + 1e-9, price * 0.6 * work);  // eff servers: 0.3/0.5
      EXPECT_LE(cost, price * 1.0 * work + 1e-9);  // fast servers: 1/1
    }
  }

  // 4. Completions never exceed arrivals, delays are >= 1 slot.
  double completed = 0.0;
  for (std::size_t i = 0; i < config.num_data_centers(); ++i) {
    completed += m.dc_completions[i].sum();
  }
  EXPECT_LE(completed, m.arrived_jobs.sum() + 1e-9);
  if (m.delay_stats.count() > 0) {
    EXPECT_GE(m.delay_stats.min(), 1.0);
    EXPECT_LE(m.delay_p50(), m.delay_p99() + 1e-9);
  }

  // 5. Queue lengths are never negative and fairness is never positive.
  for (std::size_t t = 0; t < m.slots(); ++t) {
    EXPECT_GE(m.total_queue_jobs.at(t), -1e-9);
    EXPECT_LE(m.fairness.at(t), 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineInvariantTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

}  // namespace
}  // namespace grefar
